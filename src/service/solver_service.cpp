#include "service/solver_service.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.hpp"
#include "parallel/presets.hpp"
#include "util/check.hpp"

namespace pts::service {

using namespace std::chrono_literals;

/// Everything the service tracks for one job, queued or running. The promise
/// is resolved exactly once, by whichever path terminates the job.
struct SolverService::Job {
  JobId id = 0;
  JobOrigin origin = JobOrigin::kFresh;
  bool journaled = false;  ///< has a kSubmitted record awaiting its strike
  std::shared_ptr<const mkp::Instance> instance;
  JobOptions options;
  parallel::ParallelConfig config;  ///< resolved at submit; budget set at dispatch
  std::size_t slots = 1;            ///< pool capacity the job occupies while running
  /// Nonzero = this job had been dispatched by the crashed incarnation with
  /// this start sequence; it outranks all ordinary queued jobs and replays
  /// in ascending-rank order (see dispatches_before).
  std::uint64_t resume_rank = 0;
  /// Stamped at dispatch (0 while queued): journal compaction re-emits the
  /// kDispatched record for running jobs from here.
  std::uint64_t start_sequence = 0;
  Deadline deadline;                ///< unbounded when no deadline was requested
  CancelSource cancel;              ///< armed with `deadline`; cancel(id) fires it
  Stopwatch since_submit;
  std::promise<JobResult> promise;
};

SolverService::SolverService(ServiceConfig config) : config_(std::move(config)) {
  PTS_CHECK_MSG(config_.num_workers >= 1, "the pool needs at least one worker");
  PTS_CHECK_MSG(config_.queue_capacity >= 1, "the queue needs at least one slot");
  free_slots_ = config_.num_workers;

  // Crash recovery: replay the previous incarnation's journal BEFORE
  // truncating it, then re-enqueue every job whose future never resolved.
  // Resubmitting re-journals the survivors, which compacts the log.
  std::vector<journal::RecoveredJob> replayed;
  if (!config_.journal_path.empty()) {
    auto jobs = journal::recover_jobs(config_.journal_path);
    if (jobs) {
      replayed = std::move(*jobs);
      if (auto opened = journal::JobJournal::open_truncate(config_.journal_path)) {
        journal_ = std::move(*opened);
      }
    }
    // A file that is not a job journal (bad magic/version) is left untouched
    // and journaling stays off — never truncate what we cannot parse.
  }

  scheduler_ = std::thread([this] { scheduler_loop(); });

  for (auto& job : replayed) {
    recovered_.push_back(submit_impl(
        std::make_shared<const mkp::Instance>(std::move(job.instance)),
        std::move(job.options), JobOrigin::kResumed, job.dispatch_sequence));
  }
}

SolverService::~SolverService() { shutdown(); }

SolverService::Submission SolverService::submit(mkp::Instance instance,
                                                JobOptions options) {
  return submit_impl(std::make_shared<const mkp::Instance>(std::move(instance)),
                     std::move(options), JobOrigin::kFresh);
}

SolverService::Submission SolverService::submit(
    std::shared_ptr<const mkp::Instance> instance, JobOptions options) {
  return submit_impl(std::move(instance), std::move(options), JobOrigin::kFresh);
}

std::vector<SolverService::Submission> SolverService::take_recovered() {
  std::lock_guard lock(mutex_);
  return std::move(recovered_);
}

void SolverService::journal_resolved(const Job& job) {
  if (journal_ && job.journaled) (void)journal_->append_resolved(job.id);
}

void SolverService::resolve_without_run(Job& job, Status status) {
  JobResult result;
  result.id = job.id;
  result.origin = job.origin;
  result.status = std::move(status);
  result.instance = job.instance;
  result.queue_seconds = job.since_submit.elapsed_seconds();
  job.promise.set_value(std::move(result));
}

SolverService::Submission SolverService::submit_impl(
    std::shared_ptr<const mkp::Instance> instance, JobOptions options,
    JobOrigin origin, std::uint64_t resume_rank) {
  auto job = std::make_shared<Job>();
  job->origin = origin;
  job->instance = std::move(instance);
  job->options = std::move(options);
  job->resume_rank = resume_rank;

  Submission out;
  out.result = job->promise.get_future();
  {
    std::lock_guard lock(mutex_);
    job->id = next_id_++;
    ++stats_.submitted;
    if (origin == JobOrigin::kResumed) ++stats_.resumed;
  }
  obs::metrics().counter("service_submitted_total").add();
  if (origin == JobOrigin::kResumed) {
    obs::metrics().counter("service_resumed_total").add();
  }
  out.id = job->id;

  // Validation: every failure is a resolved future, never an abort.
  Status invalid;
  std::optional<parallel::ParallelConfig> preset;
  if (!job->instance) {
    invalid = Status::invalid_argument("null instance");
  } else if (job->options.time_budget_seconds <= 0.0) {
    invalid = Status::invalid_argument("time_budget_seconds must be positive");
  } else if (job->options.deadline_seconds && *job->options.deadline_seconds < 0.0) {
    invalid = Status::invalid_argument("deadline_seconds must be non-negative");
  } else {
    preset = parallel::preset_by_name(job->options.preset, job->options.seed);
    if (!preset) {
      std::string known;
      for (const auto& name : parallel::known_preset_names()) {
        if (!known.empty()) known += ", ";
        known += name;
      }
      invalid = Status::invalid_argument("unknown preset '" + job->options.preset +
                                         "' (known: " + known + ")");
    }
  }
  if (!invalid.ok()) {
    {
      std::lock_guard lock(mutex_);
      ++stats_.invalid;
    }
    obs::metrics().counter("service_invalid_total").add();
    resolve_without_run(*job, std::move(invalid));
    return out;
  }

  job->config = *preset;
  parallel::scale_budget_to_instance(job->config, *job->instance);
  if (job->options.mode) job->config.mode = *job->options.mode;
  if (job->options.backend) {
    job->config.backend = *job->options.backend;
    job->config.proc = job->options.proc;
  }
  job->config.seed = job->options.seed;
  job->config.target_value = job->options.target_value;
  job->config.core.enabled = job->options.core_reduction;
  job->config.fault_injector = config_.fault_injector;
  // Time is the binding limit (set at dispatch); rounds get enough headroom
  // that they can never run out before the budget or deadline does.
  job->config.search_iterations =
      std::max<std::size_t>(job->config.search_iterations, 1'000'000);
  // Clamp the thread ask to the pool width; that clamp IS the
  // no-oversubscription guarantee.
  job->config.num_slaves =
      std::clamp<std::size_t>(job->config.num_slaves, 1, config_.num_workers);
  job->slots = job->config.mode == parallel::CooperationMode::kSequential
                   ? 1
                   : job->config.num_slaves;
  if (job->options.deadline_seconds) {
    job->deadline = Deadline::after_seconds(*job->options.deadline_seconds);
  }
  job->cancel = CancelSource(job->deadline);

  std::unique_lock lock(mutex_);
  if (stopping_) {
    ++stats_.cancelled;
    lock.unlock();
    obs::metrics().counter("service_cancelled_total").add();
    resolve_without_run(*job, Status::unavailable("service is shut down"));
    return out;
  }
  if (queue_.size() >= config_.queue_capacity) {
    // Backpressure. Shedding evicts the weakest queued job only when the
    // incoming one strictly outranks it; otherwise the incoming job is the
    // one rejected.
    std::shared_ptr<Job> shed;
    if (config_.overflow == OverflowPolicy::kShedLowest) {
      auto weakest = std::min_element(
          queue_.begin(), queue_.end(), [](const auto& a, const auto& b) {
            return std::pair(a->options.priority, b->id) <
                   std::pair(b->options.priority, a->id);  // lowest prio, newest
          });
      if (weakest != queue_.end() &&
          (*weakest)->options.priority < job->options.priority) {
        shed = *weakest;
        queue_.erase(weakest);
        queue_.push_back(job);
        // Journaled under the lock: the job is not dispatchable until the
        // unlock below, so its kSubmitted record always precedes any strike.
        if (journal_ && journal_->append_submitted(job->id, *job->instance,
                                                   job->options)
                            .ok()) {
          job->journaled = true;
        }
      }
    }
    ++stats_.rejected;
    lock.unlock();
    if (shed) {
      obs::metrics().counter("service_shed_total").add();
      journal_resolved(*shed);
      resolve_without_run(*shed,
                          Status::resource_exhausted(
                              "shed by a higher-priority submission (queue full)"));
      wake_.notify_all();
    } else {
      obs::metrics().counter("service_rejected_total").add();
      resolve_without_run(
          *job, Status::resource_exhausted(
                    "queue full (capacity " +
                    std::to_string(config_.queue_capacity) + ")"));
    }
    return out;
  }
  queue_.push_back(job);
  // Journaled under the lock (see the shed branch above for the ordering
  // argument). A failed append leaves the job un-journaled but still runs it.
  if (journal_ &&
      journal_->append_submitted(job->id, *job->instance, job->options).ok()) {
    job->journaled = true;
  }
  lock.unlock();
  wake_.notify_all();
  return out;
}

bool SolverService::cancel(JobId id) {
  std::unique_lock lock(mutex_);
  auto queued = std::find_if(queue_.begin(), queue_.end(),
                             [id](const auto& job) { return job->id == id; });
  if (queued != queue_.end()) {
    auto job = *queued;
    queue_.erase(queued);
    ++stats_.cancelled;
    lock.unlock();
    obs::metrics().counter("service_cancelled_total").add();
    journal_resolved(*job);
    resolve_without_run(*job, Status::cancelled("cancelled while queued"));
    return true;
  }
  auto running = running_.find(id);
  if (running != running_.end()) {
    // The token does the rest: the engine notices within one inner-loop
    // check, the master within one mailbox poll slice; the job thread then
    // resolves the future as kCancelled.
    running->second->cancel.request_cancel();
    return true;
  }
  return false;
}

void SolverService::shutdown() {
  std::vector<std::shared_ptr<Job>> to_resolve;
  {
    std::lock_guard lock(mutex_);
    if (stopping_) {
      // Second call: scheduler already told to wind down; fall through to
      // the join below (idempotent).
    }
    stopping_ = true;
    to_resolve.swap(queue_);
    stats_.cancelled += to_resolve.size();
    for (auto& [id, job] : running_) job->cancel.request_cancel();
  }
  wake_.notify_all();
  obs::metrics().counter("service_cancelled_total")
      .add(static_cast<std::uint64_t>(to_resolve.size()));
  for (auto& job : to_resolve) {
    // Deliberately NOT struck from the journal: a queued job cancelled by
    // shutdown is exactly what the next incarnation should resume.
    resolve_without_run(*job, Status::cancelled("service shutting down"));
  }
  if (scheduler_.joinable()) scheduler_.join();
}

std::size_t SolverService::queued_jobs() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

std::size_t SolverService::running_jobs() const {
  std::lock_guard lock(mutex_);
  return running_.size();
}

ServiceStats SolverService::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void SolverService::sweep_queue_locked() {
  // Resolve queued jobs whose deadline passed before they ever ran. Swap-
  // and-pop is fine: dispatch re-scans for the best job every time.
  for (std::size_t k = 0; k < queue_.size();) {
    if (queue_[k]->deadline.expired()) {
      auto job = queue_[k];
      queue_[k] = queue_.back();
      queue_.pop_back();
      ++stats_.deadline_expired;
      obs::metrics().counter("service_deadline_missed_total").add();
      journal_resolved(*job);
      resolve_without_run(*job,
                          Status::deadline_exceeded("deadline passed while queued"));
    } else {
      ++k;
    }
  }
}

void SolverService::dispatch_ready_locked() {
  // Dispatch order: jobs the crashed incarnation had already dispatched come
  // first, replayed in their original start order; everyone else by strict
  // priority, ties in submission order.
  const auto dispatches_before = [](const Job& a, const Job& b) {
    const bool a_resumed = a.resume_rank != 0;
    const bool b_resumed = b.resume_rank != 0;
    if (a_resumed != b_resumed) return a_resumed;
    if (a_resumed) return a.resume_rank < b.resume_rank;
    if (a.options.priority != b.options.priority) {
      return a.options.priority > b.options.priority;
    }
    return a.id < b.id;
  };
  // Strict priority: always dispatch the best queued job next, and if its
  // ask does not fit the free capacity, wait — lower-priority jobs do not
  // jump it (a wide job cannot be starved; asks are clamped to the pool
  // width, so it fits as soon as the pool drains).
  for (;;) {
    auto best = queue_.end();
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (best == queue_.end() || dispatches_before(**it, **best)) best = it;
    }
    if (best == queue_.end() || (*best)->slots > free_slots_) return;
    auto job = *best;
    queue_.erase(best);
    free_slots_ -= job->slots;
    running_.emplace(job->id, job);
    const std::uint64_t seq = next_start_sequence_++;
    job->start_sequence = seq;
    obs::metrics().histogram("job_queue_seconds")
        .record(job->since_submit.elapsed_seconds());
    // Stamp the commitment before the thread exists: if we crash between
    // the append and the spawn, replay still restores this job at the front
    // in this order — exactly what the dispatch decision promised.
    if (journal_ && job->journaled) {
      (void)journal_->append_dispatched(job->id, seq);
    }
    job_threads_.emplace(job->id,
                         std::thread([this, job, seq] { run_job(job, seq); }));
  }
}

void SolverService::reap_finished_locked(std::unique_lock<std::mutex>& lock) {
  // Joining under the lock is safe: a finished thread's only remaining work
  // is returning from its function (it never re-acquires the mutex).
  (void)lock;
  for (JobId id : finished_) {
    auto it = job_threads_.find(id);
    if (it == job_threads_.end()) continue;
    it->second.join();
    job_threads_.erase(it);
  }
  finished_.clear();
}

void SolverService::maybe_compact_journal_locked() {
  if (!journal_ || config_.journal_compact_every_records == 0) return;
  const std::uint64_t appended = journal_->records_appended();
  if (appended < config_.journal_compact_every_records) return;

  // The compacted image holds one kSubmitted per open journaled job plus one
  // kDispatched per running one. Only rewrite when that at least halves the
  // log — without the hysteresis a standing queue of N jobs would re-trigger
  // every `journal_compact_every_records` appends for no space gain.
  std::vector<journal::LiveJob> live;
  live.reserve(queue_.size() + running_.size());
  for (const auto& job : queue_) {
    if (!job->journaled) continue;
    live.push_back(journal::LiveJob{job->id, job->instance.get(),
                                    &job->options, /*dispatch_sequence=*/0});
  }
  for (const auto& [id, job] : running_) {
    if (!job->journaled) continue;
    live.push_back(journal::LiveJob{id, job->instance.get(), &job->options,
                                    job->start_sequence});
  }
  std::uint64_t needed = 0;
  for (const auto& job : live) needed += job.dispatch_sequence != 0 ? 2 : 1;
  if (appended < 2 * needed + 1) return;
  // Holding the service mutex across the rewrite is the correctness
  // argument: every append_submitted happens under this lock, so no new
  // submission can land in the file being replaced. A concurrent
  // append_resolved (job threads strike outside the lock) serializes on the
  // journal's own mutex and lands in whichever file wins — both orders
  // replay correctly (an unmatched kResolved is inert).
  (void)journal_->compact(live);
}

void SolverService::scheduler_loop() {
  std::unique_lock lock(mutex_);
  auto& queue_depth = obs::metrics().gauge("service_queue_depth");
  auto& active_jobs = obs::metrics().gauge("service_active_jobs");
  auto& free_slots = obs::metrics().gauge("service_free_slots");
  for (;;) {
    reap_finished_locked(lock);
    sweep_queue_locked();
    if (!stopping_) dispatch_ready_locked();
    maybe_compact_journal_locked();
    queue_depth.set(static_cast<double>(queue_.size()));
    active_jobs.set(static_cast<double>(running_.size()));
    free_slots.set(static_cast<double>(free_slots_));
    if (stopping_ && queue_.empty() && running_.empty() && job_threads_.empty()) {
      return;
    }
    // Timed wait: deadline sweeps need a tick even when nothing notifies.
    wake_.wait_for(lock, 10ms);
  }
}

void SolverService::run_job(const std::shared_ptr<Job>& job,
                            std::uint64_t start_sequence) {
  JobResult result;
  result.id = job->id;
  result.origin = job->origin;
  result.instance = job->instance;
  result.queue_seconds = job->since_submit.elapsed_seconds();
  result.start_sequence = start_sequence;

  // Budget: the job's own solve budget, truncated by whatever the deadline
  // has left. The engine needs a positive bound even when the deadline
  // passed between dispatch and here; the token stops it within one check.
  double budget = job->options.time_budget_seconds;
  bool deadline_limited = false;
  if (job->deadline.is_bounded()) {
    const double remaining = job->deadline.remaining_seconds();
    if (remaining < budget) {
      budget = remaining;
      deadline_limited = true;
    }
  }
  parallel::ParallelConfig config = job->config;
  config.time_limit_seconds = std::max(budget, 1e-3);
  config.cancel = job->cancel.token();

  Stopwatch run_watch;
  auto run = parallel::run_parallel_tabu_search(*job->instance, config);
  result.run_seconds = run_watch.elapsed_seconds();

  if (!run.status.ok()) {
    // The backend never started (e.g. proc backend with no worker binary):
    // there is no partial solution, only the supervisor's error.
    result.status = Status::unavailable("backend failed to start: " +
                                        run.status.message());
    {
      std::lock_guard lock(mutex_);
      free_slots_ += job->slots;
      running_.erase(job->id);
      finished_.push_back(job->id);
      ++stats_.cancelled;
    }
    wake_.notify_all();
    obs::metrics().counter("service_cancelled_total").add();
    journal_resolved(*job);
    job->promise.set_value(std::move(result));
    return;
  }

  result.best_value = run.best_value;
  result.best = std::move(run.best);
  result.total_moves = run.total_moves;
  result.reached_target = run.reached_target;
  result.slave_faults = run.master.slave_faults;
  result.counters = run.master.counters;
  result.anytime = std::move(run.master.anytime);

  const auto token = job->cancel.token();
  if (run.reached_target) {
    result.status = Status{};
  } else if (token.cancel_requested()) {
    result.status = Status::cancelled("cancelled while running");
  } else if (deadline_limited && token.deadline_expired()) {
    result.status = Status::deadline_exceeded("deadline passed while running");
  } else {
    result.status = Status{};
  }

  // Retire the job from the books BEFORE resolving the promise, so "the
  // future is ready" implies "cancel(id) returns false". The scheduler may
  // join this thread before set_value runs; that is fine — the join only
  // waits for the return below, and no lock is held past this block.
  bool strike = true;
  {
    std::lock_guard lock(mutex_);
    free_slots_ += job->slots;
    running_.erase(job->id);
    finished_.push_back(job->id);
    stats_.slave_faults += result.slave_faults;
    switch (result.status.code()) {
      case StatusCode::kOk: ++stats_.completed; break;
      case StatusCode::kCancelled: ++stats_.cancelled; break;
      case StatusCode::kDeadlineExceeded: ++stats_.deadline_expired; break;
      default: break;
    }
    // A run cancelled by shutdown stays open in the journal so the next
    // incarnation re-runs it from scratch (solves are idempotent).
    strike = !(stopping_ && result.status.code() == StatusCode::kCancelled);
  }
  switch (result.status.code()) {
    case StatusCode::kOk:
      obs::metrics().counter("service_completed_total").add();
      break;
    case StatusCode::kCancelled:
      obs::metrics().counter("service_cancelled_total").add();
      break;
    case StatusCode::kDeadlineExceeded:
      obs::metrics().counter("service_deadline_missed_total").add();
      break;
    default: break;
  }
  obs::metrics().histogram("job_run_seconds").record(result.run_seconds);
  obs::metrics().histogram("job_total_seconds")
      .record(result.queue_seconds + result.run_seconds);
  wake_.notify_all();
  if (strike) journal_resolved(*job);
  job->promise.set_value(std::move(result));
}

}  // namespace pts::service
