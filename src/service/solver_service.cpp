#include "service/solver_service.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <tuple>
#include <utility>

#include "obs/metrics.hpp"
#include "parallel/codec.hpp"
#include "parallel/presets.hpp"
#include "parallel/snapshot.hpp"
#include "parallel/wire.hpp"
#include "util/check.hpp"

namespace pts::service {

using namespace std::chrono_literals;

namespace {

/// Per-tenant metric name: "tenant_<name><suffix>", with the name sanitized
/// to the metrics registry's identifier alphabet. The default tenant (empty
/// name) reports as "tenant_default...".
std::string tenant_metric(const TenantId& tenant, const char* suffix) {
  std::string name = "tenant_";
  if (tenant.empty()) {
    name += "default";
  } else {
    for (const char c : tenant) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
      name += ok ? c : '_';
    }
  }
  name += suffix;
  return name;
}

/// The dedup identity of a submission's solve shape: its options serialized
/// with the per-caller fields (priority, deadline) neutralized, plus the
/// warm-start policy. Two submissions coalesce only when this — and the
/// instance bytes — match, so sharing a solve never changes what runs.
std::vector<std::uint8_t> solve_key_bytes(const JobOptions& options,
                                          WarmStartPolicy warm_start) {
  JobOptions shape = options;
  shape.priority = 0;
  shape.deadline_seconds.reset();
  parallel::codec::Writer w;
  journal::put_job_options(w, shape);
  w.u8(static_cast<std::uint8_t>(warm_start));
  return w.take();
}

}  // namespace

/// One submission's stake in a solve: its own identity, deadline, journal
/// record and promise. A job starts with one waiter; dedup attaches more.
/// The promise is resolved exactly once, by whichever path terminates the
/// waiter (run fan-out, per-waiter deadline sweep, cancel, shed, shutdown).
struct SolverService::Waiter {
  JobId id = 0;
  JobOrigin origin = JobOrigin::kFresh;
  TenantId tenant;
  std::shared_ptr<const mkp::Instance> instance;
  /// Per-waiter copy with the caller's own priority/deadline — the journal
  /// identity that lets a crashed follower replay as itself.
  JobOptions options;
  WarmStartPolicy warm_start = WarmStartPolicy::kDisabled;
  bool journaled = false;    ///< has a kSubmitted record awaiting its strike
  bool deduplicated = false; ///< attached to an existing job's solve
  JobId dedup_primary = 0;   ///< the job it attached to (compaction re-link)
  Deadline deadline;         ///< unbounded when no deadline was requested
  double queue_seconds = 0.0;  ///< stamped at dispatch (or attach-to-running)
  Stopwatch since_submit;
  std::promise<JobResult> promise;
};

/// One solve, queued or running, fanned out to one or more waiters. The
/// content address + instance bytes + solve key triple is the dedup
/// identity; the tenant charged in the fair-queuing ledger is the primary
/// waiter's.
struct SolverService::Job {
  JobId id = 0;  ///< primary (first) waiter's id; the running_ map key
  std::shared_ptr<const mkp::Instance> instance;
  std::vector<std::uint8_t> instance_bytes;  ///< canonical wire serialization
  std::uint64_t content_hash = 0;            ///< FNV-1a over instance_bytes
  std::vector<std::uint8_t> solve_key;       ///< options minus caller fields
  JobOptions options;                        ///< the solve shape (primary's)
  parallel::ParallelConfig config;  ///< resolved at submit; budget set at dispatch
  std::size_t slots = 1;            ///< pool capacity occupied while running
  int priority = 0;                 ///< max over attached waiters
  TenantId tenant;                  ///< WFQ account charged for the slots
  WarmStartPolicy warm_start = WarmStartPolicy::kDisabled;
  /// Nonzero = the crashed incarnation had dispatched this job with this
  /// start sequence; it outranks every ordinary queued job and replays in
  /// ascending-rank order.
  std::uint64_t resume_rank = 0;
  /// Stamped at dispatch (0 while queued): journal compaction re-emits the
  /// kDispatched record for running jobs from here.
  std::uint64_t start_sequence = 0;
  JobId dispatch_anchor = 0;  ///< first journaled waiter; kDispatched target
  /// The most generous live waiter deadline, fixed at dispatch — the run
  /// gets the longest leash any of its waiters paid for.
  Deadline solve_deadline;
  CancelSource cancel;  ///< armed with solve_deadline at dispatch
  std::vector<std::unique_ptr<Waiter>> waiters;
};

SolverService::SolverService(ServiceConfig config) : config_(std::move(config)) {
  PTS_CHECK_MSG(config_.num_workers >= 1, "the pool needs at least one worker");
  PTS_CHECK_MSG(config_.queue_capacity >= 1, "the queue needs at least one slot");
  free_slots_ = config_.num_workers;

  // Tenant ledgers exist from the start so their gauges report even before
  // the first submission; unlisted tenants get lazily created defaults.
  for (const auto& tenant : config_.tenants) {
    TenantState state;
    state.weight = tenant.weight > 0.0 ? tenant.weight : 1.0;
    state.max_running_slots = tenant.max_running_slots;
    tenants_.emplace(tenant.name, state);
  }

  if (!config_.warm_start_dir.empty()) {
    warm_store_ = std::make_unique<WarmStartStore>(
        config_.warm_start_dir, config_.warm_start_tightness_tolerance);
  }

  // Crash recovery: replay the previous incarnation's journal BEFORE
  // truncating it, then re-enqueue every job whose future never resolved.
  // Resubmitting re-journals the survivors, which compacts the log.
  std::vector<journal::RecoveredJob> replayed;
  if (!config_.journal_path.empty()) {
    auto jobs = journal::recover_jobs(config_.journal_path);
    if (jobs) {
      replayed = std::move(*jobs);
      if (auto opened = journal::JobJournal::open_truncate(config_.journal_path)) {
        journal_ = std::move(*opened);
      }
    }
    // A file that is not a job journal (bad magic/version) is left untouched
    // and journaling stays off — never truncate what we cannot parse.
  }

  scheduler_ = std::thread([this] { scheduler_loop(); });

  for (auto& job : replayed) {
    SubmitRequest request;
    request.instance =
        std::make_shared<const mkp::Instance>(std::move(job.instance));
    request.tenant = std::move(job.tenant);
    request.priority = job.options.priority;
    request.deadline_seconds = job.options.deadline_seconds;
    request.warm_start = job.warm_start;
    request.options = std::move(job.options);
    // Recovered duplicates re-coalesce here: a follower's instance bytes and
    // solve key still match its primary's, so resubmitting both in the old
    // submission order re-attaches them.
    auto outcome = submit_full(std::move(request), JobOrigin::kResumed,
                               job.dispatch_sequence);
    recovered_.push_back(Submission{outcome.id, std::move(outcome.future)});
  }
}

SolverService::~SolverService() { shutdown(); }

Expected<JobHandle> SolverService::submit(SubmitRequest request) {
  auto outcome = submit_full(std::move(request), JobOrigin::kFresh);
  if (!outcome.error.ok()) return outcome.error;
  JobHandle handle;
  handle.id = outcome.id;
  handle.tenant = std::move(outcome.tenant);
  handle.content_hash = outcome.content_hash;
  handle.deduplicated = outcome.deduplicated;
  handle.result = std::move(outcome.future);
  return handle;
}

SolverService::Submission SolverService::submit(mkp::Instance instance,
                                                JobOptions options) {
  SubmitRequest request;
  request.instance =
      std::make_shared<const mkp::Instance>(std::move(instance));
  request.priority = options.priority;
  request.deadline_seconds = options.deadline_seconds;
  request.allow_dedup = false;  // the positional contract: one submit, one run
  request.options = std::move(options);
  auto outcome = submit_full(std::move(request), JobOrigin::kFresh);
  return Submission{outcome.id, std::move(outcome.future)};
}

SolverService::Submission SolverService::submit(
    std::shared_ptr<const mkp::Instance> instance, JobOptions options) {
  SubmitRequest request;
  request.instance = std::move(instance);
  request.priority = options.priority;
  request.deadline_seconds = options.deadline_seconds;
  request.allow_dedup = false;
  request.options = std::move(options);
  auto outcome = submit_full(std::move(request), JobOrigin::kFresh);
  return Submission{outcome.id, std::move(outcome.future)};
}

std::vector<SolverService::Submission> SolverService::take_recovered() {
  std::lock_guard lock(mutex_);
  return std::move(recovered_);
}

void SolverService::journal_resolved(const Waiter& waiter) {
  if (journal_ && waiter.journaled) (void)journal_->append_resolved(waiter.id);
}

void SolverService::resolve_waiter(Waiter& waiter, const Job* job,
                                   Status status) {
  JobResult result;
  result.id = waiter.id;
  result.origin = waiter.origin;
  result.status = std::move(status);
  result.instance = waiter.instance;
  result.queue_seconds = waiter.since_submit.elapsed_seconds();
  result.tenant = waiter.tenant;
  result.deduplicated = waiter.deduplicated;
  if (job != nullptr) {
    result.content_hash = job->content_hash;
    result.start_sequence = job->start_sequence;
  }
  waiter.promise.set_value(std::move(result));
}

SolverService::TenantState& SolverService::tenant_state_locked(
    const TenantId& tenant) {
  auto it = tenants_.find(tenant);
  if (it != tenants_.end()) return it->second;
  TenantState state;  // unlisted tenant: weight 1, no quota
  // A tenant entering the ledger starts level with the busiest one — idle
  // time earns no credit it could later spend starving everyone else.
  state.vtime = global_vtime_;
  return tenants_.emplace(tenant, state).first->second;
}

SolverService::SubmitOutcome SolverService::submit_full(
    SubmitRequest request, JobOrigin origin, std::uint64_t resume_rank) {
  // The request-level urgency fields are authoritative: fold them into the
  // options copy the waiter keeps, so the journal replays them and the solve
  // key (which neutralizes exactly these fields) stays caller-independent.
  request.options.priority = request.priority;
  request.options.deadline_seconds = request.deadline_seconds;

  auto waiter = std::make_unique<Waiter>();
  waiter->origin = origin;
  waiter->tenant = request.tenant;
  waiter->instance = request.instance;
  waiter->options = request.options;
  waiter->warm_start = request.warm_start;

  SubmitOutcome out;
  out.tenant = request.tenant;
  out.future = waiter->promise.get_future();
  {
    std::lock_guard lock(mutex_);
    waiter->id = next_id_++;
    ++stats_.submitted;
    if (origin == JobOrigin::kResumed) ++stats_.resumed;
  }
  obs::metrics().counter("service_submitted_total").add();
  if (origin == JobOrigin::kResumed) {
    obs::metrics().counter("service_resumed_total").add();
  }
  out.id = waiter->id;

  // Validation: every failure is a structured Status, never an abort. The
  // future is resolved with it too, so the positional shim keeps the old
  // resolved-future contract.
  Status invalid;
  std::optional<parallel::ParallelConfig> preset;
  if (!waiter->instance) {
    invalid = Status::invalid_argument("null instance");
  } else if (waiter->options.time_budget_seconds <= 0.0) {
    invalid = Status::invalid_argument("time_budget_seconds must be positive");
  } else if (waiter->options.deadline_seconds &&
             *waiter->options.deadline_seconds < 0.0) {
    invalid = Status::invalid_argument("deadline_seconds must be non-negative");
  } else {
    preset = parallel::preset_by_name(waiter->options.preset,
                                      waiter->options.seed);
    if (!preset) {
      std::string known;
      for (const auto& name : parallel::known_preset_names()) {
        if (!known.empty()) known += ", ";
        known += name;
      }
      invalid = Status::invalid_argument("unknown preset '" +
                                         waiter->options.preset +
                                         "' (known: " + known + ")");
    }
  }
  if (!invalid.ok()) {
    {
      std::lock_guard lock(mutex_);
      ++stats_.invalid;
    }
    obs::metrics().counter("service_invalid_total").add();
    out.error = invalid;
    resolve_waiter(*waiter, nullptr, std::move(invalid));
    return out;
  }

  auto job = std::make_shared<Job>();
  job->instance = waiter->instance;
  job->options = waiter->options;
  job->priority = waiter->options.priority;
  job->tenant = waiter->tenant;
  job->warm_start = waiter->warm_start;
  job->resume_rank = resume_rank;
  job->config = *preset;
  parallel::scale_budget_to_instance(job->config, *job->instance);
  if (job->options.mode) job->config.mode = *job->options.mode;
  if (job->options.backend) {
    job->config.backend = *job->options.backend;
    job->config.proc = job->options.proc;
  }
  job->config.seed = job->options.seed;
  job->config.target_value = job->options.target_value;
  job->config.core.enabled = job->options.core_reduction;
  job->config.fault_injector = config_.fault_injector;
  // Time is the binding limit (set at dispatch); rounds get enough headroom
  // that they can never run out before the budget or deadline does.
  job->config.search_iterations =
      std::max<std::size_t>(job->config.search_iterations, 1'000'000);
  // Clamp the thread ask to the pool width; that clamp IS the
  // no-oversubscription guarantee.
  job->config.num_slaves =
      std::clamp<std::size_t>(job->config.num_slaves, 1, config_.num_workers);
  // ... and to the tenant's running-slot quota: a job asking more slots than
  // its tenant may ever hold would be permanently ineligible for dispatch —
  // the scheduler would skip it forever and its future would never resolve.
  // Shrinking the ask keeps the quota's meaning (concurrency cap) without
  // turning it into a starvation trap.
  for (const auto& tenant : config_.tenants) {
    if (tenant.name == waiter->tenant && tenant.max_running_slots != 0) {
      job->config.num_slaves =
          std::min(job->config.num_slaves, tenant.max_running_slots);
      break;
    }
  }
  job->slots = job->config.mode == parallel::CooperationMode::kSequential
                   ? 1
                   : job->config.num_slaves;
  if (waiter->options.deadline_seconds) {
    waiter->deadline = Deadline::after_seconds(*waiter->options.deadline_seconds);
  }

  // Content address: hash and bytes of the canonical wire serialization.
  {
    parallel::codec::Writer w;
    parallel::wire::put_instance(w, *job->instance);
    job->instance_bytes = w.take();
  }
  job->content_hash = parallel::snapshot::instance_hash64(*job->instance);
  job->solve_key = solve_key_bytes(job->options, job->warm_start);
  out.content_hash = job->content_hash;

  std::unique_lock lock(mutex_);
  if (stopping_) {
    ++stats_.cancelled;
    lock.unlock();
    obs::metrics().counter("service_cancelled_total").add();
    out.error = Status::unavailable("service is shut down");
    resolve_waiter(*waiter, nullptr, Status::unavailable("service is shut down"));
    return out;
  }

  // In-flight dedup: an identical solve already queued or running adopts
  // this submission as an extra waiter instead of a second run. Running jobs
  // only qualify when their committed deadline covers this waiter's — a
  // shared solve must never stop earlier than a waiter paid for.
  if (config_.dedup_in_flight && request.allow_dedup) {
    std::shared_ptr<Job> target;
    const auto matches = [&](const Job& other) {
      return other.content_hash == job->content_hash &&
             other.solve_key == job->solve_key &&
             other.instance_bytes == job->instance_bytes;
    };
    for (const auto& queued : queue_) {
      if (matches(*queued)) {
        target = queued;
        break;
      }
    }
    if (!target) {
      for (const auto& [id, running] : running_) {
        if (!matches(*running)) continue;
        if (running->cancel.token().cancel_requested()) continue;
        const bool covered =
            !running->solve_deadline.is_bounded() ||
            (waiter->deadline.is_bounded() &&
             waiter->deadline.remaining_seconds() <=
                 running->solve_deadline.remaining_seconds());
        if (!covered) continue;
        target = running;
        break;
      }
    }
    if (target) {
      waiter->deduplicated = true;
      waiter->dedup_primary = target->id;
      target->priority = std::max(target->priority, waiter->options.priority);
      if (target->start_sequence != 0) {
        waiter->queue_seconds = waiter->since_submit.elapsed_seconds();
      }
      if (journal_ &&
          journal_->append_submitted(waiter->id, *job->instance,
                                     waiter->options, waiter->tenant,
                                     waiter->warm_start)
              .ok()) {
        waiter->journaled = true;
        (void)journal_->append_dedup(waiter->id, target->id);
        if (target->dispatch_anchor == 0) target->dispatch_anchor = waiter->id;
      }
      ++stats_.dedup_hits;
      out.deduplicated = true;
      target->waiters.push_back(std::move(waiter));
      lock.unlock();
      obs::metrics().counter("service_dedup_hits_total").add();
      obs::metrics().counter(tenant_metric(out.tenant, "_dedup_hits_total")).add();
      return out;
    }
  }

  if (queue_.size() >= config_.queue_capacity) {
    // Backpressure. Shedding evicts the weakest queued job — lowest tenant
    // weight first, then lowest priority, newest on ties — and only when the
    // incoming submission strictly outranks it on (weight, priority);
    // otherwise the incoming submission is the one rejected. With every
    // tenant at the default weight this degrades to the pre-tenant
    // priority-only rule.
    std::shared_ptr<Job> shed;
    if (config_.overflow == OverflowPolicy::kShedLowest) {
      const auto rank = [this](const Job& j) {
        return std::pair(tenant_state_locked(j.tenant).weight, j.priority);
      };
      auto weakest = std::min_element(
          queue_.begin(), queue_.end(), [&](const auto& a, const auto& b) {
            return std::tuple(rank(*a), b->id) < std::tuple(rank(*b), a->id);
          });
      if (weakest != queue_.end() && rank(**weakest) < rank(*job)) {
        shed = *weakest;
        queue_.erase(weakest);
        accept_job_locked(job, std::move(waiter));
      }
    }
    ++stats_.rejected;
    lock.unlock();
    if (shed) {
      obs::metrics().counter("service_shed_total").add();
      for (auto& lost : shed->waiters) {
        journal_resolved(*lost);
        resolve_waiter(*lost, shed.get(),
                       Status::resource_exhausted(
                           "shed by a higher-priority submission (queue full)"));
      }
      wake_.notify_all();
    } else {
      obs::metrics().counter("service_rejected_total").add();
      out.error = Status::resource_exhausted(
          "queue full (capacity " + std::to_string(config_.queue_capacity) +
          ")");
      resolve_waiter(*waiter, nullptr, out.error);
    }
    return out;
  }

  accept_job_locked(job, std::move(waiter));
  lock.unlock();
  wake_.notify_all();
  return out;
}

void SolverService::accept_job_locked(const std::shared_ptr<Job>& job,
                                      std::unique_ptr<Waiter> waiter) {
  // An idle tenant re-entering the queue catches up to the global virtual
  // clock: fairness shares the pool while you're active, it does not bank
  // credit while you're away.
  auto& tenant = tenant_state_locked(job->tenant);
  if (tenant.running_slots == 0 &&
      std::none_of(queue_.begin(), queue_.end(), [&](const auto& queued) {
        return queued->tenant == job->tenant;
      })) {
    tenant.vtime = std::max(tenant.vtime, global_vtime_);
  }
  job->id = waiter->id;
  job->waiters.push_back(std::move(waiter));
  queue_.push_back(job);
  // Journaled under the lock: the job is not dispatchable until the caller
  // unlocks, so its kSubmitted record always precedes any strike. A failed
  // append leaves the job un-journaled but still runs it.
  auto& accepted = *job->waiters.front();
  if (journal_ &&
      journal_->append_submitted(accepted.id, *job->instance, accepted.options,
                                 accepted.tenant, accepted.warm_start)
          .ok()) {
    accepted.journaled = true;
    job->dispatch_anchor = accepted.id;
  }
}

bool SolverService::cancel(JobId id) {
  std::unique_lock lock(mutex_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    auto& job = *it;
    auto found = std::find_if(
        job->waiters.begin(), job->waiters.end(),
        [id](const auto& waiter) { return waiter->id == id; });
    if (found == job->waiters.end()) continue;
    auto waiter = std::move(*found);
    job->waiters.erase(found);
    const auto keep = job;  // resolve needs the job after possible erase
    if (job->waiters.empty()) queue_.erase(it);
    ++stats_.cancelled;
    lock.unlock();
    obs::metrics().counter("service_cancelled_total").add();
    journal_resolved(*waiter);
    resolve_waiter(*waiter, keep.get(),
                   Status::cancelled("cancelled while queued"));
    return true;
  }
  for (auto& [job_id, job] : running_) {
    auto found = std::find_if(
        job->waiters.begin(), job->waiters.end(),
        [id](const auto& waiter) { return waiter->id == id; });
    if (found == job->waiters.end()) continue;
    if (job->waiters.size() == 1) {
      // Last (or only) waiter: the token does the rest — the engine notices
      // within one inner-loop check, the master within one mailbox poll
      // slice; the job thread then resolves the future as kCancelled.
      job->cancel.request_cancel();
      return true;
    }
    // A shared solve loses just this waiter; the run continues for the rest.
    auto waiter = std::move(*found);
    job->waiters.erase(found);
    ++stats_.cancelled;
    const auto keep = job;
    lock.unlock();
    obs::metrics().counter("service_cancelled_total").add();
    journal_resolved(*waiter);
    resolve_waiter(*waiter, keep.get(),
                   Status::cancelled("cancelled while running (detached from "
                                     "shared solve)"));
    return true;
  }
  return false;
}

void SolverService::shutdown() {
  std::vector<std::shared_ptr<Job>> to_resolve;
  std::size_t cancelled_waiters = 0;
  {
    std::lock_guard lock(mutex_);
    if (stopping_) {
      // Second call: scheduler already told to wind down; fall through to
      // the join below (idempotent).
    }
    stopping_ = true;
    to_resolve.swap(queue_);
    for (const auto& job : to_resolve) cancelled_waiters += job->waiters.size();
    stats_.cancelled += cancelled_waiters;
    for (auto& [id, job] : running_) job->cancel.request_cancel();
  }
  wake_.notify_all();
  obs::metrics().counter("service_cancelled_total")
      .add(static_cast<std::uint64_t>(cancelled_waiters));
  for (auto& job : to_resolve) {
    // Deliberately NOT struck from the journal: a queued job cancelled by
    // shutdown is exactly what the next incarnation should resume.
    for (auto& waiter : job->waiters) {
      resolve_waiter(*waiter, job.get(),
                     Status::cancelled("service shutting down"));
    }
  }
  if (scheduler_.joinable()) scheduler_.join();
}

std::size_t SolverService::queued_jobs() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

std::size_t SolverService::running_jobs() const {
  std::lock_guard lock(mutex_);
  return running_.size();
}

ServiceStats SolverService::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void SolverService::sweep_queue_locked() {
  // Queued waiters whose deadline passed before their job ever ran resolve
  // kDeadlineExceeded; a job whose last waiter expires leaves the queue.
  // Swap-and-pop is fine: dispatch re-scans for the best job every time.
  for (std::size_t k = 0; k < queue_.size();) {
    auto& job = queue_[k];
    for (std::size_t w = 0; w < job->waiters.size();) {
      if (!job->waiters[w]->deadline.expired()) {
        ++w;
        continue;
      }
      auto waiter = std::move(job->waiters[w]);
      job->waiters.erase(job->waiters.begin() + static_cast<std::ptrdiff_t>(w));
      ++stats_.deadline_expired;
      obs::metrics().counter("service_deadline_missed_total").add();
      journal_resolved(*waiter);
      resolve_waiter(*waiter, job.get(),
                     Status::deadline_exceeded("deadline passed while queued"));
    }
    if (job->waiters.empty()) {
      queue_[k] = queue_.back();
      queue_.pop_back();
    } else {
      ++k;
    }
  }
  // Waiters on a RUNNING solve with a stricter deadline than the run's own:
  // resolve them the moment their deadline passes. Only while the solve's
  // deadline itself still stands — a never-shared job's waiter deadline IS
  // the solve deadline (they expire together), so this never fires for it
  // and the legacy run-resolves-the-future path is untouched. No waiter
  // count guard: a shared solve whose most generous waiter detached leaves
  // ONE waiter under a longer solve deadline, and its own deadline must
  // still be honored.
  for (auto& [id, job] : running_) {
    if (job->solve_deadline.expired()) continue;
    for (std::size_t w = 0; w < job->waiters.size();) {
      if (!job->waiters[w]->deadline.expired()) {
        ++w;
        continue;
      }
      auto waiter = std::move(job->waiters[w]);
      job->waiters.erase(job->waiters.begin() + static_cast<std::ptrdiff_t>(w));
      ++stats_.deadline_expired;
      obs::metrics().counter("service_deadline_missed_total").add();
      journal_resolved(*waiter);
      resolve_waiter(*waiter, job.get(),
                     Status::deadline_exceeded("deadline passed while running"));
    }
    if (job->waiters.empty()) job->cancel.request_cancel();
  }
}

void SolverService::dispatch_ready_locked() {
  for (;;) {
    // Jobs the crashed incarnation had already dispatched come first,
    // replayed in their original start order — strictly: if the next one in
    // line does not fit the free capacity, nothing jumps it.
    auto best = queue_.end();
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if ((*it)->resume_rank == 0) continue;
      if (best == queue_.end() || (*it)->resume_rank < (*best)->resume_rank) {
        best = it;
      }
    }
    if (best == queue_.end()) {
      // Weighted-fair queuing: each tenant nominates its best queued job
      // (priority desc, ties in submission order) and the eligible tenant
      // with the least virtual time wins. A tenant at its running-slot quota
      // is skipped entirely; the winner's job waits for capacity at the head
      // of the line (strict: no smaller job overtakes it). With one tenant
      // this is exactly the old strict-priority order.
      const auto job_before = [](const Job& a, const Job& b) {
        if (a.priority != b.priority) return a.priority > b.priority;
        return a.id < b.id;
      };
      double best_vtime = std::numeric_limits<double>::infinity();
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        auto& tenant = tenant_state_locked((*it)->tenant);
        if (tenant.max_running_slots != 0 &&
            tenant.running_slots + (*it)->slots > tenant.max_running_slots) {
          continue;
        }
        const bool wins =
            best == queue_.end() || tenant.vtime < best_vtime ||
            (tenant.vtime == best_vtime && job_before(**it, **best));
        if (wins) {
          best = it;
          best_vtime = tenant.vtime;
        }
      }
    }
    if (best == queue_.end() || (*best)->slots > free_slots_) return;
    auto job = *best;
    queue_.erase(best);
    free_slots_ -= job->slots;
    running_.emplace(job->id, job);
    auto& tenant = tenant_state_locked(job->tenant);
    tenant.running_slots += job->slots;
    tenant.vtime += static_cast<double>(job->slots) / tenant.weight;
    global_vtime_ = std::max(global_vtime_, tenant.vtime);
    const std::uint64_t seq = next_start_sequence_++;
    job->start_sequence = seq;
    // The solve runs on the longest leash any live waiter paid for; the
    // cancel source is armed with it here, which is equivalent to arming at
    // submit (deadlines are absolute points in time).
    bool any_unbounded = false;
    const Waiter* most_generous = nullptr;
    double most_remaining = -1.0;
    for (auto& waiter : job->waiters) {
      waiter->queue_seconds = waiter->since_submit.elapsed_seconds();
      if (!waiter->deadline.is_bounded()) {
        any_unbounded = true;
        continue;
      }
      const double remaining = waiter->deadline.remaining_seconds();
      if (remaining > most_remaining) {
        most_remaining = remaining;
        most_generous = waiter.get();
      }
    }
    job->solve_deadline = any_unbounded || most_generous == nullptr
                              ? Deadline{}
                              : most_generous->deadline;
    job->cancel = CancelSource(job->solve_deadline);
    obs::metrics().histogram("job_queue_seconds")
        .record(job->waiters.front()->queue_seconds);
    obs::metrics().histogram(tenant_metric(job->tenant, "_dispatch_seconds"))
        .record(job->waiters.front()->queue_seconds);
    // Stamp the commitment before the thread exists: if we crash between
    // the append and the spawn, replay still restores this job at the front
    // in this order — exactly what the dispatch decision promised.
    if (journal_ && job->dispatch_anchor != 0) {
      (void)journal_->append_dispatched(job->dispatch_anchor, seq);
    }
    job_threads_.emplace(job->id,
                         std::thread([this, job, seq] { run_job(job, seq); }));
  }
}

void SolverService::reap_finished_locked(std::unique_lock<std::mutex>& lock) {
  // Joining under the lock is safe: a finished thread's only remaining work
  // is returning from its function (it never re-acquires the mutex).
  (void)lock;
  for (JobId id : finished_) {
    auto it = job_threads_.find(id);
    if (it == job_threads_.end()) continue;
    it->second.join();
    job_threads_.erase(it);
  }
  finished_.clear();
}

void SolverService::maybe_compact_journal_locked() {
  if (!journal_ || config_.journal_compact_every_records == 0) return;
  const std::uint64_t appended = journal_->records_appended();
  if (appended < config_.journal_compact_every_records) return;

  // The compacted image holds one kSubmitted per open journaled waiter, one
  // kDispatched for the anchor of each running job, and one kDedup per
  // attached follower. Only rewrite when that at least halves the log —
  // without the hysteresis a standing queue of N jobs would re-trigger every
  // `journal_compact_every_records` appends for no space gain.
  std::vector<journal::LiveJob> live;
  const auto collect = [&](const Job& job) {
    for (const auto& waiter : job.waiters) {
      if (!waiter->journaled) continue;
      journal::LiveJob entry;
      entry.id = waiter->id;
      entry.instance = job.instance.get();
      entry.options = &waiter->options;
      entry.dispatch_sequence =
          waiter->id == job.dispatch_anchor ? job.start_sequence : 0;
      entry.tenant = &waiter->tenant;
      entry.warm_start = waiter->warm_start;
      entry.dedup_primary = waiter->dedup_primary;
      live.push_back(entry);
    }
  };
  for (const auto& job : queue_) collect(*job);
  for (const auto& [id, job] : running_) collect(*job);
  std::uint64_t needed = 0;
  for (const auto& entry : live) {
    needed += 1;
    if (entry.dispatch_sequence != 0) needed += 1;
    if (entry.dedup_primary != 0) needed += 1;
  }
  if (appended < 2 * needed + 1) return;
  // Holding the service mutex across the rewrite is the correctness
  // argument: every append_submitted happens under this lock, so no new
  // submission can land in the file being replaced. A concurrent
  // append_resolved (job threads strike outside the lock) serializes on the
  // journal's own mutex and lands in whichever file wins — both orders
  // replay correctly (an unmatched kResolved is inert).
  (void)journal_->compact(live);
}

void SolverService::scheduler_loop() {
  std::unique_lock lock(mutex_);
  auto& queue_depth = obs::metrics().gauge("service_queue_depth");
  auto& active_jobs = obs::metrics().gauge("service_active_jobs");
  auto& free_slots = obs::metrics().gauge("service_free_slots");
  for (;;) {
    reap_finished_locked(lock);
    sweep_queue_locked();
    if (!stopping_) dispatch_ready_locked();
    maybe_compact_journal_locked();
    queue_depth.set(static_cast<double>(queue_.size()));
    active_jobs.set(static_cast<double>(running_.size()));
    free_slots.set(static_cast<double>(free_slots_));
    for (const auto& [name, state] : tenants_) {
      std::size_t waiting = 0;
      for (const auto& job : queue_) {
        for (const auto& waiter : job->waiters) {
          if (waiter->tenant == name) ++waiting;
        }
      }
      obs::metrics().gauge(tenant_metric(name, "_queue_depth"))
          .set(static_cast<double>(waiting));
      obs::metrics().gauge(tenant_metric(name, "_running_slots"))
          .set(static_cast<double>(state.running_slots));
    }
    if (stopping_ && queue_.empty() && running_.empty() && job_threads_.empty()) {
      return;
    }
    // Timed wait: deadline sweeps need a tick even when nothing notifies.
    wake_.wait_for(lock, 10ms);
  }
}

void SolverService::run_job(const std::shared_ptr<Job>& job,
                            std::uint64_t start_sequence) {
  // Warm start: seed the run from the store before it spins up. The lookup
  // runs here, on the job thread, so disk reads never sit under the service
  // mutex or stall the scheduler tick. Core-reduced runs are excluded — the
  // store's solutions live in full-variable space.
  std::optional<WarmStartStore::Hit> warm;
  parallel::ParallelConfig config = job->config;
  if (warm_store_ && job->warm_start != WarmStartPolicy::kDisabled &&
      !config.core.enabled) {
    warm = warm_store_->lookup(*job->instance, job->content_hash,
                               job->warm_start);
    if (warm) {
      config.warm_start = &warm->warm;
      {
        std::lock_guard lock(mutex_);
        ++stats_.warm_started;
      }
      obs::metrics().counter("service_warm_started_total").add();
    }
  }

  // Budget: the job's own solve budget, truncated by whatever the solve
  // deadline has left. The engine needs a positive bound even when the
  // deadline passed between dispatch and here; the token stops it within one
  // check.
  double budget = job->options.time_budget_seconds;
  bool deadline_limited = false;
  if (job->solve_deadline.is_bounded()) {
    const double remaining = job->solve_deadline.remaining_seconds();
    if (remaining < budget) {
      budget = remaining;
      deadline_limited = true;
    }
  }
  config.time_limit_seconds = std::max(budget, 1e-3);
  config.cancel = job->cancel.token();

  Stopwatch run_watch;
  auto run = parallel::run_parallel_tabu_search(*job->instance, config);
  const double run_seconds = run_watch.elapsed_seconds();

  // Shared result template; each waiter's copy gets its own identity fields.
  JobResult base;
  base.instance = job->instance;
  base.run_seconds = run_seconds;
  base.start_sequence = start_sequence;
  base.content_hash = job->content_hash;
  base.tenant = job->tenant;
  base.warm_started = warm.has_value();

  if (!run.status.ok()) {
    // The backend never started (e.g. proc backend with no worker binary):
    // there is no partial solution, only the supervisor's error.
    base.status = Status::unavailable("backend failed to start: " +
                                      run.status.message());
    std::vector<std::unique_ptr<Waiter>> waiters;
    {
      std::lock_guard lock(mutex_);
      free_slots_ += job->slots;
      tenant_state_locked(job->tenant).running_slots -= job->slots;
      running_.erase(job->id);
      finished_.push_back(job->id);
      waiters.swap(job->waiters);
      stats_.backend_failures += waiters.size();
    }
    wake_.notify_all();
    obs::metrics().counter("service_backend_failures_total")
        .add(static_cast<std::uint64_t>(waiters.size()));
    for (auto& waiter : waiters) {
      journal_resolved(*waiter);
      JobResult result = base;
      result.id = waiter->id;
      result.origin = waiter->origin;
      result.tenant = waiter->tenant;
      result.deduplicated = waiter->deduplicated;
      result.queue_seconds = waiter->queue_seconds;
      waiter->promise.set_value(std::move(result));
    }
    return;
  }

  base.best_value = run.best_value;
  // The store is written after the fan-out, but run.best moves into the
  // results below — keep it a copy of the best for the save.
  std::optional<mkp::Solution> warm_best;
  if (warm_store_ && !job->config.core.enabled &&
      !run.master.final_slaves.empty()) {
    warm_best = run.best;
  }
  base.best = std::move(run.best);
  base.total_moves = run.total_moves;
  base.reached_target = run.reached_target;
  base.slave_faults = run.master.slave_faults;
  base.counters = run.master.counters;
  base.anytime = std::move(run.master.anytime);

  const auto token = job->cancel.token();
  if (run.reached_target) {
    base.status = Status{};
  } else if (token.cancel_requested()) {
    base.status = Status::cancelled("cancelled while running");
  } else if (deadline_limited && token.deadline_expired()) {
    base.status = Status::deadline_exceeded("deadline passed while running");
  } else {
    base.status = Status{};
  }

  // Retire the job from the books BEFORE resolving the promises, so "the
  // future is ready" implies "cancel(id) returns false". The scheduler may
  // join this thread before set_value runs; that is fine — the join only
  // waits for the return below, and no lock is held past this block.
  bool strike = true;
  std::vector<std::unique_ptr<Waiter>> waiters;
  {
    std::lock_guard lock(mutex_);
    free_slots_ += job->slots;
    tenant_state_locked(job->tenant).running_slots -= job->slots;
    running_.erase(job->id);
    finished_.push_back(job->id);
    waiters.swap(job->waiters);
    stats_.slave_faults += base.slave_faults;
    for (std::size_t i = 0; i < waiters.size(); ++i) {
      switch (base.status.code()) {
        case StatusCode::kOk: ++stats_.completed; break;
        case StatusCode::kCancelled: ++stats_.cancelled; break;
        case StatusCode::kDeadlineExceeded: ++stats_.deadline_expired; break;
        default: break;
      }
    }
    // A run cancelled by shutdown stays open in the journal so the next
    // incarnation re-runs it from scratch (solves are idempotent).
    strike = !(stopping_ && base.status.code() == StatusCode::kCancelled);
  }
  for (std::size_t i = 0; i < waiters.size(); ++i) {
    switch (base.status.code()) {
      case StatusCode::kOk:
        obs::metrics().counter("service_completed_total").add();
        break;
      case StatusCode::kCancelled:
        obs::metrics().counter("service_cancelled_total").add();
        break;
      case StatusCode::kDeadlineExceeded:
        obs::metrics().counter("service_deadline_missed_total").add();
        break;
      default: break;
    }
  }
  obs::metrics().histogram("job_run_seconds").record(base.run_seconds);
  obs::metrics().histogram("job_total_seconds")
      .record((waiters.empty() ? 0.0 : waiters.front()->queue_seconds) +
              base.run_seconds);
  wake_.notify_all();
  const bool run_completed_ok = base.status.ok();  // base moves in the fan-out
  // Fan the one run out to every waiter that stayed attached to the end.
  for (std::size_t i = 0; i < waiters.size(); ++i) {
    auto& waiter = waiters[i];
    if (strike) journal_resolved(*waiter);
    JobResult result = i + 1 == waiters.size() ? std::move(base) : base;
    result.id = waiter->id;
    result.origin = waiter->origin;
    result.tenant = waiter->tenant;
    result.deduplicated = waiter->deduplicated;
    result.queue_seconds = waiter->queue_seconds;
    waiter->promise.set_value(std::move(result));
  }

  // Persist the finished run's per-slave state for future warm starts. Only
  // clean, full-space, cooperative runs qualify; keep-the-best filtering
  // happens inside the store.
  if (warm_store_ && run_completed_ok && warm_best) {
    (void)warm_store_->save(*job->instance, job->content_hash, *warm_best,
                            run.master.final_slaves);
  }
}

}  // namespace pts::service
