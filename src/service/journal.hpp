#pragma once
// Crash-safe job journal for the solver service (DESIGN.md §9). An append-
// only log of three record kinds — "job submitted" (with the full instance
// and options, enough to re-run it), "job dispatched" (the scheduler's
// global start sequence, so a restart can restore dispatch ORDER, not just
// the job set) and "job resolved" — so a service that is killed mid-flight
// can replay the file on restart and re-enqueue exactly the jobs whose
// futures never resolved. Those jobs re-enter the queue as
// JobOrigin::kResumed, and the ones that had already started run first, in
// their original dispatch order, before any not-yet-dispatched job.
//
// Format. One file header (magic 'PTSJ', version byte), then records:
//
//   u8 type | u32 crc32(body) | u32 body_len | body
//
// Appends are written with a single write(2) followed by fsync, so a crash
// leaves at most one torn record — always at the tail. The reader treats any
// malformed tail (short header, impossible length, CRC mismatch) as the
// crash point and cleanly stops there; everything before it is trusted. The
// journal therefore gives at-least-once semantics: a job resolved in the
// instant between its run and the resolved-record fsync runs again after
// restart, which is safe because solves are idempotent.
//
// The instance travels via wire::put_instance / get_instance and the options
// via the codec conventions of parallel/codec.hpp, so the journal inherits
// the bounds-checked total-decoder behavior the wire fuzz tests pin down.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mkp/instance.hpp"
#include "parallel/codec.hpp"
#include "service/job.hpp"
#include "util/status.hpp"

namespace pts::service::journal {

/// v3 adds multi-tenant metadata (tenant + warm-start policy tail on the
/// kSubmitted body) and the kDedup record linking a deduplicated follower
/// submission to the primary job whose solve it shares. v2 added the
/// kDispatched record and the options' core_reduction flag. Older files
/// replay fine: missing tails default (no tenant, warm start off) and the
/// new record type simply never appears.
inline constexpr std::uint8_t kJournalVersion = 3;
inline constexpr std::uint8_t kJournalMinVersion = 1;
/// File header: 4 magic bytes + 1 version byte.
inline constexpr std::size_t kJournalHeaderBytes = 5;
/// Record frame: type (1) + crc (4) + body_len (4).
inline constexpr std::size_t kRecordHeaderBytes = 9;
/// Per-record body ceiling — far above any real instance, far below an
/// allocation that a corrupt length prefix could weaponize.
inline constexpr std::uint64_t kMaxRecordBytes = 256ull << 20;

enum class RecordType : std::uint8_t {
  kSubmitted = 1,   ///< body: job id + instance + options [+ tenant, warm (v3)]
  kResolved = 2,    ///< body: job id (the future resolved, any status)
  kDispatched = 3,  ///< body: job id + scheduler start sequence (v2)
  kDedup = 4,       ///< body: follower job id + primary job id (v3)
};

/// A submission that survived replay: journaled but never resolved.
struct RecoveredJob {
  JobId id = 0;  ///< id in the previous incarnation (resubmit assigns a new one)
  mkp::Instance instance;
  JobOptions options;
  /// The previous incarnation's dispatch order (1-based start sequence);
  /// 0 when the job was still queued at the crash. The service dispatches
  /// nonzero holders first, in ascending sequence — a restart continues the
  /// schedule, it does not re-derive one from priorities alone.
  std::uint64_t dispatch_sequence = 0;
  /// Multi-tenant metadata (v3; defaults for older files).
  TenantId tenant;
  WarmStartPolicy warm_start = WarmStartPolicy::kDisabled;
  /// Nonzero: this submission had attached to that primary job's in-flight
  /// solve (kDedup). Provenance only — resubmitting both re-coalesces them
  /// naturally, since their instance bytes and solve shape still match.
  JobId dedup_primary = 0;
};

/// One still-open job at compaction time: everything the compacted file must
/// preserve so a crash right after the rewrite replays the same set. The
/// pointers borrow from the service's job table; the caller holds its lock
/// across the compact() call.
struct LiveJob {
  JobId id = 0;
  const mkp::Instance* instance = nullptr;
  const JobOptions* options = nullptr;
  /// Nonzero when the scheduler already dispatched the job: the rewrite
  /// emits a kDispatched record so replay keeps the committed start order.
  std::uint64_t dispatch_sequence = 0;
  const TenantId* tenant = nullptr;  ///< nullptr = default tenant
  WarmStartPolicy warm_start = WarmStartPolicy::kDisabled;
  /// Nonzero: re-emit the kDedup link to this primary job.
  JobId dedup_primary = 0;
};

/// Append-only journal writer. Thread-safe: the service appends from the
/// submit path, the scheduler and every job thread.
class JobJournal {
 public:
  ~JobJournal();

  JobJournal(const JobJournal&) = delete;
  JobJournal& operator=(const JobJournal&) = delete;

  /// Creates (or truncates) `path` and writes the file header. Recovery
  /// reads the old journal FIRST (recover_jobs), then truncates — the
  /// surviving jobs are re-appended by the service as it resubmits them,
  /// which compacts the log on every restart.
  [[nodiscard]] static Expected<std::unique_ptr<JobJournal>> open_truncate(
      const std::string& path);

  /// Journals an accepted submission (id + everything needed to re-run it,
  /// including its tenant and warm-start policy).
  Status append_submitted(JobId id, const mkp::Instance& instance,
                          const JobOptions& options,
                          const TenantId& tenant = {},
                          WarmStartPolicy warm_start = WarmStartPolicy::kDisabled);

  /// Journals a deduplicated submission: `follower` attached to `primary`'s
  /// in-flight solve. Replay keeps the provenance on the follower's
  /// RecoveredJob; an unmatched link (either side resolved) is inert.
  Status append_dedup(JobId follower, JobId primary);

  /// Journals the moment the scheduler starts a job, with its global start
  /// sequence. Replay attaches it to the open submission so a restarted
  /// service can restore the dispatch order the crashed one had committed to.
  Status append_dispatched(JobId id, std::uint64_t start_sequence);

  /// Journals a terminal resolution; the pair (submitted, resolved) cancels
  /// out at replay. Shutdown-caused resolutions are deliberately NOT
  /// journaled by the service, so those jobs recover on restart.
  Status append_resolved(JobId id);

  /// Rewrites the journal in place to exactly the still-open jobs, without a
  /// restart: full image (header + one kSubmitted per job + kDispatched for
  /// the already-started ones) to `path.tmp`, fsync, rename over `path`,
  /// directory fsync — the snapshot discipline — then future appends go to
  /// the new file. A crash at ANY point replays either the old log or the
  /// compacted one, never a mix. The caller must guarantee no concurrent
  /// submissions race the `live` set (the service compacts under its own
  /// mutex, which also serializes append_submitted).
  Status compact(const std::vector<LiveJob>& live);

  /// Records appended (or rewritten by compact) since open — the size signal
  /// the service's compaction trigger watches.
  [[nodiscard]] std::uint64_t records_appended() const;

 private:
  JobJournal(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  Status append(RecordType type, const std::vector<std::uint8_t>& body);

  mutable std::mutex mutex_;
  int fd_ = -1;
  std::string path_;
  std::uint64_t records_appended_ = 0;
};

/// Replays `path`: every kSubmitted record without a matching kResolved
/// record survives, in submission order. A missing file is an empty journal
/// (fresh start), and a torn or corrupt tail record ends the replay cleanly;
/// a bad file header (foreign magic, unknown version) is an error.
[[nodiscard]] Expected<std::vector<RecoveredJob>> recover_jobs(
    const std::string& path);

// -- Sub-codecs, exposed for the recover-label fuzz tests. --

void put_job_options(parallel::codec::Writer& w, const JobOptions& options);
/// `version` is the journal file's header version: v1 bodies end before the
/// core_reduction flag, which then defaults to off.
[[nodiscard]] Expected<JobOptions> get_job_options(
    parallel::codec::Reader& r, std::uint8_t version = kJournalVersion);

}  // namespace pts::service::journal
