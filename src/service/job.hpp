#pragma once
// Job vocabulary for the solver service: what a caller submits, what a
// job's future resolves to, and how the pool is shaped. Pure data — the
// scheduling machinery lives in solver_service.hpp.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mkp/instance.hpp"
#include "mkp/solution.hpp"
#include "obs/anytime.hpp"
#include "obs/counters.hpp"
#include "parallel/comm.hpp"
#include "parallel/runner.hpp"
#include "util/status.hpp"

namespace pts::service {

using JobId = std::uint64_t;

/// How a job entered the service. kResumed jobs were replayed from the job
/// journal after a crash or restart (DESIGN.md §9); they run identically to
/// fresh jobs, the tag only surfaces provenance in JobResult and stats.
enum class JobOrigin : std::uint8_t {
  kFresh = 0,
  kResumed = 1,
};

struct JobOptions {
  /// Named preset resolving the search shape; an unknown name resolves the
  /// job's future to kInvalidArgument immediately — never an abort.
  std::string preset = "balanced";
  /// The solve's own wall-time budget once running (a job that spends it in
  /// full still resolves OK).
  double time_budget_seconds = 2.0;
  /// Hard wall-clock deadline measured from submit(). A queued job whose
  /// deadline passes resolves kDeadlineExceeded without running; a running
  /// job is cooperatively cancelled and resolves kDeadlineExceeded with the
  /// best found so far.
  std::optional<double> deadline_seconds;
  /// Higher runs first; ties run in submission order.
  int priority = 0;
  std::uint64_t seed = 1;
  std::optional<double> target_value;
  /// Override the preset's cooperation mode (SEQ/ITS/CTS1/CTS2).
  std::optional<parallel::CooperationMode> mode;
  /// Override the slave execution backend (thread/proc). With
  /// Backend::kProcess, `proc` shapes the worker farm (binary path,
  /// heartbeat, respawn budget); a backend that fails to start resolves the
  /// job's future kUnavailable with the supervisor's error.
  std::optional<parallel::Backend> backend;
  parallel::ProcOptions proc;
  /// LP core-problem reduction before the search (ParallelConfig::core).
  /// The job's best is always reported in full space.
  bool core_reduction = false;
};

/// What a job's future resolves to — always. The service never aborts and
/// never leaves a future unresolved, including through shutdown.
struct JobResult {
  JobId id = 0;
  /// kResumed when this job was re-enqueued from the journal on restart.
  JobOrigin origin = JobOrigin::kFresh;
  /// OK: ran its budget (or hit its target). kDeadlineExceeded/kCancelled
  /// still carry the best found if the job got to run at all.
  /// kInvalidArgument (bad options), kResourceExhausted (queue backpressure)
  /// and kUnavailable (shutdown) carry no solution.
  Status status;
  /// Keeps `best` valid independent of the caller's and the service's
  /// lifetimes (solutions reference their instance).
  std::shared_ptr<const mkp::Instance> instance;
  std::optional<mkp::Solution> best;
  double best_value = 0.0;
  std::uint64_t total_moves = 0;
  bool reached_target = false;
  std::size_t slave_faults = 0;  ///< rounds that degraded to P-1 reports

  double queue_seconds = 0.0;  ///< submit -> dispatch (or terminal decision)
  double run_seconds = 0.0;    ///< dispatch -> finish (0 if never ran)
  /// Global dispatch order, 1-based; 0 for jobs that never started. Lets
  /// tests (and callers) observe the priority order actually enforced.
  std::uint64_t start_sequence = 0;

  /// Per-job telemetry, keyed by this id: the run's merged counter block and
  /// stitched anytime curve (empty when telemetry is disabled).
  obs::Counters counters;
  std::vector<obs::AnytimeSample> anytime;
};

/// What to do when the bounded queue is full.
enum class OverflowPolicy : std::uint8_t {
  /// Resolve the incoming job kResourceExhausted.
  kRejectNew,
  /// Shed the lowest-priority queued job if the incoming one outranks it
  /// (the shed job resolves kResourceExhausted); otherwise reject the
  /// incoming one.
  kShedLowest,
};

struct ServiceConfig {
  /// Pool width: the maximum number of concurrently running search threads
  /// across all jobs. A job's preset thread ask is clamped to this, and jobs
  /// are only dispatched when their ask fits in the free capacity — 50
  /// queued jobs on a 4-wide pool drain without oversubscription.
  std::size_t num_workers = 4;
  /// Bounded backlog of not-yet-running jobs; overflow applies `overflow`.
  std::size_t queue_capacity = 64;
  OverflowPolicy overflow = OverflowPolicy::kRejectNew;
  /// Crash safety (DESIGN.md §9): non-empty = journal every accepted job and
  /// every terminal resolution here. On construction the service replays the
  /// file and re-enqueues the jobs whose futures never resolved (including
  /// jobs the previous incarnation's shutdown() cancelled) as
  /// JobOrigin::kResumed; their futures come back via take_recovered().
  /// Journaling is best-effort: an unwritable path degrades to no journal.
  std::string journal_path;
  /// Compact the journal in place (rewrite to just the still-open jobs, see
  /// JobJournal::compact) once it has accumulated this many records AND the
  /// rewrite would shrink it — no restart required. 0 disables periodic
  /// compaction (the replay-then-truncate on construction still compacts).
  std::uint64_t journal_compact_every_records = 256;
  /// Test-only: forwarded to every job's slaves (see parallel/comm.hpp).
  const parallel::FaultInjector* fault_injector = nullptr;
};

/// Cumulative service counters (all monotone).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t invalid = 0;           ///< resolved kInvalidArgument at submit
  std::uint64_t rejected = 0;          ///< backpressure (kResourceExhausted)
  std::uint64_t completed = 0;         ///< resolved OK
  std::uint64_t cancelled = 0;         ///< resolved kCancelled / kUnavailable
  std::uint64_t deadline_expired = 0;  ///< resolved kDeadlineExceeded
  std::uint64_t slave_faults = 0;      ///< summed over finished runs
  std::uint64_t resumed = 0;           ///< re-enqueued from the journal
};

}  // namespace pts::service
