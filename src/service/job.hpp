#pragma once
// Job vocabulary for the solver service: what a caller submits, what a
// job's future resolves to, and how the pool is shaped. Pure data — the
// scheduling machinery lives in solver_service.hpp.

#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mkp/instance.hpp"
#include "mkp/solution.hpp"
#include "obs/anytime.hpp"
#include "obs/counters.hpp"
#include "parallel/comm.hpp"
#include "parallel/runner.hpp"
#include "util/status.hpp"

namespace pts::service {

using JobId = std::uint64_t;

/// Tenant identity: who a submission runs on behalf of. Plain names ("prod",
/// "batch-lowpri"); the empty string means the default tenant. Names appear
/// mangled into per-tenant metric names, so stick to [a-zA-Z0-9_-].
using TenantId = std::string;

/// Fair-share configuration for one tenant (ServiceConfig::tenants). Tenants
/// not listed run with weight 1 and no quota.
struct TenantConfig {
  TenantId name;
  /// Relative share of pool capacity under contention (weighted-fair
  /// queuing: a tenant's virtual time advances by slots/weight per
  /// dispatch, and the scheduler always serves the smallest virtual time).
  /// Also the shed rank under backpressure: lowest-weight work sheds first.
  double weight = 1.0;
  /// Hard cap on this tenant's concurrently running slots; 0 = uncapped.
  std::size_t max_running_slots = 0;
};

/// Whether (and how) a submission may be seeded from the warm-start store.
enum class WarmStartPolicy : std::uint8_t {
  kDisabled = 0,  ///< classic cold start (bit-identical to pre-store behavior)
  kExact = 1,     ///< seed only from a run of the byte-identical instance
  /// Exact hit preferred; otherwise a (m, n, tightness)-similar instance's
  /// strategies and SGP scores seed the run (its solutions cannot — they
  /// belong to a different instance).
  kSimilar = 2,
};

[[nodiscard]] std::string to_string(WarmStartPolicy policy);
/// Parses "off" / "exact" / "similar" (case-insensitive) — the --warm-start
/// flag vocabulary.
[[nodiscard]] Expected<WarmStartPolicy> warm_start_policy_from_string(
    const std::string& text);

/// How a job entered the service. kResumed jobs were replayed from the job
/// journal after a crash or restart (DESIGN.md §9); they run identically to
/// fresh jobs, the tag only surfaces provenance in JobResult and stats.
enum class JobOrigin : std::uint8_t {
  kFresh = 0,
  kResumed = 1,
};

struct JobOptions {
  /// Named preset resolving the search shape; an unknown name resolves the
  /// job's future to kInvalidArgument immediately — never an abort.
  std::string preset = "balanced";
  /// The solve's own wall-time budget once running (a job that spends it in
  /// full still resolves OK).
  double time_budget_seconds = 2.0;
  /// Hard wall-clock deadline measured from submit(). A queued job whose
  /// deadline passes resolves kDeadlineExceeded without running; a running
  /// job is cooperatively cancelled and resolves kDeadlineExceeded with the
  /// best found so far.
  std::optional<double> deadline_seconds;
  /// Higher runs first; ties run in submission order.
  int priority = 0;
  std::uint64_t seed = 1;
  std::optional<double> target_value;
  /// Override the preset's cooperation mode (SEQ/ITS/CTS1/CTS2).
  std::optional<parallel::CooperationMode> mode;
  /// Override the slave execution backend (thread/proc). With
  /// Backend::kProcess, `proc` shapes the worker farm (binary path,
  /// heartbeat, respawn budget); a backend that fails to start resolves the
  /// job's future kUnavailable with the supervisor's error.
  std::optional<parallel::Backend> backend;
  parallel::ProcOptions proc;
  /// LP core-problem reduction before the search (ParallelConfig::core).
  /// The job's best is always reported in full space.
  bool core_reduction = false;
};

/// One submission under the redesigned API: everything the service needs to
/// admit, schedule and (maybe) share a solve. The request-level `priority`
/// and `deadline_seconds` are authoritative — they overwrite the same-named
/// JobOptions fields at submit, so per-caller urgency never fragments the
/// dedup key (two tenants with different deadlines can still share one
/// solve of the same instance).
struct SubmitRequest {
  std::shared_ptr<const mkp::Instance> instance;
  TenantId tenant;  ///< empty = the default tenant (weight 1, no quota)
  int priority = 0;
  std::optional<double> deadline_seconds;
  WarmStartPolicy warm_start = WarmStartPolicy::kDisabled;
  /// Opt out of in-flight dedup for this submission only (the config-level
  /// ServiceConfig::dedup_in_flight switch gates the whole mechanism).
  bool allow_dedup = true;
  JobOptions options;
};


/// What a job's future resolves to — always. The service never aborts and
/// never leaves a future unresolved, including through shutdown.
struct JobResult {
  JobId id = 0;
  /// kResumed when this job was re-enqueued from the journal on restart.
  JobOrigin origin = JobOrigin::kFresh;
  /// OK: ran its budget (or hit its target). kDeadlineExceeded/kCancelled
  /// still carry the best found if the job got to run at all.
  /// kInvalidArgument (bad options), kResourceExhausted (queue backpressure)
  /// and kUnavailable (shutdown) carry no solution.
  Status status;
  /// Keeps `best` valid independent of the caller's and the service's
  /// lifetimes (solutions reference their instance).
  std::shared_ptr<const mkp::Instance> instance;
  std::optional<mkp::Solution> best;
  double best_value = 0.0;
  std::uint64_t total_moves = 0;
  bool reached_target = false;
  std::size_t slave_faults = 0;  ///< rounds that degraded to P-1 reports

  double queue_seconds = 0.0;  ///< submit -> dispatch (or terminal decision)
  double run_seconds = 0.0;    ///< dispatch -> finish (0 if never ran)
  /// Global dispatch order, 1-based; 0 for jobs that never started. Lets
  /// tests (and callers) observe the priority order actually enforced.
  std::uint64_t start_sequence = 0;

  /// Per-job telemetry, keyed by this id: the run's merged counter block and
  /// stitched anytime curve (empty when telemetry is disabled).
  obs::Counters counters;
  std::vector<obs::AnytimeSample> anytime;

  // -- Multi-tenant provenance. --
  TenantId tenant;                 ///< empty for the default tenant
  std::uint64_t content_hash = 0;  ///< instance content address (0 if invalid)
  /// This future was resolved by a shared solve it attached to (dedup).
  bool deduplicated = false;
  /// The solve was seeded from the warm-start store (exact or similar hit).
  bool warm_started = false;
};

/// What a successful submit() returns: the job's identity plus the future.
/// `deduplicated` means this submission attached to an identical in-flight
/// solve instead of enqueuing its own — the future still resolves
/// independently, with this submission's own deadline semantics.
struct JobHandle {
  JobId id = 0;
  TenantId tenant;
  /// Content address of the instance (snapshot::instance_hash64 over the
  /// canonical wire serialization) — the dedup and warm-start store key.
  std::uint64_t content_hash = 0;
  bool deduplicated = false;
  std::future<JobResult> result;
};

/// What to do when the bounded queue is full.
enum class OverflowPolicy : std::uint8_t {
  /// Resolve the incoming job kResourceExhausted.
  kRejectNew,
  /// Shed the lowest-priority queued job if the incoming one outranks it
  /// (the shed job resolves kResourceExhausted); otherwise reject the
  /// incoming one.
  kShedLowest,
};

struct ServiceConfig {
  /// Pool width: the maximum number of concurrently running search threads
  /// across all jobs. A job's preset thread ask is clamped to this, and jobs
  /// are only dispatched when their ask fits in the free capacity — 50
  /// queued jobs on a 4-wide pool drain without oversubscription.
  std::size_t num_workers = 4;
  /// Bounded backlog of not-yet-running jobs; overflow applies `overflow`.
  std::size_t queue_capacity = 64;
  OverflowPolicy overflow = OverflowPolicy::kRejectNew;
  /// Crash safety (DESIGN.md §9): non-empty = journal every accepted job and
  /// every terminal resolution here. On construction the service replays the
  /// file and re-enqueues the jobs whose futures never resolved (including
  /// jobs the previous incarnation's shutdown() cancelled) as
  /// JobOrigin::kResumed; their futures come back via take_recovered().
  /// Journaling is best-effort: an unwritable path degrades to no journal.
  std::string journal_path;
  /// Compact the journal in place (rewrite to just the still-open jobs, see
  /// JobJournal::compact) once it has accumulated this many records AND the
  /// rewrite would shrink it — no restart required. 0 disables periodic
  /// compaction (the replay-then-truncate on construction still compacts).
  std::uint64_t journal_compact_every_records = 256;
  /// Test-only: forwarded to every job's slaves (see parallel/comm.hpp).
  const parallel::FaultInjector* fault_injector = nullptr;

  // -- Multi-tenant scheduling (DESIGN.md §7). --

  /// Per-tenant weights and quotas. Tenants not listed (and the default
  /// tenant) run with weight 1 and no quota — a config with no entries
  /// degrades exactly to the pre-tenant strict-priority scheduler.
  std::vector<TenantConfig> tenants;
  /// Master switch for content-addressed in-flight dedup: identical
  /// instance + identical solve-shaped options coalesce into one solve
  /// fanned out to every submitter's future. Requests opt out individually
  /// via SubmitRequest::allow_dedup.
  bool dedup_in_flight = true;
  /// Non-empty: directory of the persistent warm-start store. Completed
  /// cooperative runs save their final per-slave state here, and new jobs
  /// whose WarmStartPolicy allows it are seeded from matching entries.
  std::string warm_start_dir;
  /// How far a candidate's mean tightness may sit from the submitted
  /// instance's for a WarmStartPolicy::kSimilar feature match.
  double warm_start_tightness_tolerance = 0.05;
};

/// Cumulative service counters (all monotone).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t invalid = 0;           ///< resolved kInvalidArgument at submit
  std::uint64_t rejected = 0;          ///< backpressure (kResourceExhausted)
  std::uint64_t completed = 0;         ///< resolved OK
  std::uint64_t cancelled = 0;         ///< resolved kCancelled / kUnavailable
                                       ///< (cancel, shutdown)
  std::uint64_t backend_failures = 0;  ///< resolved kUnavailable because the
                                       ///< solve backend failed to start
  std::uint64_t deadline_expired = 0;  ///< resolved kDeadlineExceeded
  std::uint64_t slave_faults = 0;      ///< summed over finished runs
  std::uint64_t resumed = 0;           ///< re-enqueued from the journal
  std::uint64_t dedup_hits = 0;        ///< submissions attached to an in-flight solve
  std::uint64_t warm_started = 0;      ///< runs seeded from the warm-start store
};

}  // namespace pts::service
