#include "service/options.hpp"

#include "parallel/presets.hpp"
#include "service/warm_start.hpp"

namespace pts::service {

Expected<CommonOptions> CommonOptions::from_cli(const CliArgs& args) {
  CommonOptions options;
  if (args.has("preset")) {
    options.preset_name = args.get_string("preset", "");
  }
  const auto seed = args.get_int("seed", 1);
  if (seed < 0) {
    return Status::invalid_argument("--seed must be non-negative, got " +
                                    std::to_string(seed));
  }
  options.seed = static_cast<std::uint64_t>(seed);
  if (args.has("mode")) {
    auto mode = parallel::cooperation_mode_from_string(args.get_string("mode", ""));
    if (!mode) {
      return Status::invalid_argument("--mode: " + mode.status().message());
    }
    options.mode = *mode;
  }
  if (args.has("backend")) {
    auto backend = parallel::backend_from_string(args.get_string("backend", ""));
    if (!backend) {
      return Status::invalid_argument("--backend: " + backend.status().message());
    }
    options.backend = *backend;
  }
  options.worker_path = args.get_string("worker", "");

  options.checkpoint_path = args.get_string("checkpoint", "");
  options.checkpoint_every_rounds =
      static_cast<std::size_t>(args.get_int("checkpoint-every", 1));
  options.resume = args.get_bool("resume", false);
  if (options.resume && options.checkpoint_path.empty()) {
    return Status::invalid_argument("--resume needs --checkpoint=<path>");
  }

  options.journal_path = args.get_string("journal", "");
  options.tenant = args.get_string("tenant", "");
  if (args.has("warm-start")) {
    auto policy =
        warm_start_policy_from_string(args.get_string("warm-start", ""));
    if (!policy) {
      return Status::invalid_argument("--warm-start: " +
                                      policy.status().message());
    }
    options.warm_start = *policy;
  }
  options.warm_start_dir = args.get_string("warm-start-dir", "");
  if (options.warm_start != WarmStartPolicy::kDisabled &&
      options.warm_start_dir.empty()) {
    return Status::invalid_argument(
        "--warm-start needs --warm-start-dir=<dir>");
  }
  return options;
}

Expected<parallel::ParallelConfig> CommonOptions::resolve_config(
    const std::string& fallback_preset) const {
  const std::string name = preset_name.value_or(fallback_preset);
  auto preset = parallel::preset_by_name(name, seed);
  if (!preset) {
    std::string known;
    for (const auto& known_name : parallel::known_preset_names()) {
      if (!known.empty()) known += ", ";
      known += known_name;
    }
    return Status::invalid_argument("unknown preset '" + name +
                                    "' (known: " + known + ")");
  }
  apply_overrides(*preset);
  return *preset;
}

void CommonOptions::apply_overrides(parallel::ParallelConfig& config) const {
  config.seed = seed;
  if (mode) config.mode = *mode;
  if (backend) config.backend = *backend;
  // --worker applies whether or not --backend was given on the same command
  // line: a preset may already select the process backend, and dropping the
  // explicit worker path there leaves it spawning the wrong binary.
  if (!worker_path.empty()) config.proc.worker_path = worker_path;
}

void CommonOptions::apply_service(ServiceConfig& config) const {
  config.journal_path = journal_path;
  config.warm_start_dir = warm_start_dir;
}

}  // namespace pts::service
