#pragma once
// Persistent cross-job warm-start store (DESIGN.md §7). The paper's CTS2
// master recycles its initial-solution pool and SGP scores *within* one run;
// this store lifts that asset *across* runs and tenants: a completed
// cooperative run saves its final per-slave state (strategy, score, best
// elite solution) keyed by the instance's content address, and a later job
// for the same instance — or, under WarmStartPolicy::kSimilar, for an
// instance with matching (m, n) and nearby mean tightness — is seeded from
// it instead of cold-starting.
//
// One entry per content hash, file `ws_<hash hex>.ptsw` in the store
// directory:
//
//   offset 0   u8[4]  magic   'P' 'T' 'S' 'W'
//   offset 4   u8     version kWarmStartVersion
//   offset 5   u32    crc     CRC-32 of the body bytes
//   offset 9   u64    size    body byte count
//   offset 17  ...    body
//
// Body: u64 content_hash | u32 m | u32 n | f64 mean_tightness |
// f64 best_value | u32 nslaves | nslaves x (strategy, i32 score) |
// u32 nsolutions | nsolutions x solution. The solutions tail is only decoded
// on an EXACT hit — a similar instance's solutions reference different
// variables and cannot seed anything, so feature-match lookups stop after
// the strategy section. Writes follow the snapshot discipline (tmp + fsync +
// rename + directory fsync); the loader is total (truncation, bitflips and
// oversized counts come back as a Status, never a crash).

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "mkp/instance.hpp"
#include "parallel/master.hpp"
#include "parallel/snapshot.hpp"
#include "service/job.hpp"
#include "util/status.hpp"

namespace pts::service {

inline constexpr std::uint8_t kWarmStartVersion = 1;
inline constexpr std::size_t kWarmStartHeaderBytes = 17;
/// Per-entry body ceiling, mirroring the snapshot loader's allocation guard.
inline constexpr std::uint64_t kMaxWarmStartBytes = 256ull << 20;

/// Mean constraint tightness capacity(i)/sum_j w(i,j) — the approximate-
/// match feature alongside (m, n). Matches mkp::profile_instance's
/// tightness_mean without paying for the full profile.
[[nodiscard]] double mean_tightness(const mkp::Instance& inst);

class WarmStartStore {
 public:
  /// `dir` is created if missing; an uncreatable directory degrades the
  /// store to always-miss lookups and failed saves (never an abort — the
  /// store must not be able to kill the service it warms).
  explicit WarmStartStore(std::string dir, double tightness_tolerance = 0.05);

  struct Hit {
    parallel::WarmStart warm;
    bool exact = false;        ///< same content hash (solutions seeded too)
    double stored_best = 0.0;  ///< the saved run's final best value
  };

  /// Best available seed for `inst` under `policy`. kDisabled always
  /// misses. kExact requires the byte-identical instance. kSimilar falls
  /// back to the closest (m, n, tightness) neighbor, seeding strategies and
  /// scores only. Corrupt entries are skipped, never fatal.
  [[nodiscard]] std::optional<Hit> lookup(const mkp::Instance& inst,
                                          std::uint64_t content_hash,
                                          WarmStartPolicy policy) const;

  /// Persists a finished run's per-slave records for `inst`. The run's best
  /// solution is the first seed — it can fall out of every slave's final
  /// elite pool, and a warm start that misses it would have to re-find the
  /// very value the store advertises. After it, each slave contributes the
  /// best of its elite pool (else its last initial). Overwrites an existing
  /// entry only when `best.value()` is at least as good — the store keeps
  /// its strongest known state per content address. Callers must not save
  /// core-reduced runs (their slave solutions live in core coordinates).
  /// Thread-safe: concurrent saves from multiple job threads are serialized
  /// (the keep-the-best check and the rename must be atomic as a pair) and
  /// each writes its own uniquely-named tmp file, so two processes sharing
  /// the store directory can never interleave writes into one tmp.
  Status save(const mkp::Instance& inst, std::uint64_t content_hash,
              const mkp::Solution& best,
              const std::vector<parallel::snapshot::SlaveState>& slaves);

  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  double tightness_tolerance_;
  /// Serializes save(): read-check + write + rename must not interleave.
  std::mutex save_mutex_;
  /// Distinguishes tmp files across threads of one process; the pid in the
  /// tmp name distinguishes processes sharing the directory.
  std::atomic<std::uint64_t> tmp_seq_{0};
};

}  // namespace pts::service
