#include "service/warm_start.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "obs/metrics.hpp"
#include "parallel/codec.hpp"
#include "parallel/wire.hpp"
#include "util/crc32.hpp"

namespace pts::service {

namespace {

using parallel::codec::Reader;
using parallel::codec::Writer;

constexpr std::uint8_t kMagic[4] = {'P', 'T', 'S', 'W'};

Status io_error(const std::string& what) {
  return Status::internal("warm-start store: " + what + ": " +
                          std::strerror(errno));
}

bool write_all(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const auto n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string entry_name(std::uint64_t content_hash) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "ws_%016llx.ptsw",
                static_cast<unsigned long long>(content_hash));
  return buf;
}

/// The strategy/score section decoded; the solutions tail left unread (the
/// caller decodes it only on an exact hit, against the live instance).
struct EntryPrefix {
  std::uint64_t content_hash = 0;
  std::uint32_t m = 0;
  std::uint32_t n = 0;
  double tightness = 0.0;
  double best_value = 0.0;
  std::vector<tabu::Strategy> strategies;
  std::vector<int> scores;
};

/// Reads one entry file into validated body bytes. Any malformation is a
/// Status — lookup treats it as a miss for that entry.
Expected<std::vector<std::uint8_t>> read_body(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return io_error("open " + path);
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const auto n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      const auto status = io_error("read " + path);
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), buf, buf + n);
  }
  ::close(fd);

  if (bytes.size() < kWarmStartHeaderBytes ||
      std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return Status::invalid_argument("warm-start store: bad magic in " + path);
  }
  const std::span<const std::uint8_t> head(bytes.data(), kWarmStartHeaderBytes);
  Reader header(head);
  (void)header.u32();  // magic, already compared
  const auto version = header.u8();
  const auto crc = header.u32();
  const auto size = header.u64();
  if (version != kWarmStartVersion) {
    return Status::invalid_argument("warm-start store: unsupported version " +
                                    std::to_string(version));
  }
  if (size > kMaxWarmStartBytes ||
      size != bytes.size() - kWarmStartHeaderBytes) {
    return Status::invalid_argument("warm-start store: size mismatch in " + path);
  }
  std::vector<std::uint8_t> body(bytes.begin() + kWarmStartHeaderBytes,
                                 bytes.end());
  if (crc32(body) != crc) {
    return Status::invalid_argument("warm-start store: CRC mismatch in " + path);
  }
  return body;
}

/// How much of an entry the kSimilar scan reads per file. The feature +
/// strategy prefix is a few hundred bytes even for wide pools; 64 KiB is
/// ludicrously generous while still bounding the scan's I/O — a directory
/// of large entries no longer costs a full read + CRC of every file.
constexpr std::size_t kScanPrefixBytes = 64u << 10;

/// Reads at most `limit` bytes from the head of `path` (bounded pread;
/// never the whole file). Returns however many bytes the file had, up to
/// the limit.
Expected<std::vector<std::uint8_t>> read_prefix(const std::string& path,
                                                std::size_t limit) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return io_error("open " + path);
  std::vector<std::uint8_t> bytes(limit);
  std::size_t off = 0;
  while (off < limit) {
    const auto n = ::pread(fd, bytes.data() + off, limit - off,
                           static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      const auto status = io_error("read " + path);
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
  bytes.resize(off);
  return bytes;
}

/// Decodes the feature + strategy prefix; leaves `r` positioned at the
/// solutions section.
Expected<EntryPrefix> get_prefix(Reader& r) {
  EntryPrefix p;
  p.content_hash = r.u64();
  p.m = r.u32();
  p.n = r.u32();
  p.tightness = r.f64();
  p.best_value = r.f64();
  const auto nslaves = r.u32();
  if (!r.plausible_count(nslaves, 8)) {
    return Status::invalid_argument("warm-start store: implausible slave count");
  }
  p.strategies.reserve(nslaves);
  p.scores.reserve(nslaves);
  for (std::uint32_t i = 0; i < nslaves; ++i) {
    p.strategies.push_back(parallel::wire::get_strategy(r));
    p.scores.push_back(r.i32());
  }
  if (!r.ok()) {
    return Status::invalid_argument("warm-start store: truncated entry");
  }
  return p;
}

}  // namespace

std::string to_string(WarmStartPolicy policy) {
  switch (policy) {
    case WarmStartPolicy::kDisabled: return "off";
    case WarmStartPolicy::kExact: return "exact";
    case WarmStartPolicy::kSimilar: return "similar";
  }
  return "?";
}

Expected<WarmStartPolicy> warm_start_policy_from_string(const std::string& text) {
  std::string lower = text;
  for (char& c : lower) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  if (lower == "off" || lower == "none" || lower == "disabled") {
    return WarmStartPolicy::kDisabled;
  }
  if (lower == "exact") return WarmStartPolicy::kExact;
  if (lower == "similar") return WarmStartPolicy::kSimilar;
  return Status::invalid_argument("unknown warm-start policy '" + text +
                                  "' (accepted: off, exact, similar)");
}

double mean_tightness(const mkp::Instance& inst) {
  const std::size_t m = inst.num_constraints();
  if (m == 0) return 1.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const auto row = inst.weights_row(i);
    double row_sum = 0.0;
    for (double w : row) row_sum += w;
    sum += row_sum > 0.0 ? inst.capacity(i) / row_sum : 1.0;
  }
  return sum / static_cast<double>(m);
}

WarmStartStore::WarmStartStore(std::string dir, double tightness_tolerance)
    : dir_(std::move(dir)), tightness_tolerance_(tightness_tolerance) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  // A failed create degrades to a store that never hits and never saves.
  // Uniquely-named tmp files orphaned by a crash would otherwise accumulate
  // forever; lookup ignores them (wrong extension), so reclaim them here.
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    if (entry.path().filename().string().find(".ptsw.tmp") ==
        std::string::npos) {
      continue;
    }
    std::filesystem::remove(entry.path(), ec);
  }
}

std::optional<WarmStartStore::Hit> WarmStartStore::lookup(
    const mkp::Instance& inst, std::uint64_t content_hash,
    WarmStartPolicy policy) const {
  if (policy == WarmStartPolicy::kDisabled) return std::nullopt;

  // Exact: one file, addressed by content.
  const auto exact_path =
      (std::filesystem::path(dir_) / entry_name(content_hash)).string();
  if (auto body = read_body(exact_path)) {
    const std::span<const std::uint8_t> body_span(body->data(), body->size());
    Reader r(body_span);
    if (auto prefix = get_prefix(r); prefix &&
                                     prefix->content_hash == content_hash) {
      Hit hit;
      hit.exact = true;
      hit.stored_best = prefix->best_value;
      hit.warm.strategies = std::move(prefix->strategies);
      hit.warm.scores = std::move(prefix->scores);
      // Exact hit: the saved elite solutions are solutions OF this
      // instance — decode and seed them as initials.
      const auto nsol = r.u32();
      if (r.plausible_count(nsol, 8 + inst.num_items() / 8)) {
        for (std::uint32_t k = 0; k < nsol; ++k) {
          auto solution = parallel::wire::get_solution(r, inst);
          if (!solution) break;  // partial seed beats none
          hit.warm.initials.push_back(*std::move(solution));
        }
      }
      obs::metrics().counter("warm_start_exact_hits_total").add();
      return hit;
    }
  }
  if (policy != WarmStartPolicy::kSimilar) return std::nullopt;

  // Approximate: closest mean-tightness neighbor with the same shape.
  // Strategies and SGP scores transfer; solutions never do.
  //
  // Two passes. The scan reads only a bounded prefix of each entry (header
  // + features + strategies — no solution tails, no CRC over megabytes of
  // body) to rank candidates; the full read + CRC validation then runs
  // only on the ranked candidates, best first, and the first one that
  // validates wins. A store full of large entries costs a handful of
  // page-sized preads per lookup instead of a full read of every file.
  const double t = mean_tightness(inst);
  struct Candidate {
    std::string path;
    double dt = 0.0;
    double best_value = 0.0;
  };
  std::vector<Candidate> candidates;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    if (entry.path().extension() != ".ptsw") continue;
    auto head = read_prefix(entry.path().string(), kScanPrefixBytes);
    if (!head) continue;  // unreadable entry: skip, never fatal
    if (head->size() < kWarmStartHeaderBytes ||
        std::memcmp(head->data(), kMagic, 4) != 0) {
      continue;
    }
    Reader header({head->data(), kWarmStartHeaderBytes});
    (void)header.u32();  // magic, already compared
    const auto version = header.u8();
    (void)header.u32();  // CRC deferred to the validation pass
    const auto size = header.u64();
    if (version != kWarmStartVersion || size > kMaxWarmStartBytes) continue;
    // A prefix that outruns the 64 KiB window decodes as truncated and the
    // entry is skipped — fine, a legitimate strategy section never gets
    // anywhere near that large.
    Reader r({head->data() + kWarmStartHeaderBytes,
              head->size() - kWarmStartHeaderBytes});
    auto prefix = get_prefix(r);
    if (!prefix) continue;
    if (prefix->m != inst.num_constraints() || prefix->n != inst.num_items()) {
      continue;
    }
    const double dt = std::abs(prefix->tightness - t);
    if (dt > tightness_tolerance_) continue;
    candidates.push_back({entry.path().string(), dt, prefix->best_value});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.dt != b.dt) return a.dt < b.dt;
              return a.best_value > b.best_value;
            });
  for (const auto& candidate : candidates) {
    auto body = read_body(candidate.path);  // full read + CRC, only now
    if (!body) continue;  // corrupt entry: fall through to the runner-up
    const std::span<const std::uint8_t> body_span(body->data(), body->size());
    Reader r(body_span);
    auto prefix = get_prefix(r);
    if (!prefix) continue;
    Hit hit;
    hit.exact = false;
    hit.stored_best = prefix->best_value;
    hit.warm.strategies = std::move(prefix->strategies);
    hit.warm.scores = std::move(prefix->scores);
    obs::metrics().counter("warm_start_similar_hits_total").add();
    return hit;
  }
  return std::nullopt;
}

Status WarmStartStore::save(
    const mkp::Instance& inst, std::uint64_t content_hash,
    const mkp::Solution& best,
    const std::vector<parallel::snapshot::SlaveState>& slaves) {
  if (slaves.empty()) {
    return Status::invalid_argument("warm-start store: nothing to save");
  }
  const double best_value = best.value();
  const auto path =
      (std::filesystem::path(dir_) / entry_name(content_hash)).string();

  // Serialize saves: the keep-the-best read below and the rename at the end
  // must be atomic as a pair, or a concurrent save for the same hash could
  // clobber a stronger entry written between the check and the rename.
  std::lock_guard save_lock(save_mutex_);

  // Keep-the-best policy: a weaker run never clobbers a stronger entry.
  if (auto body = read_body(path)) {
    const std::span<const std::uint8_t> body_span(body->data(), body->size());
    Reader r(body_span);
    if (auto prefix = get_prefix(r);
        prefix && prefix->best_value > best_value) {
      return Status{};
    }
  }

  Writer body;
  body.u64(content_hash);
  body.u32(static_cast<std::uint32_t>(inst.num_constraints()));
  body.u32(static_cast<std::uint32_t>(inst.num_items()));
  body.f64(mean_tightness(inst));
  body.f64(best_value);
  body.u32(static_cast<std::uint32_t>(slaves.size()));
  for (const auto& slave : slaves) {
    parallel::wire::put_strategy(body, slave.strategy);
    body.i32(slave.score);
  }
  // Seed solutions: the run's best first (it may be in no slave's final
  // pool), then each slave's strongest elite, else its last initial.
  std::vector<const mkp::Solution*> seeds;
  seeds.push_back(&best);
  for (const auto& slave : slaves) {
    const mkp::Solution* seed = nullptr;
    for (const auto& elite : slave.b_best) {
      if (seed == nullptr || elite.value() > seed->value()) seed = &elite;
    }
    if (seed == nullptr && slave.initial) seed = &*slave.initial;
    if (seed != nullptr) seeds.push_back(seed);
  }
  body.u32(static_cast<std::uint32_t>(seeds.size()));
  for (const auto* seed : seeds) parallel::wire::put_solution(body, *seed);
  const auto body_bytes = body.take();

  Writer file;
  for (const auto b : kMagic) file.u8(b);
  file.u8(kWarmStartVersion);
  file.u32(crc32(body_bytes));
  file.u64(body_bytes.size());
  file.bytes(body_bytes);
  const auto image = file.take();

  // Snapshot write discipline: tmp + fsync + rename + directory fsync, so a
  // crash leaves the old entry or the new one, never a torn file. The tmp
  // name is unique per (process, save) so writers never share a tmp file —
  // the mutex above covers this process, the pid covers siblings on a
  // shared store directory.
  const std::string tmp = path + ".tmp." +
                          std::to_string(static_cast<long long>(::getpid())) +
                          "." + std::to_string(tmp_seq_.fetch_add(1));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return io_error("open " + tmp);
  if (!write_all(fd, image) || ::fsync(fd) != 0) {
    const auto status = io_error("write " + tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const auto status = io_error("rename " + tmp + " -> " + path);
    ::unlink(tmp.c_str());
    return status;
  }
  const int dir_fd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  obs::metrics().counter("warm_start_saves_total").add();
  return Status{};
}

}  // namespace pts::service
