#pragma once
// SolverService: many MKP solve jobs over one fixed-width worker pool, with
// futures that resolve to a result **or a structured error** — never an
// abort, never a dangling future.
//
// Scheduling. submit() validates and enqueues; a scheduler thread dispatches
// the highest-priority queued job (ties by submission order) whenever its
// thread ask fits the pool's free capacity. A job's ask is its preset's
// num_slaves clamped to the pool width (SEQ jobs ask for one); the master
// thread of a cooperative job blocks on the rendezvous and is not counted.
// Capacity accounting — not per-job thread reuse — is what bounds
// concurrency: at most `num_workers` search threads ever run at once.
//
// Cancellation. Every job owns a CancelSource armed with its deadline; the
// token threads through the master's round loop, every mailbox wait, and
// each slave engine's inner move loop, so cancel(id) or a passing deadline
// stops a running job within one inner-loop check plus one mailbox poll
// slice. Queued jobs resolve immediately without running.
//
// Fault model. A slave round that throws becomes a SlaveFault message; the
// master's gather completes with P-1 reports and respawns the slave's
// record (see parallel/master.cpp). The service surfaces the per-job fault
// count in JobResult and aggregates it in ServiceStats.
//
// Crash safety. With ServiceConfig::journal_path set, every accepted job is
// journaled at submit, stamped at dispatch (with the scheduler's global
// start sequence) and struck at terminal resolution — EXCEPT resolutions
// caused by shutdown(), which are deliberately left open so a restarted
// service replays them. The constructor re-enqueues the survivors as
// JobOrigin::kResumed; take_recovered() hands their futures to the caller.
// Survivors that had already been dispatched outrank every other queued job
// and run in their original dispatch order — the restart continues the
// schedule the crashed incarnation committed to, rather than re-deriving
// one from priorities (which ties or later submissions could reorder).
//
// DESIGN.md §7 covers the full design; examples/batch_server.cpp drives a
// mixed workload through it.

#include <condition_variable>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "service/job.hpp"
#include "service/journal.hpp"
#include "util/cancel.hpp"
#include "util/timer.hpp"

namespace pts::service {

class SolverService {
 public:
  explicit SolverService(ServiceConfig config = {});
  ~SolverService();  ///< shutdown(): cancels outstanding work, joins all threads

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  struct Submission {
    JobId id = 0;
    std::future<JobResult> result;
  };

  /// Non-blocking and abort-free: option validation failures and queue
  /// overflow resolve the returned future immediately with a structured
  /// error. The instance is shared into the job (and into its JobResult) so
  /// its lifetime is independent of the caller's copy.
  Submission submit(mkp::Instance instance, JobOptions options = {});
  Submission submit(std::shared_ptr<const mkp::Instance> instance,
                    JobOptions options = {});

  /// Queued job: resolves kCancelled immediately without running. Running
  /// job: fires its cancel token; the future resolves kCancelled with the
  /// best found so far. Returns false for ids that are unknown or already
  /// resolved.
  bool cancel(JobId id);

  /// Stops accepting work, cancels every queued and running job, and joins
  /// all threads. Every outstanding future resolves. Idempotent; the
  /// destructor calls it. Journaled jobs it cancels stay open in the journal
  /// and come back as kResumed in the next incarnation.
  void shutdown();

  /// Jobs replayed from the journal and re-enqueued by the constructor, in
  /// their original submission order. Single-shot: moves the submissions
  /// (with their futures) out; later calls return empty.
  [[nodiscard]] std::vector<Submission> take_recovered();

  [[nodiscard]] std::size_t queued_jobs() const;
  [[nodiscard]] std::size_t running_jobs() const;
  [[nodiscard]] ServiceStats stats() const;

 private:
  struct Job;

  Submission submit_impl(std::shared_ptr<const mkp::Instance> instance,
                         JobOptions options, JobOrigin origin,
                         std::uint64_t resume_rank = 0);
  /// Strikes a journaled job's submission record (no-op when journaling is
  /// off or the job never made it into the journal).
  void journal_resolved(const Job& job);
  void scheduler_loop();
  void dispatch_ready_locked();
  void sweep_queue_locked();
  /// Rewrites the journal to just the open jobs once enough records have
  /// accumulated AND the rewrite would shrink the log (hysteresis, so a
  /// large standing queue does not trigger a rewrite every tick). Runs under
  /// the service mutex — the same lock every append_submitted holds — so no
  /// submission can race into the about-to-be-replaced file.
  void maybe_compact_journal_locked();
  void reap_finished_locked(std::unique_lock<std::mutex>& lock);
  void run_job(const std::shared_ptr<Job>& job, std::uint64_t start_sequence);
  static void resolve_without_run(Job& job, Status status);

  ServiceConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable wake_;

  std::vector<std::shared_ptr<Job>> queue_;  // unsorted; dispatch scans
  std::map<JobId, std::shared_ptr<Job>> running_;
  std::map<JobId, std::thread> job_threads_;
  std::vector<JobId> finished_;  ///< job threads done, awaiting join

  std::size_t free_slots_ = 0;
  JobId next_id_ = 1;
  std::uint64_t next_start_sequence_ = 1;
  bool stopping_ = false;
  ServiceStats stats_;

  /// Null when journaling is off (empty path or the journal failed to open).
  std::unique_ptr<journal::JobJournal> journal_;
  std::vector<Submission> recovered_;  ///< replayed jobs, until take_recovered()

  std::thread scheduler_;  // started last, joined by shutdown()
};

}  // namespace pts::service
