#pragma once
// SolverService: many MKP solve jobs over one fixed-width worker pool, with
// futures that resolve to a result **or a structured error** — never an
// abort, never a dangling future. Multi-tenant (DESIGN.md §7): submissions
// carry a tenant identity, dispatch is weighted-fair across tenants, and
// identical in-flight work is deduplicated into one shared solve.
//
// Submission. submit(SubmitRequest) validates and enqueues, returning
// Expected<JobHandle>: admission failures (bad options, backpressure,
// shutdown) come back as a Status; accepted work returns a handle whose
// future always resolves. Every submitted instance is content-addressed
// (snapshot::instance_hash64 over its canonical wire bytes); a submission
// whose instance bytes AND solve-shaped options match an in-flight job
// attaches to that job as an extra *waiter* instead of enqueuing a new
// solve — one run fans out to every waiter's future, each with its own
// deadline semantics. A positional submit(instance, options) shim keeps the
// old resolved-future error contract for one release.
//
// Scheduling. A scheduler thread dispatches whenever capacity frees up.
// Jobs resumed from the journal go absolutely first, in their original
// dispatch order. Everything else is weighted-fair queuing over tenants:
// each tenant accrues virtual time slots/weight per dispatched slot and the
// tenant with the least virtual time is served next (its own jobs ordered
// by priority, ties in submission order), subject to its max_running_slots
// quota. With a single tenant (or none configured) this degrades exactly to
// the old strict-priority order. Backpressure sheds the lowest-weight,
// lowest-priority queued job first, and only when the incoming submission
// strictly outranks it.
//
// Warm starts. With ServiceConfig::warm_start_dir set, completed
// cooperative runs persist their final per-slave state (strategies, SGP
// scores, elite solutions) keyed by instance content hash; a new job whose
// WarmStartPolicy allows it is seeded from the exact entry — or, under
// kSimilar, from an (m, n, tightness)-neighboring one — before it runs.
//
// Cancellation. Every dispatched job owns a CancelSource armed with the
// most generous waiter deadline; the token threads through the master's
// round loop, every mailbox wait, and each slave engine's inner move loop.
// cancel(id) on a shared solve detaches just that waiter (the solve
// continues for the rest); cancelling the last waiter stops the run.
//
// Fault model. A slave round that throws becomes a SlaveFault message; the
// master's gather completes with P-1 reports and respawns the slave's
// record (see parallel/master.cpp). The service surfaces the per-job fault
// count in JobResult and aggregates it in ServiceStats.
//
// Crash safety. With ServiceConfig::journal_path set, every accepted waiter
// is journaled at submit (with its tenant and warm-start policy), dedup
// attachments are linked with a kDedup record, the scheduler's dispatch is
// stamped with its global start sequence, and every terminal resolution is
// struck — EXCEPT resolutions caused by shutdown(), which are deliberately
// left open so a restarted service replays them. The constructor
// re-enqueues the survivors as JobOrigin::kResumed; take_recovered() hands
// their futures to the caller. Recovered duplicate submissions re-coalesce
// naturally at resubmit (their content bytes still match).
//
// DESIGN.md §7 covers the full design; examples/batch_server.cpp drives a
// mixed multi-tenant workload through it.

#include <condition_variable>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "service/job.hpp"
#include "service/journal.hpp"
#include "service/warm_start.hpp"
#include "util/cancel.hpp"
#include "util/timer.hpp"

namespace pts::service {

class SolverService {
 public:
  explicit SolverService(ServiceConfig config = {});
  ~SolverService();  ///< shutdown(): cancels outstanding work, joins all threads

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  struct Submission {
    JobId id = 0;
    std::future<JobResult> result;
  };

  /// The submission API. Non-blocking and abort-free: admission failures
  /// (invalid options, queue backpressure, shutdown) return a Status;
  /// an accepted submission's future always resolves — run-time failures
  /// (backend death, deadline, cancellation) arrive as the JobResult's
  /// own Status. The instance is shared into the job (and its JobResult)
  /// so its lifetime is independent of the caller's copy.
  [[nodiscard]] Expected<JobHandle> submit(SubmitRequest request);

  /// Transitional positional API: default tenant, no dedup, no warm start,
  /// admission failures resolved INTO the future (the pre-tenant
  /// contract). Kept for one release.
  [[deprecated("build a SubmitRequest and call submit(SubmitRequest)")]]
  Submission submit(mkp::Instance instance, JobOptions options = {});
  [[deprecated("build a SubmitRequest and call submit(SubmitRequest)")]]
  Submission submit(std::shared_ptr<const mkp::Instance> instance,
                    JobOptions options = {});

  /// Queued waiter: resolves kCancelled immediately without running.
  /// Waiter on a running solve: detaches it (the shared solve continues for
  /// any other waiters; the last waiter's cancel fires the run's token and
  /// its future resolves kCancelled with the best found so far). Returns
  /// false for ids that are unknown or already resolved.
  bool cancel(JobId id);

  /// Stops accepting work, cancels every queued and running job, and joins
  /// all threads. Every outstanding future resolves. Idempotent; the
  /// destructor calls it. Journaled jobs it cancels stay open in the journal
  /// and come back as kResumed in the next incarnation.
  void shutdown();

  /// Jobs replayed from the journal and re-enqueued by the constructor, in
  /// their original submission order. Single-shot: moves the submissions
  /// (with their futures) out; later calls return empty.
  [[nodiscard]] std::vector<Submission> take_recovered();

  [[nodiscard]] std::size_t queued_jobs() const;
  [[nodiscard]] std::size_t running_jobs() const;
  [[nodiscard]] ServiceStats stats() const;

 private:
  struct Waiter;
  struct Job;

  /// Weighted-fair-queuing ledger for one tenant.
  struct TenantState {
    double weight = 1.0;
    std::size_t max_running_slots = 0;  ///< 0 = no quota
    double vtime = 0.0;                 ///< accrued virtual time
    std::size_t running_slots = 0;
  };

  /// What the internal submit path reports to both public faces. The future
  /// is always valid; when `error` is non-OK it has already been resolved
  /// with that error (the shim hands it out; the new API drops it).
  struct SubmitOutcome {
    JobId id = 0;
    TenantId tenant;
    std::uint64_t content_hash = 0;
    bool deduplicated = false;
    Status error;
    std::future<JobResult> future;
  };

  SubmitOutcome submit_full(SubmitRequest request, JobOrigin origin,
                            std::uint64_t resume_rank = 0);
  /// Admits a fresh job into the queue: idle-tenant vtime catch-up, id
  /// assignment from its first waiter, enqueue, and the kSubmitted journal
  /// append. Shared by the normal accept path and shed-admission so both
  /// produce identically-initialized jobs.
  void accept_job_locked(const std::shared_ptr<Job>& job,
                         std::unique_ptr<Waiter> waiter);
  /// Strikes a journaled waiter's submission record (no-op when journaling
  /// is off or the waiter never made it into the journal).
  void journal_resolved(const Waiter& waiter);
  TenantState& tenant_state_locked(const TenantId& tenant);
  void scheduler_loop();
  void dispatch_ready_locked();
  void sweep_queue_locked();
  void maybe_compact_journal_locked();
  void reap_finished_locked(std::unique_lock<std::mutex>& lock);
  void run_job(const std::shared_ptr<Job>& job, std::uint64_t start_sequence);
  /// Resolves one waiter that never got (or never will get) a run result.
  static void resolve_waiter(Waiter& waiter, const Job* job, Status status);

  ServiceConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable wake_;

  std::vector<std::shared_ptr<Job>> queue_;  // unsorted; dispatch scans
  std::map<JobId, std::shared_ptr<Job>> running_;
  std::map<JobId, std::thread> job_threads_;
  std::vector<JobId> finished_;  ///< job threads done, awaiting join

  std::size_t free_slots_ = 0;
  JobId next_id_ = 1;
  std::uint64_t next_start_sequence_ = 1;
  bool stopping_ = false;
  ServiceStats stats_;

  /// WFQ ledgers, lazily populated; the global virtual clock tracks the
  /// busiest tenant so a newly active one starts level, not ahead.
  std::map<TenantId, TenantState> tenants_;
  double global_vtime_ = 0.0;

  /// Null when journaling is off (empty path or the journal failed to open).
  std::unique_ptr<journal::JobJournal> journal_;
  std::vector<Submission> recovered_;  ///< replayed jobs, until take_recovered()

  /// Null when ServiceConfig::warm_start_dir is empty.
  std::unique_ptr<WarmStartStore> warm_store_;

  std::thread scheduler_;  // started last, joined by shutdown()
};

}  // namespace pts::service
