#pragma once
// The CLI flag vocabulary shared by every driver that builds a solve or a
// service from the command line (orlib_solver, suite_runner, batch_server,
// the service benches). One parser, so --backend, --journal, --tenant and
// --warm-start are spelled — and validated — identically everywhere:
//
//   --preset=quick|balanced|thorough|paper   named search shape
//   --seed=N                                 RNG seed (default 1)
//   --mode=SEQ|ITS|CTS1|CTS2                 force one cooperation mode
//   --backend=thread|proc                    slave execution backend
//   --worker=<path>                          pts_worker binary (proc backend)
//   --checkpoint=<path> --checkpoint-every=N --resume    crash safety
//   --journal=<path>                         service job journal
//   --tenant=<name>                          tenant identity for submissions
//   --warm-start=off|exact|similar           warm-start policy
//   --warm-start-dir=<dir>                   persistent warm-start store
//
// Telemetry flags (--metrics, --metrics-out, --trace-out, --log-level, ...)
// stay with obs::TelemetryOptions::from_cli — this header covers the solver-
// and service-shaping flags only.

#include <cstdint>
#include <optional>
#include <string>

#include "parallel/runner.hpp"
#include "service/job.hpp"
#include "util/cli.hpp"
#include "util/status.hpp"

namespace pts::service {

struct CommonOptions {
  std::optional<std::string> preset_name;  ///< --preset (absent = caller's default)
  std::uint64_t seed = 1;
  std::optional<parallel::CooperationMode> mode;
  std::optional<parallel::Backend> backend;
  std::string worker_path;  ///< --worker; only meaningful with --backend=proc

  std::string checkpoint_path;              ///< --checkpoint
  std::size_t checkpoint_every_rounds = 1;  ///< --checkpoint-every
  bool resume = false;                      ///< --resume

  std::string journal_path;  ///< --journal
  TenantId tenant;           ///< --tenant ("" = default tenant)
  WarmStartPolicy warm_start = WarmStartPolicy::kDisabled;  ///< --warm-start
  std::string warm_start_dir;                               ///< --warm-start-dir

  /// Parses and validates the shared flags. Malformed values (unknown mode,
  /// backend or warm-start policy; --resume without --checkpoint) come back
  /// as a Status carrying the exact flag that failed.
  [[nodiscard]] static Expected<CommonOptions> from_cli(const CliArgs& args);

  /// The ParallelConfig the flags describe: the named preset — or
  /// `fallback_preset` when --preset was not given — with the overrides
  /// (--mode, --backend, --worker, --seed) applied on top.
  [[nodiscard]] Expected<parallel::ParallelConfig> resolve_config(
      const std::string& fallback_preset) const;

  /// Applies just the override flags (--mode, --backend, --worker, --seed)
  /// to a config the caller assembled by hand.
  void apply_overrides(parallel::ParallelConfig& config) const;

  /// Folds the service-level flags (--journal, --warm-start-dir) into a
  /// ServiceConfig.
  void apply_service(ServiceConfig& config) const;
};

}  // namespace pts::service
