#include "service/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <map>

#include "obs/metrics.hpp"
#include "parallel/runner.hpp"
#include "parallel/wire.hpp"
#include "util/crc32.hpp"
#include "util/timer.hpp"

namespace pts::service::journal {

namespace {

using parallel::codec::Reader;
using parallel::codec::Writer;

constexpr std::uint8_t kMagic[4] = {'P', 'T', 'S', 'J'};

Status io_error(const std::string& what) {
  return Status::internal("journal: " + what + ": " + std::strerror(errno));
}

/// write(2) until done; short writes happen on signals even for regular files.
bool write_all(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const auto n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Frames one record (type | crc | len | body) into `w` — shared between the
/// append path and the compaction rewrite so both produce identical bytes.
void put_record(Writer& w, RecordType type,
                const std::vector<std::uint8_t>& body) {
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(crc32(body));
  w.u32(static_cast<std::uint32_t>(body.size()));
  w.bytes(body);
}

std::vector<std::uint8_t> submitted_body(JobId id, const mkp::Instance& inst,
                                         const JobOptions& options,
                                         const TenantId& tenant,
                                         WarmStartPolicy warm_start) {
  Writer w;
  w.u64(id);
  parallel::wire::put_instance(w, inst);
  put_job_options(w, options);
  // v3 tail: tenant identity + warm-start policy.
  w.str(tenant);
  w.u8(static_cast<std::uint8_t>(warm_start));
  return w.take();
}

}  // namespace

void put_job_options(Writer& w, const JobOptions& options) {
  w.str(options.preset);
  w.f64(options.time_budget_seconds);
  w.u8(options.deadline_seconds.has_value() ? 1 : 0);
  w.f64(options.deadline_seconds.value_or(0.0));
  w.i32(options.priority);
  w.u64(options.seed);
  w.u8(options.target_value.has_value() ? 1 : 0);
  w.f64(options.target_value.value_or(0.0));
  w.u8(options.mode.has_value() ? 1 : 0);
  w.u8(options.mode ? static_cast<std::uint8_t>(*options.mode) : 0);
  w.u8(options.backend.has_value() ? 1 : 0);
  w.u8(options.backend ? static_cast<std::uint8_t>(*options.backend) : 0);
  // The proc farm shape: a resumed proc job must respawn the same workers
  // under the same recovery policy.
  w.str(options.proc.worker_path);
  w.f64(options.proc.worker_timeout_seconds);
  w.u64(options.proc.max_respawns_per_slave);
  w.f64(options.proc.respawn_backoff_base_seconds);
  w.f64(options.proc.respawn_backoff_cap_seconds);
  w.u64(options.proc.breaker_threshold);
  w.f64(options.proc.breaker_window_seconds);
  w.f64(options.proc.breaker_cooloff_seconds);
  // v2 tail.
  w.u8(options.core_reduction ? 1 : 0);
}

Expected<JobOptions> get_job_options(Reader& r, std::uint8_t version) {
  JobOptions o;
  o.preset = r.str(/*max_len=*/256);
  o.time_budget_seconds = r.f64();
  const bool has_deadline = r.u8() != 0;
  const double deadline = r.f64();
  if (has_deadline) o.deadline_seconds = deadline;
  o.priority = r.i32();
  o.seed = r.u64();
  const bool has_target = r.u8() != 0;
  const double target = r.f64();
  if (has_target) o.target_value = target;
  const bool has_mode = r.u8() != 0;
  const auto mode = r.u8();
  const bool has_backend = r.u8() != 0;
  const auto backend = r.u8();
  o.proc.worker_path = r.str(/*max_len=*/4096);
  o.proc.worker_timeout_seconds = r.f64();
  o.proc.max_respawns_per_slave = static_cast<std::size_t>(r.u64());
  o.proc.respawn_backoff_base_seconds = r.f64();
  o.proc.respawn_backoff_cap_seconds = r.f64();
  o.proc.breaker_threshold = static_cast<std::size_t>(r.u64());
  o.proc.breaker_window_seconds = r.f64();
  o.proc.breaker_cooloff_seconds = r.f64();
  if (version >= 2) o.core_reduction = r.u8() != 0;
  if (!r.ok()) {
    return Status::invalid_argument("journal: truncated or corrupt job options");
  }
  if (has_mode) {
    if (mode > static_cast<std::uint8_t>(
                   parallel::CooperationMode::kCooperativeAdaptive)) {
      return Status::invalid_argument("journal: unknown cooperation mode " +
                                      std::to_string(mode));
    }
    o.mode = static_cast<parallel::CooperationMode>(mode);
  }
  if (has_backend) {
    if (backend > static_cast<std::uint8_t>(parallel::Backend::kProcess)) {
      return Status::invalid_argument("journal: unknown backend " +
                                      std::to_string(backend));
    }
    o.backend = static_cast<parallel::Backend>(backend);
  }
  return o;
}

JobJournal::~JobJournal() {
  if (fd_ >= 0) ::close(fd_);
}

Expected<std::unique_ptr<JobJournal>> JobJournal::open_truncate(
    const std::string& path) {
  if (path.empty()) {
    return Status::invalid_argument("journal: empty journal path");
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return io_error("open " + path);
  Writer w;
  for (const auto b : kMagic) w.u8(b);
  w.u8(kJournalVersion);
  const auto header = w.take();
  if (!write_all(fd, header) || ::fsync(fd) != 0) {
    const auto status = io_error("write header " + path);
    ::close(fd);
    return status;
  }
  return std::unique_ptr<JobJournal>(new JobJournal(fd, path));
}

Status JobJournal::append(RecordType type, const std::vector<std::uint8_t>& body) {
  Writer w;
  put_record(w, type, body);
  const auto frame = w.take();
  const Stopwatch watch;
  std::lock_guard lock(mutex_);
  // One write, then fsync: a crash can tear at most the tail record, which
  // the reader detects (CRC) and discards — the replay contract.
  if (!write_all(fd_, frame)) return io_error("append");
  if (::fsync(fd_) != 0) return io_error("fsync");
  ++records_appended_;
  obs::metrics().counter("journal_appends_total").add();
  obs::metrics().histogram("journal_append_seconds")
      .record(watch.elapsed_seconds());
  return Status{};
}

Status JobJournal::append_submitted(JobId id, const mkp::Instance& instance,
                                    const JobOptions& options,
                                    const TenantId& tenant,
                                    WarmStartPolicy warm_start) {
  return append(RecordType::kSubmitted,
                submitted_body(id, instance, options, tenant, warm_start));
}

Status JobJournal::append_dedup(JobId follower, JobId primary) {
  Writer w;
  w.u64(follower);
  w.u64(primary);
  return append(RecordType::kDedup, w.take());
}

Status JobJournal::append_dispatched(JobId id, std::uint64_t start_sequence) {
  Writer w;
  w.u64(id);
  w.u64(start_sequence);
  return append(RecordType::kDispatched, w.take());
}

Status JobJournal::append_resolved(JobId id) {
  Writer w;
  w.u64(id);
  return append(RecordType::kResolved, w.take());
}

std::uint64_t JobJournal::records_appended() const {
  std::lock_guard lock(mutex_);
  return records_appended_;
}

Status JobJournal::compact(const std::vector<LiveJob>& live) {
  const Stopwatch watch;
  // Build the full compacted image first — header, then one kSubmitted per
  // open job (plus kDispatched for the already-started ones, preserving the
  // committed start order) — so the file write is a single pass.
  Writer w;
  for (const auto b : kMagic) w.u8(b);
  w.u8(kJournalVersion);
  std::uint64_t records = 0;
  const TenantId default_tenant;
  for (const auto& job : live) {
    put_record(w, RecordType::kSubmitted,
               submitted_body(job.id, *job.instance, *job.options,
                              job.tenant != nullptr ? *job.tenant
                                                    : default_tenant,
                              job.warm_start));
    ++records;
    if (job.dispatch_sequence != 0) {
      Writer body;
      body.u64(job.id);
      body.u64(job.dispatch_sequence);
      put_record(w, RecordType::kDispatched, body.take());
      ++records;
    }
    if (job.dedup_primary != 0) {
      Writer body;
      body.u64(job.id);
      body.u64(job.dedup_primary);
      put_record(w, RecordType::kDedup, body.take());
      ++records;
    }
  }
  const auto image = w.take();

  std::lock_guard lock(mutex_);
  const std::string tmp = path_ + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return io_error("open " + tmp);
  // fsync before rename — the same ordering argument as the snapshot writer:
  // the compacted file must never become visible while its bytes are still
  // only in the page cache.
  if (!write_all(fd, image) || ::fsync(fd) != 0) {
    const auto status = io_error("write " + tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  }
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    const auto status = io_error("rename " + tmp + " -> " + path_);
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  }
  // Persist the rename itself; the data is already synced, so a failure here
  // only delays durability of the directory entry.
  const auto dir = std::filesystem::path(path_).parent_path();
  const std::string dir_path = dir.empty() ? "." : dir.string();
  const int dir_fd = ::open(dir_path.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  // Future appends go to the new file: fd still names the renamed inode.
  ::close(fd_);
  fd_ = fd;
  records_appended_ = records;
  obs::metrics().counter("service_journal_compactions_total").add();
  obs::metrics().histogram("journal_compact_seconds")
      .record(watch.elapsed_seconds());
  return Status{};
}

Expected<std::vector<RecoveredJob>> recover_jobs(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return std::vector<RecoveredJob>{};  // fresh start
    return io_error("open " + path);
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const auto n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      const auto status = io_error("read " + path);
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), buf, buf + n);
  }
  ::close(fd);

  if (bytes.empty()) return std::vector<RecoveredJob>{};
  if (bytes.size() < kJournalHeaderBytes ||
      std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return Status::invalid_argument("journal: bad magic (not a job journal)");
  }
  const std::uint8_t version = bytes[4];
  if (version < kJournalMinVersion || version > kJournalVersion) {
    return Status::invalid_argument(
        "journal: unsupported version " + std::to_string(version) +
        " (accepted " + std::to_string(kJournalMinVersion) + ".." +
        std::to_string(kJournalVersion) + ")");
  }

  // Replay. Ordered map keyed by the old id keeps submission order; a
  // resolved record erases its submission. Any malformed record is treated
  // as the torn tail of a crashed append: stop there, trust what came before.
  std::map<JobId, RecoveredJob> open;
  std::span<const std::uint8_t> rest =
      std::span(bytes).subspan(kJournalHeaderBytes);
  while (rest.size() >= kRecordHeaderBytes) {
    Reader header(rest.first(kRecordHeaderBytes));
    const auto type = header.u8();
    const auto crc = header.u32();
    const auto body_len = header.u32();
    if (body_len > kMaxRecordBytes ||
        body_len > rest.size() - kRecordHeaderBytes) {
      break;  // torn tail
    }
    const auto body = rest.subspan(kRecordHeaderBytes, body_len);
    if (crc32(body) != crc) break;  // torn tail
    rest = rest.subspan(kRecordHeaderBytes + body_len);

    if (type == static_cast<std::uint8_t>(RecordType::kResolved)) {
      Reader r(body);
      const auto id = r.u64();
      if (!r.done()) break;
      open.erase(id);
      // A dedup link into a resolved primary is inert provenance — the
      // follower recovers as a plain job rather than pointing at a solve
      // that no longer exists.
      for (auto& [other_id, other] : open) {
        if (other.dedup_primary == id) other.dedup_primary = 0;
      }
      continue;
    }
    if (type == static_cast<std::uint8_t>(RecordType::kDispatched)) {
      Reader r(body);
      const auto id = r.u64();
      const auto sequence = r.u64();
      if (!r.done()) break;
      // Attaches to the open submission; a dispatch record whose job was
      // since resolved (or whose submission the tail tore away) is inert.
      if (auto it = open.find(id); it != open.end()) {
        it->second.dispatch_sequence = sequence;
      }
      continue;
    }
    if (type == static_cast<std::uint8_t>(RecordType::kDedup)) {
      Reader r(body);
      const auto follower = r.u64();
      const auto primary = r.u64();
      if (!r.done()) break;
      // Provenance on the open follower; the link only stands while the
      // primary itself is still open (its solve never resolved anyone).
      if (auto it = open.find(follower);
          it != open.end() && open.count(primary) != 0) {
        it->second.dedup_primary = primary;
      }
      continue;
    }
    if (type != static_cast<std::uint8_t>(RecordType::kSubmitted)) {
      break;  // unknown record type: written by a future version, stop
    }
    Reader r(body);
    const auto id = r.u64();
    auto instance = parallel::wire::get_instance(r);
    if (!instance) break;
    auto options = get_job_options(r, version);
    if (!options) break;
    RecoveredJob job{id, *std::move(instance), *std::move(options)};
    if (version >= 3) {
      // v3 tail: tenant + warm-start policy.
      job.tenant = r.str(/*max_len=*/256);
      const auto warm = r.u8();
      if (!r.ok() ||
          warm > static_cast<std::uint8_t>(WarmStartPolicy::kSimilar)) {
        break;
      }
      job.warm_start = static_cast<WarmStartPolicy>(warm);
    }
    if (!r.done()) break;
    open.insert_or_assign(id, std::move(job));
  }

  std::vector<RecoveredJob> out;
  out.reserve(open.size());
  for (auto& [id, job] : open) out.push_back(std::move(job));
  return out;
}

}  // namespace pts::service::journal
