#include "tabu/tabu_list.hpp"

namespace pts::tabu {

std::size_t TabuList::active_add_tabu_count(std::uint64_t iter) const {
  std::size_t count = 0;
  for (auto expiry : add_expiry_) {
    if (expiry > iter) ++count;
  }
  return count;
}

}  // namespace pts::tabu
