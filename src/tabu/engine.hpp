#pragma once
// The sequential tabu search engine — the paper's Figure 1 loop, executed by
// every slave processor:
//
//   for i in 0..Nb_div:            (outer rounds, each ends in diversification)
//     for j in 0..Nb_int:          (inner rounds, each ends in intensification)
//       local search with Drop/Add moves until Nb_local iterations pass
//       without improving the global best
//       Intensification(X_local, X*)
//     Diversification(History, X)
//
// Tenure control is pluggable (fixed / REM / reactive) for ablation A4.
// Trace hooks exist so tests can assert the control structure itself
// (experiment index: Fig. 1).

#include <cstdint>
#include <utility>
#include <vector>

#include "mkp/instance.hpp"
#include "mkp/solution.hpp"
#include "obs/anytime.hpp"
#include "obs/counters.hpp"
#include "tabu/elite_pool.hpp"
#include "tabu/intensify.hpp"
#include "tabu/moves.hpp"
#include "tabu/strategy.hpp"
#include "util/rng.hpp"

namespace pts::tabu {

/// Observer for the engine's control flow. All callbacks default to no-ops.
class TsTrace {
 public:
  virtual ~TsTrace() = default;
  /// Fired once before the first move, with the value of the normalized
  /// (repaired + greedily completed) starting solution.
  virtual void on_start(double /*initial_value*/) {}
  virtual void on_outer_round(std::size_t /*div_round*/) {}
  virtual void on_inner_round(std::size_t /*div_round*/, std::size_t /*int_round*/) {}
  virtual void on_move(std::uint64_t /*move_index*/, double /*value*/,
                       bool /*improved_best*/) {}
  virtual void on_intensification(IntensificationKind /*kind*/, double /*value_before*/,
                                  double /*value_after*/) {}
  virtual void on_diversification(std::size_t /*forced_in*/, std::size_t /*forced_out*/) {}
};

struct TsResult {
  mkp::Solution best;
  double best_value = 0.0;
  std::vector<mkp::Solution> elite;  ///< the B best solutions, best first

  std::uint64_t moves = 0;
  double seconds = 0.0;
  bool reached_target = false;

  MoveStats move_stats;
  IntensifyStats intensify_stats;
  std::uint64_t intensifications = 0;
  std::uint64_t diversifications = 0;

  // Tenure-control diagnostics (ablation A4).
  std::uint64_t rem_flips_scanned = 0;
  std::uint64_t reactive_repetitions = 0;
  std::uint64_t reactive_escapes = 0;
  std::size_t final_tenure = 0;

  /// (move index, new best value) every time the incumbent improved.
  std::vector<std::pair<std::uint64_t, double>> improvements;

  /// Telemetry (obs/): the run's counter block (the engine is its single
  /// writer; kernels publish through the thread-local sink bound to it) and
  /// the anytime curve — (seconds, moves, value) per incumbent improvement.
  /// Both stay empty when obs::telemetry_enabled() is off.
  obs::Counters counters;
  std::vector<obs::AnytimeSample> anytime;
};

/// Runs one tabu search from `initial` (repaired + completed if needed).
/// At least one of params.max_moves / params.time_limit_seconds must bound
/// the run. Deterministic given (instance, initial, params, rng state).
TsResult tabu_search(const mkp::Instance& inst, const mkp::Solution& initial,
                     const TsParams& params, Rng& rng, TsTrace* trace = nullptr);

/// Convenience: start from the randomized greedy solution.
TsResult tabu_search_from_scratch(const mkp::Instance& inst, const TsParams& params,
                                  Rng& rng, TsTrace* trace = nullptr);

}  // namespace pts::tabu
