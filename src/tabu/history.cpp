#include "tabu/history.hpp"

// Header-only today; the translation unit anchors the library target.
