#include "tabu/path_relink.hpp"

#include <limits>
#include <vector>

#include "bounds/greedy.hpp"
#include "util/check.hpp"

namespace pts::tabu {

PathRelinkResult path_relink(const mkp::Solution& source, const mkp::Solution& target) {
  PTS_CHECK(&source.instance() == &target.instance());

  PathRelinkResult result{source, -std::numeric_limits<double>::infinity()};
  auto offer = [&result](const mkp::Solution& candidate) {
    if (!candidate.is_feasible()) return;
    if (candidate.value() > result.best_value) {
      result.best = candidate;
      result.best_value = candidate.value();
      ++result.improvements;
    }
  };
  offer(source);
  offer(target);
  result.improvements = 0;  // endpoints do not count as path discoveries

  // The set of components to flip to turn source into target.
  const std::size_t n = source.num_items();
  std::vector<std::size_t> diff;
  for (std::size_t j = 0; j < n; ++j) {
    if (source.contains(j) != target.contains(j)) diff.push_back(j);
  }
  result.path_length = diff.size();

  mkp::Solution current = source;
  std::vector<bool> done(diff.size(), false);
  for (std::size_t step = 0; step < diff.size(); ++step) {
    // Greedy guide: among the remaining flips, take the one that leaves the
    // intermediate with the highest objective (drops lose their profit,
    // adds gain theirs — feasibility is evaluated on the repaired copy).
    std::size_t best_k = diff.size();
    double best_key = -std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < diff.size(); ++k) {
      if (done[k]) continue;
      const std::size_t j = diff[k];
      const double delta = current.contains(j) ? -source.instance().profit(j)
                                               : source.instance().profit(j);
      if (delta > best_key) {
        best_key = delta;
        best_k = k;
      }
    }
    PTS_DCHECK(best_k < diff.size());
    done[best_k] = true;
    current.flip(diff[best_k]);

    if (current.is_feasible()) {
      offer(current);
    } else {
      // Evaluate the infeasible intermediate through a repaired copy; the
      // walk itself continues from the unrepaired point so the path still
      // reaches the target.
      mkp::Solution repaired = current;
      bounds::repair_to_feasible(repaired);
      bounds::greedy_fill(repaired);
      offer(repaired);
    }
  }
  PTS_DCHECK(current == target);

  // Guarantee the documented floor even if both endpoints were infeasible.
  if (!result.best.is_feasible()) {
    mkp::Solution repaired = source;
    bounds::repair_to_feasible(repaired);
    bounds::greedy_fill(repaired);
    result.best = repaired;
    result.best_value = repaired.value();
  }
  return result;
}

}  // namespace pts::tabu
