#pragma once
// The paper's composite move (§3.1, following Dammeyer–Voss):
//
//   Drop: pick the most saturated constraint i*, then among selected items
//         the one maximizing a_{i*,j} / c_j (most load per unit profit on the
//         bottleneck), skipping drop-tabu items. Repeat up to Nb_drop times.
//   Add : greedily re-add fitting items — highest slack-scaled profit
//         density first — skipping add-tabu items unless the aspiration
//         criterion fires (the add would push the objective above the best
//         value found so far).
//
// The kernel is stateless w.r.t. the search; all memory lives in TabuList /
// FrequencyMemory, which makes each rule unit-testable in isolation.

#include <cstdint>
#include <optional>
#include <vector>

#include "mkp/instance.hpp"
#include "mkp/solution.hpp"
#include "tabu/strategy.hpp"
#include "tabu/tabu_list.hpp"
#include "util/rng.hpp"

namespace pts::tabu {

struct MoveStats {
  std::uint64_t drops = 0;
  std::uint64_t adds = 0;
  std::uint64_t aspiration_hits = 0;
  std::uint64_t tabu_blocked_adds = 0;
  std::uint64_t forced_drops = 0;  ///< drop fell back to a tabu item (all tabu)
};

struct MoveOutcome {
  std::size_t num_drops = 0;
  std::size_t num_adds = 0;
  std::vector<std::size_t> flipped;  ///< drop/add order; consumed by REM
};

class MoveKernel {
 public:
  explicit MoveKernel(const mkp::Instance& inst) : inst_(&inst) {}

  /// One full Drop/Add move. `tenure` is the effective tabu tenure for this
  /// iteration (the engine may override the strategy's static value under
  /// reactive control). Newly dropped items become add-tabu; newly added
  /// items become drop-tabu (short tenure, tenure/2 + 1).
  MoveOutcome apply(mkp::Solution& x, TabuList& tabu, std::uint64_t iter,
                    const Strategy& strategy, std::size_t tenure, double best_value,
                    Rng& rng, MoveStats& stats) const;

  /// The Drop rule alone: the item to drop, or nullopt for an empty solution.
  /// If every selected item is drop-tabu, falls back to the rule ignoring
  /// tabu (sets `forced` when provided).
  [[nodiscard]] std::optional<std::size_t> select_drop(const mkp::Solution& x,
                                                       const TabuList& tabu,
                                                       std::uint64_t iter,
                                                       bool* forced = nullptr) const;

  /// The Add rule alone: the best fitting candidate honoring tabu status and
  /// aspiration, or nullopt when nothing can be added. Candidates stream the
  /// column-major weight mirror through the fused kernels::fit_and_score
  /// sweep; unselected items are enumerated by a word-level zero-scan of the
  /// selection mask and non-fitting ones are pre-rejected in O(1) when
  /// min_col_weight(j) > min_slack.
  ///
  /// When `max_candidates > 0` (the strategy's nb_candidates) only that many
  /// candidates are evaluated, scanned circularly from a random offset drawn
  /// from `rng` — the paper's "number of neighbor solutions evaluated at
  /// each move" knob. "Evaluated" counts fully scored candidates only:
  /// items rejected by the selection mask, the O(1) prune, the feasibility
  /// check, or the tabu filter (without aspiration) do not consume budget.
  /// rng may be null only when max_candidates == 0.
  [[nodiscard]] std::optional<std::size_t> select_add(
      const mkp::Solution& x, const TabuList& tabu, std::uint64_t iter,
      double best_value, MoveStats* stats = nullptr, Rng* rng = nullptr,
      std::size_t max_candidates = 0) const;

  /// Slack-scaled profit density of item j for the current solution:
  /// c_j / sum_i (a_ij / slack_i). Larger is better; constraints at zero
  /// slack make unfit items score zero. Exposed for the oscillation phase.
  [[nodiscard]] double add_score(const mkp::Solution& x, std::size_t j) const;

 private:
  const mkp::Instance* inst_;
};

}  // namespace pts::tabu
