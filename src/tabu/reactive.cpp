#include "tabu/reactive.hpp"

#include <algorithm>
#include <cmath>

namespace pts::tabu {

ReactiveTenure::ReactiveTenure(std::size_t base_tenure, const ReactiveConfig& config)
    : config_(config),
      tenure_(std::clamp(base_tenure, config.min_tenure, config.max_tenure)) {}

std::size_t ReactiveTenure::on_solution(std::uint64_t solution_hash, std::uint64_t iter) {
  auto [it, inserted] = visits_.try_emplace(solution_hash, 0U);
  ++it->second;
  if (!inserted) {
    ++repetitions_;
    last_repetition_iter_ = iter;
    tenure_ = std::min(
        config_.max_tenure,
        static_cast<std::size_t>(
            std::ceil(static_cast<double>(tenure_) * config_.grow_factor)) +
            1);
    if (it->second >= config_.escape_after) {
      escape_pending_ = true;
      ++escapes_;
      it->second = 0;  // restart the count after the kick
    }
  } else if (iter > last_repetition_iter_ + config_.shrink_after) {
    tenure_ = std::max(
        config_.min_tenure,
        static_cast<std::size_t>(
            std::floor(static_cast<double>(tenure_) * config_.shrink_factor)));
    last_repetition_iter_ = iter;  // throttle successive shrinks
  }
  return tenure_;
}

bool ReactiveTenure::consume_escape() {
  const bool pending = escape_pending_;
  escape_pending_ = false;
  return pending;
}

}  // namespace pts::tabu
