#pragma once
// Reactive Tabu Search tenure control (Battiti & Tecchiolli), the second
// dynamic-tenure scheme the paper cites: hash every visited solution; on a
// revisit, grow the tenure multiplicatively; after a long repetition-free
// stretch, shrink it. Solutions revisited too often trigger an escape
// (random kick) in the engine. The paper's objection — "the using of hashing
// function for MKP of great size will produce a great number of collisions
// ... an important overhead" — is what ablation A4 measures against the
// master-driven tuning of CTS2.

#include <cstddef>
#include <cstdint>
#include <unordered_map>

namespace pts::tabu {

struct ReactiveConfig {
  std::size_t min_tenure = 3;
  std::size_t max_tenure = 80;
  double grow_factor = 1.2;     ///< tenure <- tenure * grow + 1 on repetition
  double shrink_factor = 0.9;   ///< tenure <- tenure * shrink when idle
  std::size_t shrink_after = 100;  ///< repetition-free iterations before shrink
  std::size_t escape_after = 3;    ///< revisits of one solution forcing escape
};

class ReactiveTenure {
 public:
  ReactiveTenure(std::size_t base_tenure, const ReactiveConfig& config = {});

  /// Report the solution reached at `iter`; returns the tenure to use next.
  std::size_t on_solution(std::uint64_t solution_hash, std::uint64_t iter);

  /// True once a solution has been revisited `escape_after` times; reading
  /// clears the flag (the engine performs one kick per trigger).
  bool consume_escape();

  [[nodiscard]] std::size_t current_tenure() const { return tenure_; }
  [[nodiscard]] std::uint64_t repetitions() const { return repetitions_; }
  [[nodiscard]] std::uint64_t escapes_triggered() const { return escapes_; }
  [[nodiscard]] std::size_t table_size() const { return visits_.size(); }

 private:
  ReactiveConfig config_;
  std::size_t tenure_;
  std::unordered_map<std::uint64_t, std::uint32_t> visits_;
  std::uint64_t last_repetition_iter_ = 0;
  std::uint64_t repetitions_ = 0;
  std::uint64_t escapes_ = 0;
  bool escape_pending_ = false;
};

}  // namespace pts::tabu
