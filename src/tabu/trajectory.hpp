#pragma once
// Search-trajectory instrumentation: a TsTrace that records the anytime
// profile (best value vs moves) and per-phase activity, and summary
// statistics over it. Powers the anytime-curve bench (bench_anytime) and
// the search_diagnostics example; none of it costs anything when no trace
// is attached.

#include <cstdint>
#include <string>
#include <vector>

#include "tabu/engine.hpp"

namespace pts::tabu {

class TrajectoryRecorder : public TsTrace {
 public:
  struct Sample {
    std::uint64_t move = 0;
    double current_value = 0.0;
    double best_value = 0.0;
  };

  /// Records every `stride`-th move (1 = all). Intensifications and
  /// diversifications are always recorded as events.
  explicit TrajectoryRecorder(std::uint64_t stride = 1) : stride_(stride) {}

  void on_start(double initial_value) override;
  void on_move(std::uint64_t move_index, double value, bool improved_best) override;
  void on_intensification(IntensificationKind kind, double value_before,
                          double value_after) override;
  void on_diversification(std::size_t forced_in, std::size_t forced_out) override;
  void on_outer_round(std::size_t round) override;
  void on_inner_round(std::size_t round, std::size_t inner) override;

  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }

  struct Event {
    enum class Kind : std::uint8_t { kIntensify, kDiversify } kind;
    std::uint64_t at_move = 0;
    double value_delta = 0.0;  ///< intensification gain; 0 for diversify
  };
  [[nodiscard]] const std::vector<Event>& events() const { return events_; }

  /// Best value at or before `move` (0 before the first sample).
  [[nodiscard]] double best_at(std::uint64_t move) const;

  struct Summary {
    std::uint64_t total_moves = 0;
    double final_best = 0.0;
    /// Moves needed to reach the given fraction of the final best
    /// (anytime quality); 0 when never reached.
    std::uint64_t moves_to_90pct = 0;
    std::uint64_t moves_to_99pct = 0;
    std::uint64_t improving_moves = 0;
    std::size_t intensifications = 0;
    std::size_t diversifications = 0;
    double mean_intensification_gain = 0.0;

    [[nodiscard]] std::string to_string() const;
  };
  [[nodiscard]] Summary summarize() const;

 private:
  std::uint64_t stride_;
  std::uint64_t last_move_ = 0;
  double best_so_far_ = 0.0;
  std::uint64_t improving_moves_ = 0;
  std::vector<Sample> samples_;
  std::vector<Event> events_;
};

}  // namespace pts::tabu
