#include "tabu/diversify.hpp"

#include "bounds/greedy.hpp"
#include "util/check.hpp"

namespace pts::tabu {

DiversifyOutcome diversify(mkp::Solution& x, const FrequencyMemory& history,
                           const DiversifyConfig& config, TabuList& tabu,
                           std::uint64_t iter) {
  PTS_CHECK(config.low_frequency <= config.high_frequency);
  const auto& inst = x.instance();
  const std::size_t n = inst.num_items();
  DiversifyOutcome outcome;

  x.clear();

  const auto order = bounds::greedy_item_order(inst, bounds::GreedyOrder::kScaledDensity);

  // Force the neglected items in first (density order, only while they fit),
  // and pin them: they may not be dropped during the hold.
  for (std::size_t j : order) {
    if (history.frequency(j) >= config.low_frequency) continue;
    if (!x.fits(j)) continue;
    x.add(j);
    tabu.forbid_drop(j, iter, config.hold);
    ++outcome.forced_in;
  }

  // Ban the over-used items for the hold period.
  for (std::size_t j = 0; j < n; ++j) {
    if (history.frequency(j) > config.high_frequency) {
      tabu.forbid_add(j, iter, config.hold);
      ++outcome.forced_out;
    }
  }

  // Fill the rest greedily, skipping the banned items.
  for (std::size_t j : order) {
    if (x.contains(j)) continue;
    if (tabu.is_add_tabu(j, iter)) continue;
    if (x.fits(j)) x.add(j);
  }

  PTS_DCHECK(x.is_feasible());
  return outcome;
}

}  // namespace pts::tabu
