#include "tabu/elite_pool.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pts::tabu {

bool ElitePool::offer(const mkp::Solution& solution) {
  if (capacity_ == 0) return false;
  if (!solution.is_feasible()) return false;
  for (const auto& pooled : pool_) {
    if (pooled == solution) return false;
  }
  if (pool_.size() == capacity_ && solution.value() <= pool_.back().value()) return false;

  const auto pos = std::upper_bound(
      pool_.begin(), pool_.end(), solution.value(),
      [](double value, const mkp::Solution& s) { return value > s.value(); });
  pool_.insert(pos, solution);
  if (pool_.size() > capacity_) pool_.pop_back();
  return true;
}

const mkp::Solution& ElitePool::best() const {
  PTS_CHECK(!pool_.empty());
  return pool_.front();
}

double ElitePool::mean_pairwise_hamming() const {
  if (pool_.size() < 2) return 0.0;
  std::size_t total = 0;
  std::size_t pairs = 0;
  for (std::size_t a = 0; a < pool_.size(); ++a) {
    for (std::size_t b = a + 1; b < pool_.size(); ++b) {
      total += pool_[a].hamming_distance(pool_[b]);
      ++pairs;
    }
  }
  return static_cast<double>(total) / static_cast<double>(pairs);
}

}  // namespace pts::tabu
