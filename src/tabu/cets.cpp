#include "tabu/cets.hpp"

#include <algorithm>
#include <limits>

#include "bounds/greedy.hpp"
#include "tabu/history.hpp"
#include "tabu/tabu_list.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace pts::tabu {

namespace {

/// Best unselected item to add during the constructive phase: profit
/// density, penalized by its frequency at past critical solutions so
/// chronic members rotate out, honoring the add-tabu.
std::optional<std::size_t> pick_add(const mkp::Instance& inst, const mkp::Solution& x,
                                    const TabuList& tabu, std::uint64_t step,
                                    const FrequencyMemory& memory) {
  const std::size_t n = inst.num_items();
  std::size_t best = n;
  double best_key = -std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < n; ++j) {
    if (x.contains(j) || tabu.is_add_tabu(j, step)) continue;
    const double penalty = 1.0 - 0.5 * memory.frequency(j);
    const double key = inst.profit_density(j) * penalty;
    if (key > best_key) {
      best_key = key;
      best = j;
    }
  }
  if (best == n) {
    // Everything add-tabu: fall back to the raw rule so the phase advances.
    for (std::size_t j = 0; j < n; ++j) {
      if (x.contains(j)) continue;
      const double key = inst.profit_density(j);
      if (key > best_key) {
        best_key = key;
        best = j;
      }
    }
  }
  return best < n ? std::optional<std::size_t>(best) : std::nullopt;
}

/// Worst selected item to drop during the destructive phase: largest
/// aggregate-weight to profit ratio, honoring the drop-tabu.
std::optional<std::size_t> pick_drop(const mkp::Instance& inst, const mkp::Solution& x,
                                     const TabuList& tabu, std::uint64_t step) {
  const std::size_t n = inst.num_items();
  auto scan = [&](bool honor_tabu) -> std::optional<std::size_t> {
    std::size_t best = n;
    double best_key = -1.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (!x.contains(j)) continue;
      if (honor_tabu && tabu.is_drop_tabu(j, step)) continue;
      const double profit = inst.profit(j);
      const double key = profit > 0.0 ? inst.column_weight_sum(j) / profit
                                      : std::numeric_limits<double>::infinity();
      if (key > best_key) {
        best_key = key;
        best = j;
      }
    }
    return best < n ? std::optional<std::size_t>(best) : std::nullopt;
  };
  if (auto choice = scan(true)) return choice;
  return scan(false);
}

}  // namespace

CetsResult critical_event_tabu_search(const mkp::Instance& inst, Rng& rng,
                                      const CetsParams& params) {
  PTS_CHECK_MSG(params.max_steps > 0 || params.time_limit_seconds > 0.0,
                "the run must be bounded by steps or time");
  PTS_CHECK(params.initial_amplitude >= 1);

  Stopwatch watch;
  const auto deadline = params.time_limit_seconds > 0.0
                            ? Deadline::after_seconds(params.time_limit_seconds)
                            : Deadline::unbounded();

  TabuList tabu(inst.num_items());
  FrequencyMemory critical_memory(inst.num_items());

  mkp::Solution x = bounds::greedy_randomized(inst, rng);
  CetsResult result{x, x.value()};
  if (params.target_value && result.best_value >= *params.target_value) {
    result.reached_target = true;
  }

  std::size_t amplitude = params.initial_amplitude;
  std::size_t events_since_improvement = 0;
  bool constructive = true;       // start by pushing over the boundary
  std::size_t phase_progress = 0; // items added beyond / dropped inside

  auto record_critical = [&](const mkp::Solution& solution) {
    ++result.critical_events;
    critical_memory.record(solution);
    if (solution.value() > result.best_value) {
      result.best_value = solution.value();
      result.best = solution;
      events_since_improvement = 0;
      amplitude = params.initial_amplitude;  // improvement: hug the boundary
      if (params.target_value && result.best_value >= *params.target_value) {
        result.reached_target = true;
      }
    } else {
      ++events_since_improvement;
      if (events_since_improvement % params.widen_after == 0) {
        // Unproductive span: widen the swing.
        if (amplitude < params.max_amplitude) {
          ++amplitude;
          ++result.amplitude_widenings;
        }
      }
    }
  };

  while (!result.reached_target &&
         (params.max_steps == 0 || result.steps < params.max_steps) &&
         !deadline.expired()) {
    ++result.steps;
    const std::uint64_t step = result.steps;

    if (constructive) {
      const auto item = pick_add(inst, x, tabu, step, critical_memory);
      if (!item) {  // full knapsack: flip phase
        constructive = false;
        phase_progress = 0;
        continue;
      }
      const bool was_feasible = x.is_feasible();
      x.add(*item);
      tabu.forbid_drop(*item, step, params.tenure / 2 + 1);
      if (was_feasible && !x.is_feasible()) {
        // Boundary crossed going out: the previous solution was critical.
        mkp::Solution critical = x;
        critical.drop(*item);
        record_critical(critical);
        phase_progress = 1;
      } else if (!x.is_feasible()) {
        ++phase_progress;
      }
      if (!x.is_feasible() && phase_progress >= amplitude) {
        constructive = false;
        phase_progress = 0;
      }
    } else {
      const auto item = pick_drop(inst, x, tabu, step);
      if (!item) {  // empty knapsack: flip phase
        constructive = true;
        phase_progress = 0;
        continue;
      }
      const bool was_feasible = x.is_feasible();
      x.drop(*item);
      tabu.forbid_add(*item, step, params.tenure);
      if (!was_feasible && x.is_feasible()) {
        // Boundary crossed coming back: this solution is critical too.
        record_critical(x);
        phase_progress = 1;
      } else if (x.is_feasible()) {
        ++phase_progress;
      }
      if (x.is_feasible() && phase_progress >= amplitude) {
        constructive = true;
        phase_progress = 0;
      }
    }

    // Long unproductive stretch: frequency-guided restart from scratch.
    if (events_since_improvement >= params.restart_after) {
      events_since_improvement = 0;
      ++result.restarts;
      x.clear();
      // Seed with the least-frequent items, then let the oscillation refill.
      const auto order =
          bounds::greedy_item_order(inst, bounds::GreedyOrder::kScaledDensity);
      for (std::size_t j : order) {
        if (critical_memory.frequency(j) < 0.3 && x.fits(j)) x.add(j);
      }
      constructive = true;
      phase_progress = 0;
    }
  }

  result.seconds = watch.elapsed_seconds();
  PTS_DCHECK(result.best.is_feasible());
  return result;
}

}  // namespace pts::tabu
