#include "tabu/trajectory.hpp"

#include <algorithm>
#include <cstdio>

namespace pts::tabu {

void TrajectoryRecorder::on_start(double initial_value) {
  best_so_far_ = std::max(best_so_far_, initial_value);
  samples_.push_back({0, initial_value, best_so_far_});
}

void TrajectoryRecorder::on_move(std::uint64_t move_index, double value,
                                 bool improved_best) {
  last_move_ = move_index;
  if (improved_best) {
    ++improving_moves_;
    best_so_far_ = std::max(best_so_far_, value);
  }
  const bool record = improved_best || stride_ <= 1 || move_index % stride_ == 0;
  if (record) {
    samples_.push_back({move_index, value, best_so_far_});
  }
}

void TrajectoryRecorder::on_intensification(IntensificationKind, double value_before,
                                            double value_after) {
  best_so_far_ = std::max(best_so_far_, value_after);
  events_.push_back({Event::Kind::kIntensify, last_move_, value_after - value_before});
}

void TrajectoryRecorder::on_diversification(std::size_t, std::size_t) {
  events_.push_back({Event::Kind::kDiversify, last_move_, 0.0});
}

void TrajectoryRecorder::on_outer_round(std::size_t) {}
void TrajectoryRecorder::on_inner_round(std::size_t, std::size_t) {}

double TrajectoryRecorder::best_at(std::uint64_t move) const {
  double best = 0.0;
  for (const auto& sample : samples_) {
    if (sample.move > move) break;
    best = sample.best_value;
  }
  return best;
}

TrajectoryRecorder::Summary TrajectoryRecorder::summarize() const {
  Summary summary;
  summary.total_moves = last_move_;
  summary.final_best = best_so_far_;
  summary.improving_moves = improving_moves_;

  for (const auto& sample : samples_) {
    if (summary.moves_to_90pct == 0 && sample.best_value >= 0.90 * best_so_far_) {
      summary.moves_to_90pct = sample.move;
    }
    if (summary.moves_to_99pct == 0 && sample.best_value >= 0.99 * best_so_far_) {
      summary.moves_to_99pct = sample.move;
      break;
    }
  }

  double gain_sum = 0.0;
  for (const auto& event : events_) {
    if (event.kind == Event::Kind::kIntensify) {
      ++summary.intensifications;
      gain_sum += event.value_delta;
    } else {
      ++summary.diversifications;
    }
  }
  if (summary.intensifications > 0) {
    summary.mean_intensification_gain =
        gain_sum / static_cast<double>(summary.intensifications);
  }
  return summary;
}

std::string TrajectoryRecorder::Summary::to_string() const {
  char buffer[256];
  std::snprintf(buffer, sizeof buffer,
                "moves=%llu best=%.1f 90%%@%llu 99%%@%llu improving=%llu "
                "intensify=%zu (mean gain %.2f) diversify=%zu",
                static_cast<unsigned long long>(total_moves), final_best,
                static_cast<unsigned long long>(moves_to_90pct),
                static_cast<unsigned long long>(moves_to_99pct),
                static_cast<unsigned long long>(improving_moves), intensifications,
                mean_intensification_gain, diversifications);
  return buffer;
}

}  // namespace pts::tabu
