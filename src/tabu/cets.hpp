#pragma once
// Critical Event Tabu Search (after Glover & Kochenberger, "Critical event
// tabu search for multidimensional knapsack problems" — the paper's
// reference [6], whose problem set and results §5 measures against).
//
// CETS organizes the whole search as strategic oscillation around the
// feasibility boundary: a constructive phase adds items until the solution
// sits `amplitude` items beyond the boundary, a destructive phase drops
// items until it sits `amplitude` items inside, and so on. The *critical
// events* are the boundary crossings; the last feasible solution of each
// constructive phase is a critical solution — those are the candidates for
// the incumbent and the only solutions recorded in the long-term frequency
// memory. The oscillation amplitude adapts: it grows after unproductive
// spans (wider swings = diversification) and resets to 1 on improvement
// (hug the boundary = intensification).
//
// This is a *baseline comparator*: one fixed-parameter sequential method
// against which the parallel self-tuning CTS2 is benchmarked
// (bench_cets_compare).

#include <cstdint>
#include <optional>

#include "mkp/instance.hpp"
#include "mkp/solution.hpp"
#include "util/rng.hpp"

namespace pts::tabu {

struct CetsParams {
  std::size_t tenure = 7;            ///< add/drop recency tabu, as in the engine
  std::size_t initial_amplitude = 1; ///< items beyond/inside the boundary
  std::size_t max_amplitude = 6;
  /// Critical events without improvement before the amplitude grows.
  std::size_t widen_after = 20;
  /// Critical events without improvement before a frequency-driven restart.
  std::size_t restart_after = 120;

  std::uint64_t max_steps = 100'000;  ///< add/drop steps (the budget unit)
  double time_limit_seconds = 0.0;
  std::optional<double> target_value;
};

struct CetsResult {
  mkp::Solution best;
  double best_value = 0.0;
  std::uint64_t steps = 0;
  std::uint64_t critical_events = 0;
  std::uint64_t amplitude_widenings = 0;
  std::uint64_t restarts = 0;
  double seconds = 0.0;
  bool reached_target = false;
};

CetsResult critical_event_tabu_search(const mkp::Instance& inst, Rng& rng,
                                      const CetsParams& params = {});

}  // namespace pts::tabu
