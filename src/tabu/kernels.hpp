#pragma once
// Cache-aware move-evaluation kernels for the Add step (DESIGN.md "Data
// layout & move kernels").
//
// The Drop/Add tabu move spends nearly all its time deciding which item to
// add next: for every unselected candidate j it must (a) test feasibility
// against all m constraints and (b) compute the slack-scaled profit density.
// The historical path did that as two separate passes over column j of the
// row-major weight matrix — 2m strided reads at stride n per candidate.
//
// fit_and_score() fuses both passes into ONE sweep of the contiguous
// column-major mirror (Instance::weights_col), with an early-out on the
// first violated constraint. The feasibility test is bit-identical to the
// scalar pair (same comparison load + w > b, same scan order). The score
// differs from the scalar computation only at the ulp level: it multiplies
// each weight by the floored reciprocal slack that Solution maintains per
// move (Solution::inv_slack) instead of dividing, and sums through four
// independent accumulator chains instead of one — divisions and the serial
// FP-add latency chain dominate the scoring cost otherwise. Both tweaks
// perturb the result by ~1 ulp per term, far inside the 1e-9 property-test
// tolerance, and genuinely tied candidates (identical columns) still
// produce bitwise-equal scores, preserving first-seen tie-breaks.
//
// prune_add_candidate() is the O(1) pre-filter: an item whose smallest
// weight exceeds the solution's smallest slack cannot fit at the tightest
// constraint, so the column need not be touched at all. (Exact for the
// integral-valued weights every generator and OR-Library file produces.)
//
// fit_and_score_reference() preserves the pre-mirror strided access pattern
// verbatim; bench_kernels and the equivalence property tests compare
// against it.

#include <cstddef>
#include <limits>

#include "mkp/instance.hpp"
#include "mkp/solution.hpp"
#include "util/simd.hpp"

namespace pts::tabu::kernels {

/// Floor applied to per-constraint slack before dividing, so items touching
/// a nearly-saturated constraint score finite. Defined on Solution (which
/// precomputes the floored reciprocals); aliased here for the kernels API.
inline constexpr double kSlackFloor = mkp::Solution::kSlackFloor;

struct FitScore {
  bool fit = false;
  double score = 0.0;  ///< slack-scaled profit density; valid only when fit
};

namespace detail {

/// Solution-invariant pointers a candidate scan reads on every call:
/// derived once per AddScan instead of once per candidate. All spans come
/// from the padded mirrors, so vector bodies may read whole lane groups.
struct ScanCtx {
  const double* mirror = nullptr;   ///< weights_col_padded(0)
  const double* loads = nullptr;    ///< Solution::loads_padded
  const double* caps = nullptr;     ///< Instance::capacities_padded
  const double* inv = nullptr;      ///< Solution::inv_slack_padded
  const double* profits = nullptr;  ///< Instance::profits
  std::size_t m = 0;                ///< logical constraint count
  std::size_t stride = 0;           ///< padded per-column stride
};

using ScanBody = FitScore (*)(const ScanCtx&, std::size_t);

}  // namespace detail

/// True when item j can be rejected without reading its weight column:
/// min_i a_ij > min_i slack_i implies the weight at the tightest constraint
/// already exceeds that constraint's slack.
[[nodiscard]] inline bool prune_add_candidate(const mkp::Solution& x, std::size_t j) {
  return x.instance().min_col_weight(j) > x.min_slack();
}

/// Fused feasibility + score in one pass over the contiguous weight column,
/// early-out on the first violated constraint. When `fit` is false the
/// score is 0 and must not be used (the scalar add_score can report a
/// nonzero score for a non-fitting item; callers always test fit first).
///
/// Dispatches on simd::active(): the scalar fused loop, or a bit-compatible
/// AVX2/NEON vector body (see kernels_simd.cpp — identical accumulation
/// tree, so the result is bitwise equal and fixed-seed trajectories do not
/// depend on the dispatch kind).
[[nodiscard]] FitScore fit_and_score(const mkp::Solution& x, std::size_t j);

/// Forced-path variants bypassing runtime dispatch, for equivalence tests
/// and benchmark A/B columns. fit_and_score_vector() runs the vector body
/// for `kind` and must not be called with a kind this CPU cannot execute
/// (simd::set_active/best_supported gate that); kScalar is accepted and
/// routes to the scalar body.
[[nodiscard]] FitScore fit_and_score_scalar(const mkp::Solution& x, std::size_t j);
[[nodiscard]] FitScore fit_and_score_vector(const mkp::Solution& x, std::size_t j,
                                            simd::Kind kind);

/// The historical two-pass scalar path: Solution::fits-style check followed
/// by MoveKernel::add_score-style scoring, both reading a_ij at stride n
/// from the row-major matrix. Kept as the benchmark/test reference.
[[nodiscard]] FitScore fit_and_score_reference(const mkp::Solution& x, std::size_t j);

/// Per-sweep candidate evaluator: resolves dispatch and derives the
/// solution-invariant pointers ONCE, then evaluates candidates with the
/// same bodies (and the O(1) prune) the per-call API uses — results are
/// bitwise identical to fit_and_score(). A full Add scan touches every
/// unselected item, so the per-call setup (span derivation, dispatch
/// resolve, counter plumbing) is a measurable fraction of sweep time; the
/// engine's select_add and the kernel benchmark both scan through this.
///
/// Vector kinds additionally take a certain-fit fast path: when
/// Instance::max_col_weight(j) <= Solution::min_slack() the add is
/// guaranteed feasible (the dual of the prune bound, exact for the
/// integral weights every generator and OR-Library file produces), so the
/// feasibility lanes are skipped and only the score accumulation runs —
/// the accumulation tree is unchanged, so the score is still bitwise equal
/// to the checked path's. The scalar body stays the frozen reference the
/// vector bodies are validated against (and the benchmark baseline), so it
/// never takes the fast path.
///
/// The solution must not be mutated while a scan is live: applying a move
/// invalidates every cached pointer and the cached minimum slack.
class AddScan {
 public:
  /// Scan dispatching on simd::active().
  explicit AddScan(const mkp::Solution& x) : AddScan(x, simd::active()) {}
  /// Scan pinned to `kind` (benchmark columns, equivalence tests); `kind`
  /// must be executable on this CPU (see fit_and_score_vector).
  AddScan(const mkp::Solution& x, simd::Kind kind);

  /// Prune + evaluate candidate j, exactly like fit_and_score(x, j).
  [[nodiscard]] FitScore operator()(std::size_t j) const;

 private:
  const mkp::Instance* inst_;
  detail::ScanCtx ctx_;
  detail::ScanBody checked_;
  detail::ScanBody score_only_;  ///< certain-fit body; null for kScalar
  double min_slack_;
};

}  // namespace pts::tabu::kernels
