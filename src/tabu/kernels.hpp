#pragma once
// Cache-aware move-evaluation kernels for the Add step (DESIGN.md "Data
// layout & move kernels").
//
// The Drop/Add tabu move spends nearly all its time deciding which item to
// add next: for every unselected candidate j it must (a) test feasibility
// against all m constraints and (b) compute the slack-scaled profit density.
// The historical path did that as two separate passes over column j of the
// row-major weight matrix — 2m strided reads at stride n per candidate.
//
// fit_and_score() fuses both passes into ONE sweep of the contiguous
// column-major mirror (Instance::weights_col), with an early-out on the
// first violated constraint. The feasibility test is bit-identical to the
// scalar pair (same comparison load + w > b, same scan order). The score
// differs from the scalar computation only at the ulp level: it multiplies
// each weight by the floored reciprocal slack that Solution maintains per
// move (Solution::inv_slack) instead of dividing, and sums through four
// independent accumulator chains instead of one — divisions and the serial
// FP-add latency chain dominate the scoring cost otherwise. Both tweaks
// perturb the result by ~1 ulp per term, far inside the 1e-9 property-test
// tolerance, and genuinely tied candidates (identical columns) still
// produce bitwise-equal scores, preserving first-seen tie-breaks.
//
// prune_add_candidate() is the O(1) pre-filter: an item whose smallest
// weight exceeds the solution's smallest slack cannot fit at the tightest
// constraint, so the column need not be touched at all. (Exact for the
// integral-valued weights every generator and OR-Library file produces.)
//
// fit_and_score_reference() preserves the pre-mirror strided access pattern
// verbatim; bench_kernels and the equivalence property tests compare
// against it.

#include <cstddef>
#include <limits>

#include "mkp/instance.hpp"
#include "mkp/solution.hpp"

namespace pts::tabu::kernels {

/// Floor applied to per-constraint slack before dividing, so items touching
/// a nearly-saturated constraint score finite. Defined on Solution (which
/// precomputes the floored reciprocals); aliased here for the kernels API.
inline constexpr double kSlackFloor = mkp::Solution::kSlackFloor;

struct FitScore {
  bool fit = false;
  double score = 0.0;  ///< slack-scaled profit density; valid only when fit
};

/// True when item j can be rejected without reading its weight column:
/// min_i a_ij > min_i slack_i implies the weight at the tightest constraint
/// already exceeds that constraint's slack.
[[nodiscard]] inline bool prune_add_candidate(const mkp::Solution& x, std::size_t j) {
  return x.instance().min_col_weight(j) > x.min_slack();
}

/// Fused feasibility + score in one pass over the contiguous weight column,
/// early-out on the first violated constraint. When `fit` is false the
/// score is 0 and must not be used (the scalar add_score can report a
/// nonzero score for a non-fitting item; callers always test fit first).
[[nodiscard]] FitScore fit_and_score(const mkp::Solution& x, std::size_t j);

/// The historical two-pass scalar path: Solution::fits-style check followed
/// by MoveKernel::add_score-style scoring, both reading a_ij at stride n
/// from the row-major matrix. Kept as the benchmark/test reference.
[[nodiscard]] FitScore fit_and_score_reference(const mkp::Solution& x, std::size_t j);

}  // namespace pts::tabu::kernels
