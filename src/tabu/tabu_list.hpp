#pragma once
// Recency-based tabu memory over move attributes. Following the standard MKP
// practice (and the paper's Drop/Add move), the tabu attribute is per item
// and per direction: a recently dropped item may not be re-added, a recently
// added item may not be dropped, for `tenure` iterations. The "list" is
// realised as per-item expiry iterations — O(1) queries, no scanning —
// which is semantically a FIFO list of length == tenure.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace pts::tabu {

class TabuList {
 public:
  explicit TabuList(std::size_t num_items)
      : add_expiry_(num_items, 0), drop_expiry_(num_items, 0) {}

  /// Item j was just dropped: forbid re-adding it until iter + tenure.
  void forbid_add(std::size_t j, std::uint64_t iter, std::size_t tenure) {
    PTS_DCHECK(j < add_expiry_.size());
    add_expiry_[j] = iter + tenure;
  }

  /// Item j was just added: forbid dropping it until iter + tenure.
  void forbid_drop(std::size_t j, std::uint64_t iter, std::size_t tenure) {
    PTS_DCHECK(j < drop_expiry_.size());
    drop_expiry_[j] = iter + tenure;
  }

  [[nodiscard]] bool is_add_tabu(std::size_t j, std::uint64_t iter) const {
    PTS_DCHECK(j < add_expiry_.size());
    return add_expiry_[j] > iter;
  }

  [[nodiscard]] bool is_drop_tabu(std::size_t j, std::uint64_t iter) const {
    PTS_DCHECK(j < drop_expiry_.size());
    return drop_expiry_[j] > iter;
  }

  void clear() {
    for (auto& e : add_expiry_) e = 0;
    for (auto& e : drop_expiry_) e = 0;
  }

  [[nodiscard]] std::size_t num_items() const { return add_expiry_.size(); }

  /// Number of items currently add-tabu (diagnostics / tests).
  [[nodiscard]] std::size_t active_add_tabu_count(std::uint64_t iter) const;

 private:
  std::vector<std::uint64_t> add_expiry_;
  std::vector<std::uint64_t> drop_expiry_;
};

}  // namespace pts::tabu
