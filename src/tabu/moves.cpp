#include "tabu/moves.hpp"

#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace pts::tabu {

namespace {
constexpr double kSlackFloor = 1e-9;
}

double MoveKernel::add_score(const mkp::Solution& x, std::size_t j) const {
  const std::size_t m = inst_->num_constraints();
  double scaled_weight = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double w = inst_->weight(i, j);
    if (w == 0.0) continue;
    const double slack = x.slack(i);
    if (slack <= 0.0) return 0.0;  // cannot fit anyway
    scaled_weight += w / std::max(slack, kSlackFloor);
  }
  if (scaled_weight == 0.0) return std::numeric_limits<double>::infinity();
  return inst_->profit(j) / scaled_weight;
}

std::optional<std::size_t> MoveKernel::select_drop(const mkp::Solution& x,
                                                   const TabuList& tabu,
                                                   std::uint64_t iter,
                                                   bool* forced) const {
  if (forced) *forced = false;
  if (x.cardinality() == 0) return std::nullopt;

  const std::size_t bottleneck = x.most_saturated_constraint();
  const auto row = inst_->weights_row(bottleneck);
  const std::size_t n = inst_->num_items();

  auto pick = [&](bool honor_tabu) -> std::optional<std::size_t> {
    std::size_t best = n;
    double best_key = -1.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (!x.contains(j)) continue;
      if (honor_tabu && tabu.is_drop_tabu(j, iter)) continue;
      const double profit = inst_->profit(j);
      const double key = profit > 0.0 ? row[j] / profit
                                      : std::numeric_limits<double>::infinity();
      if (key > best_key) {
        best_key = key;
        best = j;
      }
    }
    return best < n ? std::optional<std::size_t>(best) : std::nullopt;
  };

  if (auto choice = pick(/*honor_tabu=*/true)) return choice;
  // Every selected item is drop-tabu: the search must still move, so fall
  // back to the untabooed rule (recorded as a forced drop).
  if (forced) *forced = true;
  return pick(/*honor_tabu=*/false);
}

std::optional<std::size_t> MoveKernel::select_add(const mkp::Solution& x,
                                                  const TabuList& tabu,
                                                  std::uint64_t iter, double best_value,
                                                  MoveStats* stats, Rng* rng,
                                                  std::size_t max_candidates) const {
  const std::size_t n = inst_->num_items();
  PTS_DCHECK(max_candidates == 0 || rng != nullptr);
  const std::size_t start = max_candidates > 0 ? rng->index(n) : 0;
  std::size_t evaluated = 0;
  std::size_t best = n;
  double best_key = -1.0;
  for (std::size_t offset = 0; offset < n; ++offset) {
    const std::size_t j = start + offset < n ? start + offset : start + offset - n;
    if (x.contains(j) || !x.fits(j)) continue;
    if (tabu.is_add_tabu(j, iter)) {
      // Aspiration (§3.1): the tabu barrier falls when accepting the item
      // would immediately beat the best objective value found so far.
      const bool aspires = x.value() + inst_->profit(j) > best_value;
      if (!aspires) {
        if (stats) ++stats->tabu_blocked_adds;
        continue;
      }
      if (stats) ++stats->aspiration_hits;
    }
    const double key = add_score(x, j);
    if (key > best_key) {
      best_key = key;
      best = j;
    }
    if (max_candidates > 0 && ++evaluated >= max_candidates) break;
  }
  return best < n ? std::optional<std::size_t>(best) : std::nullopt;
}

MoveOutcome MoveKernel::apply(mkp::Solution& x, TabuList& tabu, std::uint64_t iter,
                              const Strategy& strategy, std::size_t tenure,
                              double best_value, Rng& rng, MoveStats& stats) const {
  MoveOutcome outcome;
  PTS_DCHECK(strategy.nb_drop >= 1);

  // Randomize the drop count in [1, nb_drop]: the paper treats Nb_drop as
  // the *maximum* number of consecutive drops; varying it per move keeps
  // step lengths diverse within one strategy.
  const std::size_t drops_this_move =
      strategy.nb_drop == 1
          ? 1
          : 1 + static_cast<std::size_t>(rng.index(strategy.nb_drop));

  for (std::size_t d = 0; d < drops_this_move; ++d) {
    bool forced = false;
    const auto victim = select_drop(x, tabu, iter, &forced);
    if (!victim) break;
    x.drop(*victim);
    tabu.forbid_add(*victim, iter, tenure);
    outcome.flipped.push_back(*victim);
    ++outcome.num_drops;
    ++stats.drops;
    if (forced) ++stats.forced_drops;
  }

  // Add until no object fits (§3.1: "Adding object to the knapsack is
  // realized until no object can be added").
  while (auto candidate = select_add(x, tabu, iter, best_value, &stats, &rng,
                                     strategy.nb_candidates)) {
    x.add(*candidate);
    tabu.forbid_drop(*candidate, iter, tenure / 2 + 1);
    outcome.flipped.push_back(*candidate);
    ++outcome.num_adds;
    ++stats.adds;
  }
  return outcome;
}

}  // namespace pts::tabu
