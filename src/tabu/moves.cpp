#include "tabu/moves.hpp"

#include <cmath>
#include <limits>

#include "obs/counters.hpp"
#include "tabu/kernels.hpp"
#include "util/check.hpp"

namespace pts::tabu {

double MoveKernel::add_score(const mkp::Solution& x, std::size_t j) const {
  const auto col = inst_->weights_col(j);
  const auto inv = x.inv_slack();
  const std::size_t m = col.size();
  double scaled_weight = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double w = col[i];
    if (w == 0.0) continue;
    if (x.slack(i) <= 0.0) return 0.0;  // cannot fit anyway
    // Multiply by the precomputed reciprocal as kernels::fit_and_score does;
    // the fused kernel's unrolled accumulation may differ from this single
    // chain by ulps (see kernels.hpp), never more.
    scaled_weight += w * inv[i];
  }
  if (scaled_weight == 0.0) return std::numeric_limits<double>::infinity();
  return inst_->profit(j) / scaled_weight;
}

std::optional<std::size_t> MoveKernel::select_drop(const mkp::Solution& x,
                                                   const TabuList& tabu,
                                                   std::uint64_t iter,
                                                   bool* forced) const {
  if (forced) *forced = false;
  if (x.cardinality() == 0) return std::nullopt;

  const std::size_t bottleneck = x.most_saturated_constraint();
  const auto row = inst_->weights_row(bottleneck);
  const std::size_t n = inst_->num_items();

  auto pick = [&](bool honor_tabu) -> std::optional<std::size_t> {
    std::size_t best = n;
    double best_key = -1.0;
    // Word-level scan of the selection mask: only selected items are visited.
    const BitVec& bits = x.bits();
    for (std::size_t j = bits.next_one(0); j < n; j = bits.next_one(j + 1)) {
      if (honor_tabu && tabu.is_drop_tabu(j, iter)) continue;
      const double profit = inst_->profit(j);
      const double key = profit > 0.0 ? row[j] / profit
                                      : std::numeric_limits<double>::infinity();
      if (key > best_key) {
        best_key = key;
        best = j;
      }
    }
    return best < n ? std::optional<std::size_t>(best) : std::nullopt;
  };

  if (auto choice = pick(/*honor_tabu=*/true)) return choice;
  // Every selected item is drop-tabu: the search must still move, so fall
  // back to the untabooed rule (recorded as a forced drop).
  if (forced) *forced = true;
  return pick(/*honor_tabu=*/false);
}

std::optional<std::size_t> MoveKernel::select_add(const mkp::Solution& x,
                                                  const TabuList& tabu,
                                                  std::uint64_t iter, double best_value,
                                                  MoveStats* stats, Rng* rng,
                                                  std::size_t max_candidates) const {
  const std::size_t n = inst_->num_items();
  PTS_DCHECK(max_candidates == 0 || rng != nullptr);
  const std::size_t start = max_candidates > 0 ? rng->index(n) : 0;
  std::size_t evaluated = 0;
  std::size_t best = n;
  double best_key = -1.0;
  // Candidate budget semantics: `evaluated` counts FULLY SCORED candidates
  // only — items skipped because they are selected, pruned in O(1), fail the
  // fused feasibility check, or are tabu without aspiration consume no
  // budget. max_candidates therefore bounds the number of score comparisons
  // per move (the paper's "neighbor solutions evaluated"), independent of
  // how dense the selection mask or the tabu list happens to be.
  // Hoist the dispatch resolve and the solution-invariant pointer bundle out
  // of the per-candidate loop; scan(j) == fit_and_score(x, j) bitwise.
  const kernels::AddScan scan(x);
  auto consider = [&](std::size_t j) -> bool {  // false stops the scan
    const auto fs = scan(j);
    if (!fs.fit) return true;
    if (tabu.is_add_tabu(j, iter)) {
      // Aspiration (§3.1): the tabu barrier falls when accepting the item
      // would immediately beat the best objective value found so far.
      const bool aspires = x.value() + inst_->profit(j) > best_value;
      if (!aspires) {
        if (stats) ++stats->tabu_blocked_adds;
        return true;
      }
      if (stats) ++stats->aspiration_hits;
    }
    if (fs.score > best_key) {
      best_key = fs.score;
      best = j;
    }
    return !(max_candidates > 0 && ++evaluated >= max_candidates);
  };
  // Circular sweep from `start`, visiting only unselected items via a
  // word-level scan of the selection mask's zeros.
  const BitVec& bits = x.bits();
  for (std::size_t j = bits.next_zero(start); j < n; j = bits.next_zero(j + 1)) {
    if (!consider(j)) return best < n ? std::optional<std::size_t>(best) : std::nullopt;
  }
  for (std::size_t j = bits.next_zero(0); j < start; j = bits.next_zero(j + 1)) {
    if (!consider(j)) break;
  }
  return best < n ? std::optional<std::size_t>(best) : std::nullopt;
}

MoveOutcome MoveKernel::apply(mkp::Solution& x, TabuList& tabu, std::uint64_t iter,
                              const Strategy& strategy, std::size_t tenure,
                              double best_value, Rng& rng, MoveStats& stats) const {
  MoveOutcome outcome;
  PTS_DCHECK(strategy.nb_drop >= 1);

  // Randomize the drop count in [1, nb_drop]: the paper treats Nb_drop as
  // the *maximum* number of consecutive drops; varying it per move keeps
  // step lengths diverse within one strategy.
  const std::size_t drops_this_move =
      strategy.nb_drop == 1
          ? 1
          : 1 + static_cast<std::size_t>(rng.index(strategy.nb_drop));

  for (std::size_t d = 0; d < drops_this_move; ++d) {
    bool forced = false;
    const auto victim = select_drop(x, tabu, iter, &forced);
    if (!victim) break;
    x.drop(*victim);
    tabu.forbid_add(*victim, iter, tenure);
    outcome.flipped.push_back(*victim);
    ++outcome.num_drops;
    ++stats.drops;
    if (forced) ++stats.forced_drops;
  }

  // Add until no object fits (§3.1: "Adding object to the knapsack is
  // realized until no object can be added").
  while (auto candidate = select_add(x, tabu, iter, best_value, &stats, &rng,
                                     strategy.nb_candidates)) {
    x.add(*candidate);
    tabu.forbid_drop(*candidate, iter, tenure / 2 + 1);
    outcome.flipped.push_back(*candidate);
    ++outcome.num_adds;
    ++stats.adds;
  }
  return outcome;
}

}  // namespace pts::tabu
