#pragma once
// Long-term frequency memory (the paper's History array, §3.3): for every
// item, the number of iterations it spent at 1 since the search began.
// Diversification reads the normalized frequencies to force chronically
// present items out and chronically absent items in.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mkp/solution.hpp"

namespace pts::tabu {

class FrequencyMemory {
 public:
  explicit FrequencyMemory(std::size_t num_items) : counts_(num_items, 0) {}

  /// Record the current solution for one iteration.
  void record(const mkp::Solution& solution) {
    ++total_iterations_;
    const std::size_t n = counts_.size();
    for (std::size_t j = 0; j < n; ++j) {
      if (solution.contains(j)) ++counts_[j];
    }
  }

  [[nodiscard]] std::uint64_t count(std::size_t j) const { return counts_[j]; }
  [[nodiscard]] std::uint64_t total_iterations() const { return total_iterations_; }

  /// Fraction of recorded iterations item j was at 1 (0 when nothing recorded).
  [[nodiscard]] double frequency(std::size_t j) const {
    return total_iterations_ == 0
               ? 0.0
               : static_cast<double>(counts_[j]) / static_cast<double>(total_iterations_);
  }

  [[nodiscard]] std::size_t num_items() const { return counts_.size(); }

  void reset() {
    total_iterations_ = 0;
    for (auto& c : counts_) c = 0;
  }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_iterations_ = 0;
};

}  // namespace pts::tabu
