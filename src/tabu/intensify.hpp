#pragma once
// The two intensification procedures of §3.2.
//
// Swap intensification: starting from the best solution of the last local-
// search loop, exchange a selected item i for an unselected item j with
// c_j > c_i whenever the exchange stays feasible; every accepted exchange
// strictly improves the objective. Applied to fixpoint.
//
// Strategic oscillation: deliberately add items beyond the feasibility
// boundary (at most `depth` of them — the paper's cost-control device: "we
// have limited the number of explored infeasible solutions by limiting the
// depth of the search path in the infeasible domain"), then project back by
// dropping the items with the worst aggregate-weight/profit ratio, and
// finally refill greedily.

#include <cstddef>
#include <cstdint>

#include "mkp/solution.hpp"
#include "util/rng.hpp"

namespace pts::tabu {

struct IntensifyStats {
  std::uint64_t swaps = 0;
  std::uint64_t oscillation_adds = 0;
  std::uint64_t oscillation_drops = 0;
};

/// Applies improving feasible (i -> j) exchanges to fixpoint; returns the
/// number of exchanges applied. Feasible input stays feasible; the objective
/// never decreases.
std::size_t swap_intensify(mkp::Solution& x, IntensifyStats* stats = nullptr);

/// One oscillation excursion of at most `depth` infeasible adds, then
/// projection + greedy refill. The result is always feasible. The objective
/// may decrease (that is the point — the projection can land elsewhere),
/// so callers keep their own incumbent.
void oscillation_intensify(mkp::Solution& x, std::size_t depth, Rng& rng,
                           IntensifyStats* stats = nullptr);

}  // namespace pts::tabu
