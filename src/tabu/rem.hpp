#pragma once
// Reverse Elimination Method (Dammeyer & Voss), the running-list tabu
// management the paper cites — and criticizes for its per-iteration overhead
// proportional to the number of executed moves. Implemented as an ablation
// comparator (bench_ablate_dynamic) so that criticism is measurable.
//
// Idea: a single-item flip is forbidden exactly when it would recreate a
// previously visited solution. Walking the move history backwards while
// maintaining the residual symmetric difference ("residual cancellation
// sequence"), every point where the residual shrinks to one item marks that
// item as forbidden for the next move.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace pts::tabu {

class ReverseElimination {
 public:
  explicit ReverseElimination(std::size_t num_items);

  /// Append one executed move (the items it flipped, in any order).
  void record_move(std::span<const std::size_t> flipped);

  /// Recompute the forbidden set by the backward RCS walk.
  /// Cost: O(total flips recorded so far) — intentionally so (see above).
  void compute_forbidden();

  [[nodiscard]] bool is_forbidden(std::size_t j) const { return forbidden_[j]; }

  [[nodiscard]] std::size_t running_list_moves() const { return moves_.size(); }
  [[nodiscard]] std::uint64_t flips_scanned_total() const { return flips_scanned_; }
  [[nodiscard]] std::size_t forbidden_count() const;

  void clear();

 private:
  std::size_t num_items_;
  std::vector<std::vector<std::size_t>> moves_;
  std::vector<bool> forbidden_;
  std::vector<bool> residual_;      // scratch for the backward walk
  std::uint64_t flips_scanned_ = 0;
};

}  // namespace pts::tabu
