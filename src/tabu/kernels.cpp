#include "tabu/kernels.hpp"

#include <algorithm>

#include "obs/counters.hpp"

namespace pts::tabu::kernels {

FitScore fit_and_score(const mkp::Solution& x, std::size_t j) {
  const mkp::Instance& inst = x.instance();
  if (inst.min_col_weight(j) > x.min_slack()) {  // O(1) reject
    obs::bump(obs::Counter::kPruneEarlyOuts);
    return {};
  }
  obs::bump(obs::Counter::kFitScoreCalls);
  const double* col = inst.weights_col(j).data();
  const double* loads = x.loads().data();
  const double* caps = inst.capacities().data();
  const double* inv = x.inv_slack().data();
  const std::size_t m = inst.num_constraints();
  // Two latency-hiding tricks on top of the fused single pass:
  //  - multiply by the precomputed floored reciprocal slack
  //    (Solution::inv_slack) instead of dividing — slacks are loop-invariant
  //    across a whole candidate scan, and divisions dominate otherwise;
  //  - four independent accumulator chains, because a single serial
  //    `sum += w * inv` chain is bounded by FP-add latency (~4 cycles per
  //    constraint), not by throughput.
  // Feasibility comparisons are unchanged from the scalar path (same
  // `load + w > cap` form, ascending i, early-out on the first violation).
  // A zero weight contributes exactly +0.0, so the scalar path's explicit
  // w == 0 skip needs no branch here.
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 3 < m; i += 4) {
    if (loads[i] + col[i] > caps[i]) return {};
    if (loads[i + 1] + col[i + 1] > caps[i + 1]) return {};
    if (loads[i + 2] + col[i + 2] > caps[i + 2]) return {};
    if (loads[i + 3] + col[i + 3] > caps[i + 3]) return {};
    s0 += col[i] * inv[i];
    s1 += col[i + 1] * inv[i + 1];
    s2 += col[i + 2] * inv[i + 2];
    s3 += col[i + 3] * inv[i + 3];
  }
  for (; i < m; ++i) {
    if (loads[i] + col[i] > caps[i]) return {};
    s0 += col[i] * inv[i];
  }
  const double scaled_weight = (s0 + s1) + (s2 + s3);
  if (scaled_weight == 0.0) {
    return {true, std::numeric_limits<double>::infinity()};
  }
  return {true, inst.profit(j) / scaled_weight};
}

FitScore fit_and_score_reference(const mkp::Solution& x, std::size_t j) {
  const mkp::Instance& inst = x.instance();
  const std::size_t m = inst.num_constraints();
  // Pass 1: the pre-mirror Solution::fits — stride-n reads of column j.
  for (std::size_t i = 0; i < m; ++i) {
    if (x.load(i) + inst.weight(i, j) > inst.capacity(i)) return {};
  }
  // Pass 2: the pre-mirror MoveKernel::add_score — a second strided sweep.
  double scaled_weight = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double w = inst.weight(i, j);
    if (w == 0.0) continue;
    const double slack = x.slack(i);
    if (slack <= 0.0) return {true, 0.0};
    scaled_weight += w / std::max(slack, kSlackFloor);
  }
  if (scaled_weight == 0.0) {
    return {true, std::numeric_limits<double>::infinity()};
  }
  return {true, inst.profit(j) / scaled_weight};
}

}  // namespace pts::tabu::kernels
