#include "tabu/kernels.hpp"

#include <algorithm>

#include "obs/counters.hpp"
#include "tabu/kernels_detail.hpp"

namespace pts::tabu::kernels {

namespace detail {

FitScore fit_and_score_scalar_body(const ScanCtx& ctx, std::size_t j) {
  const double* col = ctx.mirror + j * ctx.stride;
  const double* loads = ctx.loads;
  const double* caps = ctx.caps;
  const double* inv = ctx.inv;
  const std::size_t m = ctx.m;
  // Two latency-hiding tricks on top of the fused single pass:
  //  - multiply by the precomputed floored reciprocal slack
  //    (Solution::inv_slack) instead of dividing — slacks are loop-invariant
  //    across a whole candidate scan, and divisions dominate otherwise;
  //  - four independent accumulator chains, because a single serial
  //    `sum += w * inv` chain is bounded by FP-add latency (~4 cycles per
  //    constraint), not by throughput.
  // Feasibility comparisons are unchanged from the scalar path (same
  // `load + w > cap` form, ascending i, early-out on the first violation).
  // A zero weight contributes exactly +0.0, so the scalar path's explicit
  // w == 0 skip needs no branch here.
  //
  // The vector bodies (kernels_simd.cpp) replicate this accumulation tree
  // lane-for-lane (chain s_k == vector lane k, scalar tail into s0, final
  // (s0+s1)+(s2+s3) reduction), so their results are bitwise equal.
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 3 < m; i += 4) {
    if (loads[i] + col[i] > caps[i]) return {};
    if (loads[i + 1] + col[i + 1] > caps[i + 1]) return {};
    if (loads[i + 2] + col[i + 2] > caps[i + 2]) return {};
    if (loads[i + 3] + col[i + 3] > caps[i + 3]) return {};
    s0 += col[i] * inv[i];
    s1 += col[i + 1] * inv[i + 1];
    s2 += col[i + 2] * inv[i + 2];
    s3 += col[i + 3] * inv[i + 3];
  }
  for (; i < m; ++i) {
    if (loads[i] + col[i] > caps[i]) return {};
    s0 += col[i] * inv[i];
  }
  return finish_score(ctx.profits[j], s0, s1, s2, s3);
}

}  // namespace detail

namespace {

detail::ScanBody pick_body(simd::Kind kind) {
  switch (kind) {
#if PTS_HAVE_AVX2_KERNELS
    case simd::Kind::kAvx2:
      return detail::fit_and_score_avx2_body;
#endif
#if PTS_HAVE_NEON_KERNELS
    case simd::Kind::kNeon:
      return detail::fit_and_score_neon_body;
#endif
    default:
      return detail::fit_and_score_scalar_body;
  }
}

// The certain-fit fast path is a vector-body feature: the scalar body is
// the frozen bitwise reference (and the benchmark's fused-scalar baseline),
// so kScalar gets no score-only variant and always runs the checked body.
detail::ScanBody pick_score_only(simd::Kind kind) {
  switch (kind) {
#if PTS_HAVE_AVX2_KERNELS
    case simd::Kind::kAvx2:
      return detail::score_only_avx2_body;
#endif
#if PTS_HAVE_NEON_KERNELS
    case simd::Kind::kNeon:
      return detail::score_only_neon_body;
#endif
    default:
      return nullptr;
  }
}

}  // namespace

AddScan::AddScan(const mkp::Solution& x, simd::Kind kind)
    : inst_(&x.instance()),
      ctx_(detail::make_scan_ctx(x)),
      checked_(pick_body(kind)),
      score_only_(pick_score_only(kind)),
      min_slack_(x.min_slack()) {}

FitScore AddScan::operator()(std::size_t j) const {
  if (inst_->min_col_weight(j) > min_slack_) {  // O(1) reject
    obs::bump(obs::Counter::kPruneEarlyOuts);
    return {};
  }
  obs::bump(obs::Counter::kFitScoreCalls);
  if (score_only_ != nullptr && inst_->max_col_weight(j) <= min_slack_) {
    return score_only_(ctx_, j);  // O(1) accept: no feasibility lanes
  }
  return checked_(ctx_, j);
}

FitScore fit_and_score(const mkp::Solution& x, std::size_t j) {
  if (prune_add_candidate(x, j)) {  // O(1) reject
    obs::bump(obs::Counter::kPruneEarlyOuts);
    return {};
  }
  obs::bump(obs::Counter::kFitScoreCalls);
  return pick_body(simd::active())(detail::make_scan_ctx(x), j);
}

FitScore fit_and_score_scalar(const mkp::Solution& x, std::size_t j) {
  if (prune_add_candidate(x, j)) {
    obs::bump(obs::Counter::kPruneEarlyOuts);
    return {};
  }
  obs::bump(obs::Counter::kFitScoreCalls);
  return detail::fit_and_score_scalar_body(detail::make_scan_ctx(x), j);
}

FitScore fit_and_score_vector(const mkp::Solution& x, std::size_t j, simd::Kind kind) {
  if (prune_add_candidate(x, j)) {
    obs::bump(obs::Counter::kPruneEarlyOuts);
    return {};
  }
  obs::bump(obs::Counter::kFitScoreCalls);
  return pick_body(kind)(detail::make_scan_ctx(x), j);
}

FitScore fit_and_score_reference(const mkp::Solution& x, std::size_t j) {
  const mkp::Instance& inst = x.instance();
  const std::size_t m = inst.num_constraints();
  // Pass 1: the pre-mirror Solution::fits — stride-n reads of column j.
  for (std::size_t i = 0; i < m; ++i) {
    if (x.load(i) + inst.weight(i, j) > inst.capacity(i)) return {};
  }
  // Pass 2: the pre-mirror MoveKernel::add_score — a second strided sweep.
  double scaled_weight = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double w = inst.weight(i, j);
    if (w == 0.0) continue;
    const double slack = x.slack(i);
    if (slack <= 0.0) return {true, 0.0};
    scaled_weight += w / std::max(slack, kSlackFloor);
  }
  if (scaled_weight == 0.0) {
    return {true, std::numeric_limits<double>::infinity()};
  }
  return {true, inst.profit(j) / scaled_weight};
}

}  // namespace pts::tabu::kernels
