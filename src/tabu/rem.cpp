#include "tabu/rem.hpp"

#include "util/check.hpp"

namespace pts::tabu {

ReverseElimination::ReverseElimination(std::size_t num_items)
    : num_items_(num_items),
      forbidden_(num_items, false),
      residual_(num_items, false) {}

void ReverseElimination::record_move(std::span<const std::size_t> flipped) {
  moves_.emplace_back(flipped.begin(), flipped.end());
}

void ReverseElimination::compute_forbidden() {
  for (std::size_t j = 0; j < num_items_; ++j) forbidden_[j] = false;
  if (moves_.empty()) return;

  // residual_ holds the symmetric difference between the current solution
  // and the solution before move k, for decreasing k. Track its size and the
  // xor of member indices: when the size is 1, the xor IS the lone member.
  for (std::size_t j = 0; j < num_items_; ++j) residual_[j] = false;
  std::size_t residual_size = 0;
  std::size_t residual_xor = 0;

  for (std::size_t k = moves_.size(); k-- > 0;) {
    for (std::size_t j : moves_[k]) {
      PTS_DCHECK(j < num_items_);
      ++flips_scanned_;
      if (residual_[j]) {
        residual_[j] = false;
        --residual_size;
      } else {
        residual_[j] = true;
        ++residual_size;
      }
      residual_xor ^= j;
    }
    if (residual_size == 1) forbidden_[residual_xor] = true;
  }
}

std::size_t ReverseElimination::forbidden_count() const {
  std::size_t count = 0;
  for (bool f : forbidden_) count += f ? 1 : 0;
  return count;
}

void ReverseElimination::clear() {
  moves_.clear();
  for (std::size_t j = 0; j < num_items_; ++j) forbidden_[j] = false;
}

}  // namespace pts::tabu
