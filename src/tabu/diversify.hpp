#pragma once
// Long-term-memory diversification (§3.3): rebuild the working solution so
// that chronically present items (frequency above `high_frequency`) are
// forced out and chronically absent items (below `low_frequency`) are forced
// in, both held tabu for `hold` iterations so the search actually stays in
// the neglected region for a while before normal conditions resume.

#include <cstddef>
#include <cstdint>

#include "mkp/solution.hpp"
#include "tabu/history.hpp"
#include "tabu/tabu_list.hpp"

namespace pts::tabu {

struct DiversifyConfig {
  double high_frequency = 0.8;
  double low_frequency = 0.2;
  std::size_t hold = 25;
};

struct DiversifyOutcome {
  std::size_t forced_in = 0;
  std::size_t forced_out = 0;
};

/// Rebuilds `x` (always feasible on return) and installs the tabu holds.
/// `iter` is the engine's current iteration counter.
DiversifyOutcome diversify(mkp::Solution& x, const FrequencyMemory& history,
                           const DiversifyConfig& config, TabuList& tabu,
                           std::uint64_t iter);

}  // namespace pts::tabu
