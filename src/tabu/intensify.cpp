#include "tabu/intensify.hpp"

#include <limits>

#include "bounds/greedy.hpp"
#include "util/check.hpp"

namespace pts::tabu {

namespace {

/// Would dropping `out` and adding `in` keep every constraint satisfied?
bool exchange_feasible(const mkp::Solution& x, std::size_t out, std::size_t in) {
  const auto& inst = x.instance();
  const std::size_t m = inst.num_constraints();
  for (std::size_t i = 0; i < m; ++i) {
    const double load = x.load(i) - inst.weight(i, out) + inst.weight(i, in);
    if (load > inst.capacity(i)) return false;
  }
  return true;
}

}  // namespace

std::size_t swap_intensify(mkp::Solution& x, IntensifyStats* stats) {
  const auto& inst = x.instance();
  const std::size_t n = inst.num_items();
  std::size_t applied = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t out = 0; out < n && !changed; ++out) {
      if (!x.contains(out)) continue;
      for (std::size_t in = 0; in < n; ++in) {
        if (x.contains(in)) continue;
        if (inst.profit(in) <= inst.profit(out)) continue;
        if (!exchange_feasible(x, out, in)) continue;
        x.drop(out);
        x.add(in);
        ++applied;
        changed = true;
        break;
      }
    }
  }
  if (stats) stats->swaps += applied;
  return applied;
}

void oscillation_intensify(mkp::Solution& x, std::size_t depth, Rng& rng,
                           IntensifyStats* stats) {
  const auto& inst = x.instance();
  const std::size_t n = inst.num_items();
  const std::size_t before = x.cardinality();

  // Excursion: up to `depth` adds by profit density, feasibility ignored.
  // A pinch of randomness in the pick keeps repeated excursions from
  // retracing the same path.
  for (std::size_t step = 0; step < depth; ++step) {
    std::size_t best = n;
    double best_key = -std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < n; ++j) {
      if (x.contains(j)) continue;
      const double key = inst.profit_density(j) * (0.9 + 0.2 * rng.uniform01());
      if (key > best_key) {
        best_key = key;
        best = j;
      }
    }
    if (best == n) break;
    x.add(best);
  }
  if (stats) stats->oscillation_adds += x.cardinality() - before;

  // Projection back onto the feasible region, then refill.
  const std::size_t peak = x.cardinality();
  bounds::repair_to_feasible(x);
  if (stats) stats->oscillation_drops += peak - x.cardinality();
  bounds::greedy_fill(x);
  PTS_DCHECK(x.is_feasible());
}

}  // namespace pts::tabu
