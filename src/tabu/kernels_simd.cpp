// Vector bodies for fit_and_score (DESIGN.md "Runtime SIMD dispatch").
//
// Bit-compatibility contract with the scalar fused kernel, term by term:
//
//   * the scalar body keeps FOUR independent accumulator chains s0..s3 with
//     chain k summing terms col[i+k]*inv[i+k] of each full group of 4 — an
//     AVX2 4-lane accumulator IS that set of chains (lane k == chain s_k),
//     and two NEON 2-lane accumulators split them pairwise ((s0,s1),(s2,s3));
//   * multiply and add stay separate instructions (no FMA contraction — the
//     scalar TU is compiled without -ffast-math and never fuses either);
//   * the tail (m mod 4 trailing constraints) is accumulated SCALARLY into
//     s0 in ascending order, exactly like the scalar tail loop. The padded
//     mirror still buys the tail a full-width FEASIBILITY compare: pad lanes
//     carry weight +0.0 and capacity +inf, so `0 + 0 > inf` never fires and
//     the vector verdict equals the scalar early-out verdict;
//   * the reduction is the same (s0+s1)+(s2+s3) tree (detail::finish_score).
//
// A violated group makes both paths return the same zero-initialized
// FitScore, so mid-group early-out asymmetry (scalar stops at the first
// violating lane, the AVX2 body tests two groups at a time, NEON one) is
// unobservable — early-out granularity is a performance knob only.
//
// The score_only_* bodies are the certain-fit fast path (kernels.hpp
// AddScan): when the caller has proven feasibility from the
// max_col_weight <= min_slack bound, the feasibility lanes are dead weight
// and only the accumulation tree runs. The tree is IDENTICAL (same chains,
// same tail, same reduction), so the score is bitwise equal to what the
// checked body would have produced — the fast path can never change a
// trajectory, only the time it takes.
//
// The AVX2 bodies carry a per-function target attribute instead of the TU
// being compiled with -mavx2, so portable builds still contain them and
// simd::active() (which consults the CPUID probe) gates execution at
// runtime. NEON is architecturally baseline on AArch64 — no attribute.

#include "tabu/kernels_detail.hpp"

#if PTS_HAVE_AVX2_KERNELS
#include <immintrin.h>
#endif
#if PTS_HAVE_NEON_KERNELS
#include <arm_neon.h>
#endif

namespace pts::tabu::kernels::detail {

#if PTS_HAVE_AVX2_KERNELS

__attribute__((target("avx2"))) FitScore fit_and_score_avx2_body(
    const ScanCtx& ctx, std::size_t j) {
  const double* col = ctx.mirror + j * ctx.stride;
  const double* loads = ctx.loads;
  const double* caps = ctx.caps;
  const double* inv = ctx.inv;
  const std::size_t m = ctx.m;
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  // Paired groups: OR the two violation masks and branch once per 8
  // constraints. Bench states are dominated by items whose whole column is
  // feasible (full scans), so per-group movemask+branch latency is the main
  // cost the vector path still pays; the accumulator adds stay in the same
  // group order, so the chains are unchanged. Items violating in the first
  // group of a pair scan at most 4 extra constraints before exiting.
  for (; i + 7 < m; i += 8) {
    const __m256d w0 = _mm256_loadu_pd(col + i);
    const __m256d w1 = _mm256_loadu_pd(col + i + 4);
    const __m256d over0 = _mm256_cmp_pd(
        _mm256_add_pd(_mm256_loadu_pd(loads + i), w0),
        _mm256_loadu_pd(caps + i), _CMP_GT_OQ);
    const __m256d over1 = _mm256_cmp_pd(
        _mm256_add_pd(_mm256_loadu_pd(loads + i + 4), w1),
        _mm256_loadu_pd(caps + i + 4), _CMP_GT_OQ);
    if (_mm256_movemask_pd(_mm256_or_pd(over0, over1)) != 0) return {};
    acc = _mm256_add_pd(acc, _mm256_mul_pd(w0, _mm256_loadu_pd(inv + i)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(w1, _mm256_loadu_pd(inv + i + 4)));
  }
  for (; i + 3 < m; i += 4) {
    const __m256d w = _mm256_loadu_pd(col + i);
    const __m256d load = _mm256_loadu_pd(loads + i);
    const __m256d cap = _mm256_loadu_pd(caps + i);
    // Same ordered-quiet `load + w > cap` compare as the scalar body; any
    // set lane means some constraint in the group is violated.
    const __m256d over = _mm256_cmp_pd(_mm256_add_pd(load, w), cap, _CMP_GT_OQ);
    if (_mm256_movemask_pd(over) != 0) return {};
    // Multiply THEN add as two instructions — contracting to an FMA would
    // skip the intermediate rounding the scalar chains perform.
    acc = _mm256_add_pd(acc, _mm256_mul_pd(w, _mm256_loadu_pd(inv + i)));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double s0 = lanes[0];
  const double s1 = lanes[1], s2 = lanes[2], s3 = lanes[3];
  if (i < m) {
    // Tail group: full-width feasibility over the padded lanes (pads can
    // never violate), then the scalar-ordered accumulation into chain s0.
    const __m256d w = _mm256_loadu_pd(col + i);
    const __m256d load = _mm256_loadu_pd(loads + i);
    const __m256d cap = _mm256_loadu_pd(caps + i);
    if (_mm256_movemask_pd(
            _mm256_cmp_pd(_mm256_add_pd(load, w), cap, _CMP_GT_OQ)) != 0) {
      return {};
    }
    for (; i < m; ++i) s0 += col[i] * inv[i];
  }
  return finish_score(ctx.profits[j], s0, s1, s2, s3);
}

__attribute__((target("avx2"))) FitScore score_only_avx2_body(
    const ScanCtx& ctx, std::size_t j) {
  const double* col = ctx.mirror + j * ctx.stride;
  const double* inv = ctx.inv;
  const std::size_t m = ctx.m;
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  // Same group order and mul-then-add chains as the checked body — only the
  // compare/movemask/branch per group is gone.
  for (; i + 7 < m; i += 8) {
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_loadu_pd(col + i),
                                           _mm256_loadu_pd(inv + i)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_loadu_pd(col + i + 4),
                                           _mm256_loadu_pd(inv + i + 4)));
  }
  for (; i + 3 < m; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_loadu_pd(col + i),
                                           _mm256_loadu_pd(inv + i)));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double s0 = lanes[0];
  const double s1 = lanes[1], s2 = lanes[2], s3 = lanes[3];
  for (; i < m; ++i) s0 += col[i] * inv[i];
  return finish_score(ctx.profits[j], s0, s1, s2, s3);
}

#endif  // PTS_HAVE_AVX2_KERNELS

#if PTS_HAVE_NEON_KERNELS

FitScore fit_and_score_neon_body(const ScanCtx& ctx, std::size_t j) {
  const double* col = ctx.mirror + j * ctx.stride;
  const double* loads = ctx.loads;
  const double* caps = ctx.caps;
  const double* inv = ctx.inv;
  const std::size_t m = ctx.m;
  // Two 2-lane accumulators hold the scalar chains pairwise: acc01 = (s0,s1),
  // acc23 = (s2,s3). Group-of-4 stride matches the scalar unroll exactly.
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 3 < m; i += 4) {
    const float64x2_t w0 = vld1q_f64(col + i);
    const float64x2_t w1 = vld1q_f64(col + i + 2);
    const uint64x2_t over0 = vcgtq_f64(vaddq_f64(vld1q_f64(loads + i), w0),
                                       vld1q_f64(caps + i));
    const uint64x2_t over1 = vcgtq_f64(vaddq_f64(vld1q_f64(loads + i + 2), w1),
                                       vld1q_f64(caps + i + 2));
    if (vmaxvq_u32(vreinterpretq_u32_u64(vorrq_u64(over0, over1))) != 0) {
      return {};
    }
    acc01 = vaddq_f64(acc01, vmulq_f64(w0, vld1q_f64(inv + i)));
    acc23 = vaddq_f64(acc23, vmulq_f64(w1, vld1q_f64(inv + i + 2)));
  }
  double s0 = vgetq_lane_f64(acc01, 0);
  const double s1 = vgetq_lane_f64(acc01, 1);
  const double s2 = vgetq_lane_f64(acc23, 0);
  const double s3 = vgetq_lane_f64(acc23, 1);
  // Tail: identical to the scalar tail (check-then-accumulate, chain s0).
  for (; i < m; ++i) {
    if (loads[i] + col[i] > caps[i]) return {};
    s0 += col[i] * inv[i];
  }
  return finish_score(ctx.profits[j], s0, s1, s2, s3);
}

FitScore score_only_neon_body(const ScanCtx& ctx, std::size_t j) {
  const double* col = ctx.mirror + j * ctx.stride;
  const double* inv = ctx.inv;
  const std::size_t m = ctx.m;
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 3 < m; i += 4) {
    acc01 = vaddq_f64(acc01, vmulq_f64(vld1q_f64(col + i),
                                       vld1q_f64(inv + i)));
    acc23 = vaddq_f64(acc23, vmulq_f64(vld1q_f64(col + i + 2),
                                       vld1q_f64(inv + i + 2)));
  }
  double s0 = vgetq_lane_f64(acc01, 0);
  const double s1 = vgetq_lane_f64(acc01, 1);
  const double s2 = vgetq_lane_f64(acc23, 0);
  const double s3 = vgetq_lane_f64(acc23, 1);
  for (; i < m; ++i) s0 += col[i] * inv[i];
  return finish_score(ctx.profits[j], s0, s1, s2, s3);
}

#endif  // PTS_HAVE_NEON_KERNELS

#if !PTS_HAVE_AVX2_KERNELS && !PTS_HAVE_NEON_KERNELS
// Keep the TU non-empty on architectures with no vector body; the
// dispatcher falls back to the scalar body via pick_body().
namespace {
[[maybe_unused]] constexpr int kNoVectorKernels = 0;
}
#endif

}  // namespace pts::tabu::kernels::detail
