#pragma once
// A "strategy" in the paper's sense (§2, §4.2): the parameter set the master
// hands a slave that determines its search behaviour. The three tuned values
// are exactly the paper's: tabu list size, maximum consecutive drops, and
// local-search patience.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "util/cancel.hpp"

namespace pts::tabu {

struct Strategy {
  std::size_t tabu_tenure = 7;  ///< Lt_length: iterations a dropped item stays tabu
  std::size_t nb_drop = 1;      ///< max consecutive drops performed in one move
  std::size_t nb_local = 50;    ///< iterations without improving X* before intensifying
  /// The paper's fourth example of a strategy element: "the number of
  /// neighbor solutions evaluated at each move". 0 evaluates every fitting
  /// candidate; k > 0 evaluates only k, scanned from a random offset —
  /// cheaper and noisier moves.
  std::size_t nb_candidates = 0;

  bool operator==(const Strategy&) const = default;

  [[nodiscard]] std::string to_string() const {
    return "{tenure=" + std::to_string(tabu_tenure) +
           ", nb_drop=" + std::to_string(nb_drop) +
           ", nb_local=" + std::to_string(nb_local) +
           (nb_candidates ? ", nb_cand=" + std::to_string(nb_candidates) : "") + "}";
  }
};

/// Bounds within which strategies are generated and retuned. The master's
/// SGP clamps every adjustment into this box.
struct StrategyBounds {
  std::size_t min_tenure = 3;
  std::size_t max_tenure = 60;
  std::size_t min_drop = 1;
  std::size_t max_drop = 8;
  std::size_t min_local = 10;
  std::size_t max_local = 200;
  /// Candidate-sampling draw for random strategies: with probability 1/2 a
  /// strategy evaluates all candidates (0), else k in [min, max].
  std::size_t min_candidates = 8;
  std::size_t max_candidates = 64;
};

enum class IntensificationKind : std::uint8_t {
  kNone,                   ///< ablation baseline: skip the phase entirely
  kSwap,                   ///< §3.2 "intensification by swapping components"
  kStrategicOscillation,   ///< §3.2 depth-limited infeasible excursion
};

enum class TenureControl : std::uint8_t {
  kFixed,               ///< static tenure from the strategy (paper's slaves)
  kReverseElimination,  ///< REM running list (Dammeyer–Voss comparator)
  kReactive,            ///< Battiti–Tecchiolli hash-reaction comparator
};

/// Everything a single sequential TS run needs besides the instance, the
/// initial solution and an Rng.
struct TsParams {
  Strategy strategy;
  std::size_t nb_div = 4;   ///< outer loop count (diversification rounds)
  std::size_t nb_int = 3;   ///< intensifications per diversification round
  std::size_t b_best = 5;   ///< elite pool capacity (B best solutions)
  IntensificationKind intensification = IntensificationKind::kSwap;
  std::size_t oscillation_depth = 5;  ///< max adds beyond feasibility (§3.2)
  TenureControl tenure_control = TenureControl::kFixed;

  // Long-term-memory diversification thresholds (§3.3): items at 1 more than
  // `high_frequency` of iterations are forced out; less than `low_frequency`
  // forced in. Forced components stay tabu for `diversify_hold` iterations.
  double high_frequency = 0.8;
  double low_frequency = 0.2;
  std::size_t diversify_hold = 25;

  // Budget: the run stops at whichever limit trips first (0 = unlimited,
  // but at least one of max_moves / time must bound the run).
  std::uint64_t max_moves = 100'000;
  double time_limit_seconds = 0.0;
  std::optional<double> target_value;  ///< stop early on reaching this

  /// Cooperative stop (external cancel and/or a job deadline), polled once
  /// per inner-loop move. The default token never stops and costs one null
  /// check, so runs without a service above them pay nothing.
  CancelToken cancel;

  /// When true (default) the Nb_div outer loop restarts until the budget is
  /// exhausted, so a fixed move budget is actually consumed; when false the
  /// run ends after exactly Nb_div diversification rounds (the literal
  /// Figure-1 shape, used by the structural trace tests).
  bool run_to_budget = true;
};

}  // namespace pts::tabu
