#pragma once
// Path relinking between elite solutions — an extension in the spirit of
// the cooperative-multithread literature the paper builds on (its reference
// [11], Toulouse/Crainic/Gendreau): instead of only *reusing* the slaves'
// best solutions as starting points, actively explore the trajectory
// between two elites, where solutions sharing the structure of both often
// live. The master can relink the global best against each slave's best
// after every gather (MasterConfig::relink_elites).
//
// The walk moves from `source` toward `target` one differing component at a
// time, greedily choosing the flip that keeps the intermediate value
// highest; infeasible intermediates are evaluated through a repair copy so
// every candidate the walk reports is feasible.

#include <cstddef>

#include "mkp/solution.hpp"

namespace pts::tabu {

struct PathRelinkResult {
  mkp::Solution best;       ///< best feasible solution seen on the path
  double best_value = 0.0;  ///< == best.value()
  std::size_t path_length = 0;   ///< Hamming distance walked
  std::size_t improvements = 0;  ///< times the path's best improved
};

/// Both solutions must live on the same instance. The endpoints themselves
/// participate: the result is never worse than max(source, target) among
/// the feasible endpoints.
PathRelinkResult path_relink(const mkp::Solution& source, const mkp::Solution& target);

}  // namespace pts::tabu
