#pragma once
// The B-best pool (paper's BestSol array): each slave keeps its B best
// distinct solutions and reports them to the master, whose SGP measures the
// pool's Hamming spread to decide between intensifying and diversifying the
// slave's next strategy.

#include <cstddef>
#include <vector>

#include "mkp/solution.hpp"

namespace pts::tabu {

class ElitePool {
 public:
  explicit ElitePool(std::size_t capacity) : capacity_(capacity) {}

  /// Insert if the solution is feasible, distinct from everything pooled,
  /// and better than the current worst (or the pool has room).
  /// Returns true when inserted.
  bool offer(const mkp::Solution& solution);

  [[nodiscard]] const std::vector<mkp::Solution>& solutions() const { return pool_; }
  [[nodiscard]] std::size_t size() const { return pool_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return pool_.empty(); }

  /// Best pooled solution; pool must be non-empty.
  [[nodiscard]] const mkp::Solution& best() const;

  /// Mean pairwise Hamming distance of the pooled solutions (0 when < 2).
  /// This is the spread statistic the master's SGP consumes.
  [[nodiscard]] double mean_pairwise_hamming() const;

  void clear() { pool_.clear(); }

 private:
  std::size_t capacity_;
  std::vector<mkp::Solution> pool_;  ///< kept sorted by value, best first
};

}  // namespace pts::tabu
