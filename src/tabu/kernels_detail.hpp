#pragma once
// Internal seam between the dispatching kernels.cpp and the intrinsics TU
// (kernels_simd.cpp). Not part of the public kernels API.
//
// PTS_HAVE_AVX2_KERNELS / PTS_HAVE_NEON_KERNELS say whether this BINARY
// contains the respective vector body (a compile-time architecture fact);
// whether it may be EXECUTED is the separate runtime question simd::active()
// answers. AVX2 bodies are built with per-function target attributes, so
// portable -march builds still carry them and gate execution at runtime.

#include <cstddef>

#include "mkp/solution.hpp"
#include "tabu/kernels.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PTS_HAVE_AVX2_KERNELS 1
#else
#define PTS_HAVE_AVX2_KERNELS 0
#endif

#if defined(__aarch64__)
#define PTS_HAVE_NEON_KERNELS 1
#else
#define PTS_HAVE_NEON_KERNELS 0
#endif

namespace pts::tabu::kernels::detail {

/// Builds the per-sweep pointer bundle every body reads (kernels.hpp's
/// ScanCtx). The padded mirrors alias the unpadded spans over [0, m), so
/// scalar bodies reading through the ctx see exactly the same values.
inline ScanCtx make_scan_ctx(const mkp::Solution& x) {
  const mkp::Instance& inst = x.instance();
  ScanCtx ctx;
  ctx.mirror = inst.weights_col_padded(0).data();
  ctx.loads = x.loads_padded().data();
  ctx.caps = inst.capacities_padded().data();
  ctx.inv = x.inv_slack_padded().data();
  ctx.profits = inst.profits().data();
  ctx.m = inst.num_constraints();
  ctx.stride = inst.num_constraints_padded();
  return ctx;
}

/// Shared epilogue: the exact (s0+s1)+(s2+s3) reduction and the zero-weight
/// → +infinity score rule, identical across scalar and vector bodies.
inline FitScore finish_score(double profit, double s0, double s1, double s2,
                             double s3) {
  const double scaled_weight = (s0 + s1) + (s2 + s3);
  if (scaled_weight == 0.0) {
    return {true, std::numeric_limits<double>::infinity()};
  }
  return {true, profit / scaled_weight};
}

FitScore fit_and_score_scalar_body(const ScanCtx& ctx, std::size_t j);
#if PTS_HAVE_AVX2_KERNELS
FitScore fit_and_score_avx2_body(const ScanCtx& ctx, std::size_t j);
/// Certain-fit fast path: score accumulation only, no feasibility lanes.
/// Callers must have proven feasibility (max_col_weight <= min_slack).
FitScore score_only_avx2_body(const ScanCtx& ctx, std::size_t j);
#endif
#if PTS_HAVE_NEON_KERNELS
FitScore fit_and_score_neon_body(const ScanCtx& ctx, std::size_t j);
FitScore score_only_neon_body(const ScanCtx& ctx, std::size_t j);
#endif

}  // namespace pts::tabu::kernels::detail
