#include "tabu/engine.hpp"

#include <algorithm>

#include "bounds/greedy.hpp"
#include "obs/trace.hpp"
#include "tabu/diversify.hpp"
#include "tabu/history.hpp"
#include "tabu/rem.hpp"
#include "tabu/reactive.hpp"
#include "tabu/tabu_list.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace pts::tabu {

namespace {

/// Bundles the per-run state so the nested loops below stay readable.
class Run {
 public:
  Run(const mkp::Instance& inst, const mkp::Solution& initial, const TsParams& params,
      Rng& rng, TsTrace* trace)
      : inst_(inst),
        params_(params),
        rng_(rng),
        trace_(trace),
        kernel_(inst),
        tabu_(inst.num_items()),
        history_(inst.num_items()),
        elite_(params.b_best),
        x_(initial),
        result_{mkp::Solution(inst)} {
    PTS_CHECK_MSG(params.max_moves > 0 || params.time_limit_seconds > 0.0,
                  "the run must be bounded by moves or time");
    PTS_CHECK(params.strategy.nb_drop >= 1);
    deadline_ = params.time_limit_seconds > 0.0
                    ? Deadline::after_seconds(params.time_limit_seconds)
                    : Deadline::unbounded();
    if (params.tenure_control == TenureControl::kReverseElimination) {
      rem_.emplace(inst.num_items());
    } else if (params.tenure_control == TenureControl::kReactive) {
      reactive_.emplace(params.strategy.tabu_tenure);
    }

    // Normalize the start: feasible and maximal.
    if (!x_.is_feasible()) bounds::repair_to_feasible(x_);
    bounds::greedy_fill(x_);
    record_candidate(x_);
    if (trace_) trace_->on_start(x_.value());
  }

  TsResult finish() && {
    result_.elite = elite_.solutions();
    result_.seconds = watch_.elapsed_seconds();
    if (telemetry_on_) {
      // Fold the kernel-level tallies (kept in MoveStats for the ablation
      // reports) into the uniform counter block so downstream merging only
      // has to deal with obs::Counters.
      auto& c = result_.counters;
      c[obs::Counter::kDrops] += result_.move_stats.drops;
      c[obs::Counter::kAdds] += result_.move_stats.adds;
      c[obs::Counter::kForcedDrops] += result_.move_stats.forced_drops;
      c[obs::Counter::kTabuRejections] += result_.move_stats.tabu_blocked_adds;
      c[obs::Counter::kAspirationAccepts] += result_.move_stats.aspiration_hits;
    }
    result_.final_tenure = reactive_ ? reactive_->current_tenure()
                                     : params_.strategy.tabu_tenure;
    if (rem_) result_.rem_flips_scanned = rem_->flips_scanned_total();
    if (reactive_) {
      result_.reactive_repetitions = reactive_->repetitions();
      result_.reactive_escapes = reactive_->escapes_triggered();
    }
    return std::move(result_);
  }

  void execute() {
    std::size_t div_round = 0;
    do {
      for (std::size_t d = 0; d < params_.nb_div; ++d, ++div_round) {
        if (trace_) trace_->on_outer_round(div_round);
        for (std::size_t int_round = 0; int_round < params_.nb_int; ++int_round) {
          if (trace_) trace_->on_inner_round(div_round, int_round);
          local_search_loop();
          if (stopped()) return;
          intensification_phase();
          if (stopped()) return;
        }
        diversification_phase();
        if (stopped()) return;
      }
    } while (params_.run_to_budget);
  }

 private:
  [[nodiscard]] bool stopped() {
    if (result_.reached_target) return true;
    if (params_.max_moves > 0 && result_.moves >= params_.max_moves) return true;
    if (deadline_.expired()) return true;
    if (params_.cancel.stop_requested()) return true;
    return false;
  }

  void record_candidate(const mkp::Solution& candidate) {
    elite_.offer(candidate);
    if (candidate.is_feasible() && candidate.value() > result_.best_value) {
      result_.best_value = candidate.value();
      result_.best = candidate;
      result_.improvements.emplace_back(result_.moves, candidate.value());
      if (telemetry_on_) {
        // Source is filled in by whoever owns the run (slave id / peer id);
        // the engine itself does not know which thread of the farm it is.
        result_.anytime.push_back({obs::kGlobalSource, watch_.elapsed_seconds(),
                                   result_.moves, candidate.value()});
      }
      if (params_.target_value && candidate.value() >= *params_.target_value) {
        result_.reached_target = true;
      }
    }
  }

  std::size_t effective_tenure() const {
    return reactive_ ? reactive_->current_tenure() : params_.strategy.tabu_tenure;
  }

  /// Inner loop: Drop/Add moves until Nb_local moves pass without improving
  /// the global best (Figure 1, lines 4-10).
  void local_search_loop() {
    mkp::Solution x_local = x_;
    std::size_t since_improvement = 0;
    while (since_improvement < params_.strategy.nb_local) {
      if (stopped()) return;
      ++result_.moves;
      if (telemetry_on_) ++result_.counters[obs::Counter::kMovesTried];
      const std::uint64_t iter = result_.moves;

      const auto outcome = kernel_.apply(x_, tabu_, iter, params_.strategy,
                                         effective_tenure(), result_.best_value, rng_,
                                         result_.move_stats);

      if (rem_) {
        rem_->record_move(outcome.flipped);
        rem_->compute_forbidden();
        // Forbid the single-flip reversals during exactly the next move
        // (expiry iter + 2 > iter + 1 holds only for iteration iter + 1).
        for (std::size_t j = 0; j < inst_.num_items(); ++j) {
          if (rem_->is_forbidden(j)) {
            tabu_.forbid_add(j, iter, 2);
            tabu_.forbid_drop(j, iter, 2);
          }
        }
      }
      if (reactive_) {
        reactive_->on_solution(x_.hash(), iter);
        if (reactive_->consume_escape()) escape_kick();
      }

      history_.record(x_);

      const double previous_best = result_.best_value;
      record_candidate(x_);
      const bool improved_best = result_.best_value > previous_best;
      if (telemetry_on_ && improved_best) {
        ++result_.counters[obs::Counter::kMovesImproved];
      }
      if (trace_) trace_->on_move(iter, x_.value(), improved_best);

      if (improved_best) {
        x_local = x_;
        since_improvement = 0;
      } else {
        if (x_.value() > x_local.value()) x_local = x_;
        ++since_improvement;
      }
    }
    x_ = x_local;  // intensification works from the loop's best solution
  }

  /// Figure 1, line 11: Intensification(X_local, X*).
  void intensification_phase() {
    const double value_before = x_.value();
    switch (params_.intensification) {
      case IntensificationKind::kNone:
        break;
      case IntensificationKind::kSwap:
        swap_intensify(x_, &result_.intensify_stats);
        break;
      case IntensificationKind::kStrategicOscillation:
        oscillation_intensify(x_, params_.oscillation_depth, rng_,
                              &result_.intensify_stats);
        break;
    }
    ++result_.intensifications;
    if (telemetry_on_) {
      ++result_.counters[obs::Counter::kIntensifications];
      if (params_.intensification == IntensificationKind::kStrategicOscillation) {
        ++result_.counters[obs::Counter::kOscillations];
      }
    }
    record_candidate(x_);
    if (trace_) {
      trace_->on_intensification(params_.intensification, value_before, x_.value());
    }
  }

  /// Figure 1, line 12: Diversification(History, X).
  void diversification_phase() {
    DiversifyConfig config;
    config.high_frequency = params_.high_frequency;
    config.low_frequency = params_.low_frequency;
    config.hold = params_.diversify_hold;
    const auto outcome = diversify(x_, history_, config, tabu_, result_.moves);
    ++result_.diversifications;
    if (telemetry_on_) {
      ++result_.counters[obs::Counter::kDiversifications];
      if (obs::tracer().enabled()) {
        obs::tracer().instant("diversify",
                              {{"forced_in", static_cast<double>(outcome.forced_in)},
                               {"forced_out", static_cast<double>(outcome.forced_out)}});
      }
    }
    record_candidate(x_);
    if (trace_) trace_->on_diversification(outcome.forced_in, outcome.forced_out);
  }

  /// Reactive escape: drop a random chunk of the solution and refill —
  /// Battiti's randomized kick out of an attractor.
  void escape_kick() {
    const std::size_t card = x_.cardinality();
    if (card == 0) return;
    auto selected = x_.selected_items();
    rng_.shuffle(selected);
    const std::size_t kick = 1 + rng_.index(std::max<std::size_t>(1, card / 3));
    for (std::size_t k = 0; k < kick && k < selected.size(); ++k) {
      x_.drop(selected[k]);
      tabu_.forbid_add(selected[k], result_.moves, effective_tenure());
    }
    bounds::greedy_fill(x_);
  }

  const mkp::Instance& inst_;
  const TsParams& params_;
  Rng& rng_;
  TsTrace* trace_;
  MoveKernel kernel_;
  TabuList tabu_;
  FrequencyMemory history_;
  ElitePool elite_;
  std::optional<ReverseElimination> rem_;
  std::optional<ReactiveTenure> reactive_;
  mkp::Solution x_;
  TsResult result_;
  Deadline deadline_;
  Stopwatch watch_;
  // Telemetry: one runtime check per run, not per move. The CounterScope
  // binds the thread-local sink that kernels.cpp / moves.cpp bump through to
  // this run's counter block (members initialize in declaration order, so
  // result_ exists by the time the scope captures its address).
  const bool telemetry_on_ = obs::kTelemetryCompiled && obs::telemetry_enabled();
  obs::CounterScope counter_scope_{telemetry_on_ ? &result_.counters : nullptr};
};

}  // namespace

TsResult tabu_search(const mkp::Instance& inst, const mkp::Solution& initial,
                     const TsParams& params, Rng& rng, TsTrace* trace) {
  PTS_CHECK(&initial.instance() == &inst);
  Run run(inst, initial, params, rng, trace);
  run.execute();
  return std::move(run).finish();
}

TsResult tabu_search_from_scratch(const mkp::Instance& inst, const TsParams& params,
                                  Rng& rng, TsTrace* trace) {
  const auto initial = bounds::greedy_randomized(inst, rng);
  return tabu_search(inst, initial, params, rng, trace);
}

}  // namespace pts::tabu
