#pragma once
// Branch & bound with size-reduction preprocessing: take a greedy lower
// bound, fix variables by LP reduced costs (bounds/reduction.hpp), and run
// the exact search on the residual instance only. On loosely-constrained
// instances most variables fix and the tree collapses; the FP set was
// constructed so that it does not — bench_reduction measures both.

#include "bounds/reduction.hpp"
#include "exact/branch_and_bound.hpp"

namespace pts::exact {

struct ReducedSolveStats {
  std::size_t original_variables = 0;
  std::size_t fixed_to_zero = 0;
  std::size_t fixed_to_one = 0;
  std::size_t residual_variables = 0;
  double greedy_lower_bound = 0.0;
  double lp_objective = 0.0;
  std::uint64_t nodes = 0;  ///< B&B nodes on the residual
};

/// Same contract as branch_and_bound(); `stats` (optional) reports how much
/// of the instance the reduction removed. The returned solution and
/// objective are on the ORIGINAL instance.
BnbResult branch_and_bound_with_reduction(const mkp::Instance& inst,
                                          const BnbOptions& options = {},
                                          ReducedSolveStats* stats = nullptr);

}  // namespace pts::exact
