#pragma once
// Depth-first branch & bound — the "exact approach" the paper contrasts with
// (Section 1). Supplies ground truth for the FP-style benchmark set
// (n up to ~105) and optimality certificates in the test suite.
//
// Node bound: current profit + min over constraints of the continuous
// single-knapsack bound on the free items against the residual capacity
// (per-constraint density orders precomputed once).

#include <cstdint>
#include <optional>

#include "mkp/instance.hpp"
#include "mkp/solution.hpp"
#include "util/timer.hpp"

namespace pts::exact {

struct BnbOptions {
  double time_limit_seconds = 60.0;        ///< <= 0 means unbounded
  std::uint64_t node_limit = 50'000'000;   ///< safety valve
  std::optional<double> initial_lower_bound;  ///< warm start (e.g. greedy value)
};

struct BnbResult {
  mkp::Solution best;
  double objective = 0.0;
  bool proven_optimal = false;  ///< false when a limit stopped the search
  std::uint64_t nodes = 0;
  double seconds = 0.0;
};

BnbResult branch_and_bound(const mkp::Instance& inst, const BnbOptions& options = {});

}  // namespace pts::exact
