#pragma once
// Dynamic programming for the single-constraint 0-1 knapsack (the other
// exact method named in the paper's introduction). Requires m == 1 and
// integer-valued weights; complexity O(n * b).

#include "mkp/instance.hpp"
#include "mkp/solution.hpp"

namespace pts::exact {

struct DpResult {
  mkp::Solution best;
  double optimum = 0.0;
};

/// Aborts (PTS_CHECK) when the instance has m != 1, non-integer weights, or
/// a capacity too large to table (> 50 million cells).
DpResult dp_single_knapsack(const mkp::Instance& inst);

}  // namespace pts::exact
