#pragma once
// Exhaustive enumeration oracle. Walks all 2^n assignments in Gray-code
// order so each step flips exactly one item (O(m) incremental update).
// Strictly a test/validation tool — guarded to n <= 30.

#include "mkp/instance.hpp"
#include "mkp/solution.hpp"

namespace pts::exact {

struct BruteForceResult {
  mkp::Solution best;
  double optimum = 0.0;
  std::uint64_t assignments_visited = 0;
};

/// Aborts (PTS_CHECK) when inst.num_items() > 30.
BruteForceResult brute_force(const mkp::Instance& inst);

}  // namespace pts::exact
