#include "exact/branch_and_bound.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "bounds/dantzig.hpp"
#include "util/check.hpp"

namespace pts::exact {

namespace {

constexpr double kEps = 1e-9;

class Searcher {
 public:
  Searcher(const mkp::Instance& inst, const BnbOptions& options)
      : inst_(inst),
        options_(options),
        deadline_(options.time_limit_seconds > 0.0
                      ? Deadline::after_seconds(options.time_limit_seconds)
                      : Deadline::unbounded()),
        current_(inst),
        best_(inst),
        fixed_(inst.num_items(), false) {
    // Branch on the most profit-dense items first: strong bounds early.
    branch_order_.resize(inst.num_items());
    std::iota(branch_order_.begin(), branch_order_.end(), std::size_t{0});
    std::stable_sort(branch_order_.begin(), branch_order_.end(),
                     [&](std::size_t a, std::size_t b) {
                       return inst.profit_density(a) > inst.profit_density(b);
                     });
    // Per-constraint density orders for the node bound.
    constraint_orders_.reserve(inst.num_constraints());
    for (std::size_t i = 0; i < inst.num_constraints(); ++i) {
      constraint_orders_.push_back(
          bounds::density_order(inst.profits(), inst.weights_row(i)));
    }
    best_value_ = options.initial_lower_bound.value_or(0.0);
  }

  BnbResult run() {
    Stopwatch watch;
    aborted_ = false;
    dive(0);
    BnbResult result{std::move(best_), best_value_, !aborted_, nodes_,
                     watch.elapsed_seconds()};
    // If no solution beat the warm-start bound, report the empty solution's
    // actual value rather than the warm-start number.
    if (!found_any_ && !options_.initial_lower_bound.has_value()) {
      result.objective = 0.0;
    }
    return result;
  }

 private:
  /// min over constraints of (continuous bound over free items).
  double node_bound() const {
    double bound = std::numeric_limits<double>::infinity();
    const std::size_t n = inst_.num_items();
    for (std::size_t i = 0; i < inst_.num_constraints(); ++i) {
      double remaining = current_.slack(i);
      if (remaining < 0.0) return -std::numeric_limits<double>::infinity();
      double partial = 0.0;
      const auto row = inst_.weights_row(i);
      for (std::size_t j : constraint_orders_[i]) {
        if (fixed_[j]) continue;
        const double w = row[j];
        if (w <= remaining) {
          partial += inst_.profit(j);
          remaining -= w;
        } else {
          if (w > 0.0 && remaining > 0.0) partial += inst_.profit(j) * (remaining / w);
          break;
        }
      }
      bound = std::min(bound, partial);
      if (current_.value() + bound <= best_value_ + kEps) break;  // already pruned
      (void)n;
    }
    return current_.value() + bound;
  }

  void record_if_better() {
    if (current_.value() > best_value_ + kEps && current_.is_feasible()) {
      best_value_ = current_.value();
      best_ = current_;
      found_any_ = true;
    }
  }

  void dive(std::size_t depth) {
    if (aborted_) return;
    ++nodes_;
    if ((nodes_ & 1023U) == 0 && (deadline_.expired() || nodes_ >= options_.node_limit)) {
      aborted_ = true;
      return;
    }

    record_if_better();
    if (depth == branch_order_.size()) return;
    if (node_bound() <= best_value_ + kEps) return;

    const std::size_t item = branch_order_[depth];
    fixed_[item] = true;
    if (current_.fits(item)) {
      current_.add(item);
      dive(depth + 1);
      current_.drop(item);
    }
    dive(depth + 1);
    fixed_[item] = false;
  }

  const mkp::Instance& inst_;
  const BnbOptions& options_;
  Deadline deadline_;
  mkp::Solution current_;
  mkp::Solution best_;
  double best_value_ = 0.0;
  bool found_any_ = false;
  bool aborted_ = false;
  std::uint64_t nodes_ = 0;
  std::vector<bool> fixed_;
  std::vector<std::size_t> branch_order_;
  std::vector<std::vector<std::size_t>> constraint_orders_;
};

}  // namespace

BnbResult branch_and_bound(const mkp::Instance& inst, const BnbOptions& options) {
  Searcher searcher(inst, options);
  return searcher.run();
}

}  // namespace pts::exact
