#include "exact/reduce_and_solve.hpp"

#include "bounds/greedy.hpp"
#include "util/timer.hpp"

namespace pts::exact {

BnbResult branch_and_bound_with_reduction(const mkp::Instance& inst,
                                          const BnbOptions& options,
                                          ReducedSolveStats* stats) {
  Stopwatch watch;

  // A decent primal bound is what gives the reduced costs teeth.
  auto incumbent = bounds::greedy_construct(inst);
  const double lb = incumbent.value();

  const auto fixing = bounds::reduced_cost_fixing(inst, lb);
  const auto reduced = bounds::build_reduced(inst, fixing);

  if (stats) {
    stats->original_variables = inst.num_items();
    stats->fixed_to_zero = fixing.fixed_to_zero;
    stats->fixed_to_one = fixing.fixed_to_one;
    stats->residual_variables = reduced.free_to_original.size();
    stats->greedy_lower_bound = lb;
    stats->lp_objective = fixing.lp_objective;
    stats->nodes = 0;
  }

  if (!reduced.instance.has_value()) {
    // Everything fixed: the reduction's solution is optimal among solutions
    // strictly better than lb; keep the better of it and the incumbent.
    auto lifted = reduced.lift(inst, nullptr);
    if (lifted.value() < incumbent.value()) lifted = incumbent;
    const double objective = lifted.value();
    return BnbResult{std::move(lifted), objective,
                     /*proven_optimal=*/true, 0, watch.elapsed_seconds()};
  }

  BnbOptions residual_options = options;
  // Warm start: the incumbent restricted to free variables bounds the
  // residual search from below.
  residual_options.initial_lower_bound = lb - reduced.banked_profit;
  const auto residual_result = branch_and_bound(*reduced.instance, residual_options);
  if (stats) stats->nodes = residual_result.nodes;

  auto lifted = reduced.lift(inst, &residual_result.best);
  if (lifted.value() < incumbent.value()) lifted = std::move(incumbent);

  BnbResult result{std::move(lifted), 0.0, residual_result.proven_optimal,
                   residual_result.nodes, watch.elapsed_seconds()};
  result.objective = result.best.value();
  return result;
}

}  // namespace pts::exact
