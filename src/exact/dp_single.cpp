#include "exact/dp_single.hpp"

#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace pts::exact {

DpResult dp_single_knapsack(const mkp::Instance& inst) {
  PTS_CHECK_MSG(inst.num_constraints() == 1, "DP requires exactly one constraint");
  const std::size_t n = inst.num_items();
  const auto row = inst.weights_row(0);

  std::vector<std::size_t> weights(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double w = row[j];
    PTS_CHECK_MSG(w == std::floor(w) && w >= 0.0, "DP requires integer weights");
    weights[j] = static_cast<std::size_t>(w);
  }
  const double cap_raw = inst.capacity(0);
  const auto capacity = static_cast<std::size_t>(std::floor(cap_raw));
  PTS_CHECK_MSG((capacity + 1) * n <= 50'000'000ULL, "DP table too large");

  // value[w] = best profit with total weight exactly <= w, take[j][w] = did
  // item j enter at budget w (bit-packed per item for reconstruction).
  std::vector<double> value(capacity + 1, 0.0);
  std::vector<std::vector<bool>> take(n, std::vector<bool>(capacity + 1, false));

  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t w = weights[j];
    if (w > capacity) continue;
    const double p = inst.profit(j);
    for (std::size_t budget = capacity; budget + 1 > w; --budget) {
      const double candidate = value[budget - w] + p;
      if (candidate > value[budget]) {
        value[budget] = candidate;
        take[j][budget] = true;
      }
    }
  }

  DpResult result{mkp::Solution(inst), value[capacity]};
  std::size_t budget = capacity;
  for (std::size_t jj = n; jj-- > 0;) {
    if (take[jj][budget]) {
      result.best.add(jj);
      budget -= weights[jj];
    }
  }
  PTS_CHECK(result.best.is_feasible());
  PTS_CHECK(std::fabs(result.best.value() - result.optimum) < 1e-6);
  return result;
}

}  // namespace pts::exact
