#include "exact/brute_force.hpp"

#include <bit>

#include "util/check.hpp"

namespace pts::exact {

BruteForceResult brute_force(const mkp::Instance& inst) {
  const std::size_t n = inst.num_items();
  PTS_CHECK_MSG(n <= 30, "brute force is limited to n <= 30");

  mkp::Solution current(inst);
  BruteForceResult result{mkp::Solution(inst), 0.0, 1};  // empty solution, value 0

  const std::uint64_t count = 1ULL << n;
  std::uint64_t gray_prev = 0;
  for (std::uint64_t k = 1; k < count; ++k) {
    const std::uint64_t gray = k ^ (k >> 1);
    const std::uint64_t changed = gray ^ gray_prev;
    gray_prev = gray;
    current.flip(static_cast<std::size_t>(std::countr_zero(changed)));
    ++result.assignments_visited;
    if (current.value() > result.optimum && current.is_feasible()) {
      result.optimum = current.value();
      result.best = current;
    }
  }
  return result;
}

}  // namespace pts::exact
