#include "baselines/simulated_annealing.hpp"

#include <algorithm>
#include <cmath>

#include "bounds/greedy.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace pts::baselines {

SaResult simulated_annealing(const mkp::Instance& inst, Rng& rng,
                             const SaParams& params) {
  PTS_CHECK_MSG(params.max_steps > 0 || params.time_limit_seconds > 0.0,
                "the run must be bounded by steps or time");
  Stopwatch watch;
  const auto deadline = params.time_limit_seconds > 0.0
                            ? Deadline::after_seconds(params.time_limit_seconds)
                            : Deadline::unbounded();

  const std::size_t n = inst.num_items();
  const double mean_profit = inst.total_profit() / static_cast<double>(n);
  const double t0 = std::max(params.min_temperature,
                             params.initial_temperature_factor * mean_profit);

  mkp::Solution x = bounds::greedy_randomized(inst, rng);
  SaResult result{x, x.value()};
  if (params.target_value && result.best_value >= *params.target_value) {
    result.reached_target = true;
  }
  double temperature = t0;
  std::uint64_t since_improvement = 0;

  while ((params.max_steps == 0 || result.steps < params.max_steps) &&
         !result.reached_target) {
    if ((result.steps & 255U) == 0 && deadline.expired()) break;
    ++result.steps;

    const std::size_t j = rng.index(n);
    double delta;
    bool apply = false;
    if (x.contains(j)) {
      delta = -inst.profit(j);
      // Metropolis: downhill needs the coin flip.
      apply = rng.uniform01() < std::exp(delta / temperature);
      if (apply) ++result.accepted_uphill;
    } else if (x.fits(j)) {
      delta = inst.profit(j);
      apply = true;  // profits are positive: adds are always improving
    } else {
      delta = 0.0;  // proposal rejected outright (would be infeasible)
    }
    if (apply) {
      x.flip(j);
      if (x.value() > result.best_value) {
        result.best_value = x.value();
        result.best = x;
        since_improvement = 0;
        if (params.target_value && result.best_value >= *params.target_value) {
          result.reached_target = true;
        }
      } else {
        ++since_improvement;
      }
    } else {
      ++since_improvement;
    }

    temperature = std::max(params.min_temperature, temperature * params.cooling);
    if (params.reheat_after > 0 && since_improvement >= params.reheat_after) {
      temperature = t0;
      since_improvement = 0;
      ++result.reheats;
    }
  }

  result.final_temperature = temperature;
  result.seconds = watch.elapsed_seconds();
  PTS_DCHECK(result.best.is_feasible());
  return result;
}

}  // namespace pts::baselines
