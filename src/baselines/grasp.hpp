#pragma once
// GRASP (greedy randomized adaptive search procedure) for the 0-1 MKP — the
// other classic 1990s metaheuristic baseline: iterate (randomized greedy
// construction -> local search), keep the best. Construction reuses the
// library's RCL-based greedy; local search is the swap-exchange fixpoint
// shared with the tabu engine's intensification.

#include <cstdint>
#include <optional>

#include "mkp/instance.hpp"
#include "mkp/solution.hpp"
#include "util/rng.hpp"

namespace pts::baselines {

struct GraspParams {
  std::size_t rcl_size = 4;  ///< restricted-candidate-list width
  std::uint64_t max_iterations = 500;
  double time_limit_seconds = 0.0;
  std::optional<double> target_value;
};

struct GraspResult {
  mkp::Solution best;
  double best_value = 0.0;
  std::uint64_t iterations = 0;
  std::uint64_t local_search_swaps = 0;
  double seconds = 0.0;
  bool reached_target = false;
};

GraspResult grasp(const mkp::Instance& inst, Rng& rng, const GraspParams& params = {});

}  // namespace pts::baselines
