#pragma once
// Simulated annealing for the 0-1 MKP — a period-appropriate metaheuristic
// baseline for the comparison benches. Neighborhood: flip one random item
// (adds are only proposed when they fit, so the walk stays feasible);
// Metropolis acceptance on the objective delta with geometric cooling and
// optional reheats on long stagnation.

#include <cstdint>
#include <optional>

#include "mkp/instance.hpp"
#include "mkp/solution.hpp"
#include "util/rng.hpp"

namespace pts::baselines {

struct SaParams {
  /// Starting temperature as a fraction of the mean item profit; the usual
  /// "accept most uphill rejections early" scale.
  double initial_temperature_factor = 2.0;
  double cooling = 0.9995;       ///< geometric factor applied per step
  double min_temperature = 1e-3;
  /// Steps without improving the incumbent before reheating to the initial
  /// temperature (0 disables reheats).
  std::uint64_t reheat_after = 50'000;

  std::uint64_t max_steps = 200'000;
  double time_limit_seconds = 0.0;
  std::optional<double> target_value;
};

struct SaResult {
  mkp::Solution best;
  double best_value = 0.0;
  std::uint64_t steps = 0;
  std::uint64_t accepted_uphill = 0;  ///< worsening moves accepted
  std::uint64_t reheats = 0;
  double final_temperature = 0.0;
  double seconds = 0.0;
  bool reached_target = false;
};

SaResult simulated_annealing(const mkp::Instance& inst, Rng& rng,
                             const SaParams& params = {});

}  // namespace pts::baselines
