#include "baselines/grasp.hpp"

#include "bounds/greedy.hpp"
#include "tabu/intensify.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace pts::baselines {

GraspResult grasp(const mkp::Instance& inst, Rng& rng, const GraspParams& params) {
  PTS_CHECK_MSG(params.max_iterations > 0 || params.time_limit_seconds > 0.0,
                "the run must be bounded by iterations or time");
  Stopwatch watch;
  const auto deadline = params.time_limit_seconds > 0.0
                            ? Deadline::after_seconds(params.time_limit_seconds)
                            : Deadline::unbounded();

  GraspResult result{mkp::Solution(inst)};
  while ((params.max_iterations == 0 || result.iterations < params.max_iterations) &&
         !result.reached_target && !deadline.expired()) {
    ++result.iterations;

    auto candidate = bounds::greedy_randomized(inst, rng, params.rcl_size);
    result.local_search_swaps += tabu::swap_intensify(candidate);

    if (candidate.value() > result.best_value) {
      result.best_value = candidate.value();
      result.best = std::move(candidate);
      if (params.target_value && result.best_value >= *params.target_value) {
        result.reached_target = true;
      }
    }
  }

  result.seconds = watch.elapsed_seconds();
  return result;
}

}  // namespace pts::baselines
