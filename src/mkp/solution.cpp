#include "mkp/solution.hpp"

#include <cmath>

namespace pts::mkp {

Solution::Solution(const Instance& inst)
    : inst_(&inst), bits_(inst.num_items()), loads_(inst.num_constraints(), 0.0) {}

void Solution::add(std::size_t j) {
  PTS_DCHECK(!bits_.test(j));
  bits_.set(j);
  value_ += inst_->profit(j);
  ++cardinality_;
  const std::size_t m = loads_.size();
  for (std::size_t i = 0; i < m; ++i) loads_[i] += inst_->weight(i, j);
}

void Solution::drop(std::size_t j) {
  PTS_DCHECK(bits_.test(j));
  bits_.reset(j);
  value_ -= inst_->profit(j);
  --cardinality_;
  const std::size_t m = loads_.size();
  for (std::size_t i = 0; i < m; ++i) loads_[i] -= inst_->weight(i, j);
}

void Solution::flip(std::size_t j) { contains(j) ? drop(j) : add(j); }

void Solution::clear() {
  bits_.clear_all();
  for (auto& load : loads_) load = 0.0;
  value_ = 0.0;
  cardinality_ = 0;
}

bool Solution::is_feasible() const {
  const std::size_t m = loads_.size();
  for (std::size_t i = 0; i < m; ++i) {
    if (loads_[i] > inst_->capacity(i)) return false;
  }
  return true;
}

double Solution::total_violation() const {
  double violation = 0.0;
  const std::size_t m = loads_.size();
  for (std::size_t i = 0; i < m; ++i) {
    const double excess = loads_[i] - inst_->capacity(i);
    if (excess > 0.0) violation += excess;
  }
  return violation;
}

bool Solution::fits(std::size_t j) const {
  PTS_DCHECK(!bits_.test(j));
  const std::size_t m = loads_.size();
  for (std::size_t i = 0; i < m; ++i) {
    if (loads_[i] + inst_->weight(i, j) > inst_->capacity(i)) return false;
  }
  return true;
}

std::size_t Solution::most_saturated_constraint(bool relative) const {
  const std::size_t m = loads_.size();
  std::size_t best = 0;
  double best_key = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    double key = slack(i);
    if (relative) {
      const double cap = inst_->capacity(i);
      key = cap > 0.0 ? key / cap : key;
    }
    if (i == 0 || key < best_key) {
      best = i;
      best_key = key;
    }
  }
  return best;
}

std::vector<std::size_t> Solution::selected_items() const {
  std::vector<std::size_t> items;
  items.reserve(cardinality_);
  const std::size_t n = bits_.size();
  for (std::size_t j = 0; j < n; ++j) {
    if (bits_.test(j)) items.push_back(j);
  }
  return items;
}

bool Solution::check_consistency(double tolerance) const {
  double value = 0.0;
  std::vector<double> loads(loads_.size(), 0.0);
  std::size_t cardinality = 0;
  const std::size_t n = bits_.size();
  const std::size_t m = loads_.size();
  for (std::size_t j = 0; j < n; ++j) {
    if (!bits_.test(j)) continue;
    ++cardinality;
    value += inst_->profit(j);
    for (std::size_t i = 0; i < m; ++i) loads[i] += inst_->weight(i, j);
  }
  if (cardinality != cardinality_) return false;
  if (std::fabs(value - value_) > tolerance) return false;
  for (std::size_t i = 0; i < m; ++i) {
    if (std::fabs(loads[i] - loads_[i]) > tolerance) return false;
  }
  return true;
}

void copy_assignment(const Solution& from, Solution& to) {
  PTS_CHECK(&from.instance() == &to.instance());
  to = from;
}

}  // namespace pts::mkp
