#include "mkp/solution.hpp"

#include <algorithm>
#include <cmath>

namespace pts::mkp {

Solution::Solution(const Instance& inst)
    : inst_(&inst),
      bits_(inst.num_items()),
      loads_(inst.num_constraints_padded(), 0.0),
      inv_slack_(inst.num_constraints_padded(), 0.0) {
  recompute_slack_summaries();
}

void Solution::recompute_slack_summaries() {
  const auto caps = inst_->capacities();
  const std::size_t m = inst_->num_constraints();
  double min_slack = caps[0] - loads_[0];
  for (std::size_t i = 0; i < m; ++i) {
    const double slack = caps[i] - loads_[i];
    min_slack = std::min(min_slack, slack);
    inv_slack_[i] = 1.0 / std::max(slack, kSlackFloor);
  }
  min_slack_ = min_slack;
}

void Solution::add(std::size_t j) {
  PTS_DCHECK(!bits_.test(j));
  bits_.set(j);
  value_ += inst_->profit(j);
  ++cardinality_;
  const auto col = inst_->weights_col(j);
  const std::size_t m = inst_->num_constraints();
  for (std::size_t i = 0; i < m; ++i) loads_[i] += col[i];
  recompute_slack_summaries();
}

void Solution::drop(std::size_t j) {
  PTS_DCHECK(bits_.test(j));
  bits_.reset(j);
  value_ -= inst_->profit(j);
  --cardinality_;
  const auto col = inst_->weights_col(j);
  const std::size_t m = inst_->num_constraints();
  for (std::size_t i = 0; i < m; ++i) loads_[i] -= col[i];
  recompute_slack_summaries();
}

void Solution::flip(std::size_t j) { contains(j) ? drop(j) : add(j); }

void Solution::clear() {
  bits_.clear_all();
  for (auto& load : loads_) load = 0.0;
  value_ = 0.0;
  cardinality_ = 0;
  recompute_slack_summaries();
}

bool Solution::is_feasible() const { return min_slack_ >= 0.0; }

double Solution::total_violation() const {
  double violation = 0.0;
  const std::size_t m = inst_->num_constraints();
  for (std::size_t i = 0; i < m; ++i) {
    const double excess = loads_[i] - inst_->capacity(i);
    if (excess > 0.0) violation += excess;
  }
  return violation;
}

bool Solution::fits(std::size_t j) const {
  PTS_DCHECK(!bits_.test(j));
  // Column-summary fast paths: an item whose largest weight is within the
  // smallest slack always fits; one whose smallest weight exceeds it never
  // does. Both avoid touching the column entirely.
  if (inst_->max_col_weight(j) <= min_slack_) return true;
  if (inst_->min_col_weight(j) > min_slack_) return false;
  const auto col = inst_->weights_col(j);
  const auto caps = inst_->capacities();
  const std::size_t m = inst_->num_constraints();
  for (std::size_t i = 0; i < m; ++i) {
    if (loads_[i] + col[i] > caps[i]) return false;
  }
  return true;
}

std::size_t Solution::most_saturated_constraint(bool relative) const {
  const auto caps = inst_->capacities();
  const std::size_t m = inst_->num_constraints();
  std::size_t best = 0;
  if (relative) {
    // Normalization hoisted out of the loop: scale by the precomputed 1/b_i
    // (1.0 when b_i <= 0), so the scan is a branch-free multiply-compare.
    const auto scale = inst_->relative_slack_scales();
    double best_key = (caps[0] - loads_[0]) * scale[0];
    for (std::size_t i = 1; i < m; ++i) {
      const double key = (caps[i] - loads_[i]) * scale[i];
      if (key < best_key) {
        best = i;
        best_key = key;
      }
    }
  } else {
    double best_key = caps[0] - loads_[0];
    for (std::size_t i = 1; i < m; ++i) {
      const double key = caps[i] - loads_[i];
      if (key < best_key) {
        best = i;
        best_key = key;
      }
    }
  }
  return best;
}

std::vector<std::size_t> Solution::selected_items() const {
  std::vector<std::size_t> items;
  items.reserve(cardinality_);
  const std::size_t n = bits_.size();
  for (std::size_t j = bits_.next_one(0); j < n; j = bits_.next_one(j + 1)) {
    items.push_back(j);
  }
  return items;
}

bool Solution::check_consistency(double tolerance) const {
  double value = 0.0;
  std::vector<double> loads(inst_->num_constraints(), 0.0);
  std::size_t cardinality = 0;
  const std::size_t n = bits_.size();
  const std::size_t m = inst_->num_constraints();
  for (std::size_t j = 0; j < n; ++j) {
    if (!bits_.test(j)) continue;
    ++cardinality;
    value += inst_->profit(j);
    const auto col = inst_->weights_col(j);
    for (std::size_t i = 0; i < m; ++i) loads[i] += col[i];
  }
  if (cardinality != cardinality_) return false;
  if (std::fabs(value - value_) > tolerance) return false;
  for (std::size_t i = 0; i < m; ++i) {
    if (std::fabs(loads[i] - loads_[i]) > tolerance) return false;
  }
  double min_slack = inst_->capacity(0) - loads_[0];
  for (std::size_t i = 0; i < m; ++i) {
    const double slack = inst_->capacity(i) - loads_[i];
    min_slack = std::min(min_slack, slack);
    // Exact compare: inv_slack_ is recomputed from scratch on every move,
    // never updated in place, so the same expression must reproduce it.
    if (inv_slack_[i] != 1.0 / std::max(slack, kSlackFloor)) return false;
  }
  return min_slack == min_slack_;
}

void copy_assignment(const Solution& from, Solution& to) {
  PTS_CHECK(&from.instance() == &to.instance());
  to = from;
}

}  // namespace pts::mkp
