#include "mkp/generator.hpp"

#include <cmath>
#include <string>

namespace pts::mkp {

namespace {

std::string default_name(const std::string& prefix, std::size_t m, std::size_t n,
                         std::uint64_t seed) {
  return prefix + "-" + std::to_string(m) + "x" + std::to_string(n) + "-s" +
         std::to_string(seed);
}

/// b_i = max(tightness * rowsum, max row entry) so no single item is
/// trivially excluded and the empty solution is never the only feasible one.
std::vector<double> capacities_from_tightness(const std::vector<double>& weights,
                                              std::size_t m, std::size_t n,
                                              double tightness) {
  std::vector<double> capacities(m);
  for (std::size_t i = 0; i < m; ++i) {
    double row_sum = 0.0;
    double row_max = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double w = weights[i * n + j];
      row_sum += w;
      row_max = std::max(row_max, w);
    }
    capacities[i] = std::floor(std::max(tightness * row_sum, row_max));
  }
  return capacities;
}

}  // namespace

Instance generate_gk(const GkConfig& config, std::uint64_t seed, const std::string& name) {
  PTS_CHECK(config.num_items > 0 && config.num_constraints > 0);
  PTS_CHECK(config.tightness > 0.0 && config.tightness <= 1.0);
  Rng rng(seed);
  const std::size_t n = config.num_items;
  const std::size_t m = config.num_constraints;

  std::vector<double> weights(m * n);
  for (auto& w : weights) {
    w = static_cast<double>(rng.uniform_int(1, static_cast<std::int64_t>(config.weight_max)));
  }

  std::vector<double> profits(n);
  for (std::size_t j = 0; j < n; ++j) {
    double column_sum = 0.0;
    for (std::size_t i = 0; i < m; ++i) column_sum += weights[i * n + j];
    profits[j] = std::ceil(column_sum / static_cast<double>(m) +
                           config.profit_noise * rng.uniform01());
  }

  auto capacities = capacities_from_tightness(weights, m, n, config.tightness);
  Instance instance(name.empty() ? default_name("gk", m, n, seed) : name,
                    std::move(profits), std::move(weights), std::move(capacities));
  return instance;
}

Instance generate_fp(const FpConfig& config, std::uint64_t seed, const std::string& name) {
  PTS_CHECK(config.num_items > 0 && config.num_constraints > 0);
  Rng rng(seed);
  const std::size_t n = config.num_items;
  const std::size_t m = config.num_constraints;

  std::vector<double> weights(m * n);
  for (auto& w : weights) {
    w = static_cast<double>(rng.uniform_int(1, static_cast<std::int64_t>(config.weight_max)));
  }

  // FP problems are "hard for size-reduction methods": profits weakly tied to
  // weights so no variable can be fixed by dominance alone.
  std::vector<double> profits(n);
  for (std::size_t j = 0; j < n; ++j) {
    double column_sum = 0.0;
    for (std::size_t i = 0; i < m; ++i) column_sum += weights[i * n + j];
    const double base = column_sum / static_cast<double>(m);
    profits[j] = std::max(1.0, std::floor(base + rng.uniform_real(-0.3, 0.3) * base + 0.5));
  }

  auto capacities = capacities_from_tightness(weights, m, n, config.tightness);
  return Instance(name.empty() ? default_name("fp", m, n, seed) : name, std::move(profits),
                  std::move(weights), std::move(capacities));
}

std::vector<Instance> generate_fp57(std::uint64_t seed) {
  // 57 problems spanning the published ranges n in [6,105], m in [2,30].
  // Grid: sizes ramp up with index; every problem is deterministically
  // derived from (seed, index).
  std::vector<Instance> instances;
  instances.reserve(57);
  static constexpr std::size_t kItemGrid[] = {6,  8,  10, 12, 15, 18, 20, 24, 28, 30,
                                              34, 38, 40, 45, 50, 55, 60, 70, 80, 90,
                                              100, 105};
  static constexpr std::size_t kConstraintGrid[] = {2, 4, 5, 10, 30};
  std::size_t index = 0;
  for (std::size_t n : kItemGrid) {
    for (std::size_t m : kConstraintGrid) {
      if (index >= 57) break;
      if (m > n) continue;  // keep shapes sensible for the smallest problems
      FpConfig config;
      config.num_items = n;
      config.num_constraints = m;
      ++index;
      instances.push_back(generate_fp(config, seed + index * 7919ULL,
                                      "fp57-" + std::to_string(index)));
    }
    if (index >= 57) break;
  }
  PTS_CHECK(instances.size() == 57);
  return instances;
}

Instance generate_uncorrelated(std::size_t num_items, std::size_t num_constraints,
                               std::uint64_t seed, double max_value, double tightness) {
  Rng rng(seed);
  std::vector<double> weights(num_constraints * num_items);
  for (auto& w : weights) {
    w = static_cast<double>(rng.uniform_int(1, static_cast<std::int64_t>(max_value)));
  }
  std::vector<double> profits(num_items);
  for (auto& c : profits) {
    c = static_cast<double>(rng.uniform_int(1, static_cast<std::int64_t>(max_value)));
  }
  auto capacities =
      capacities_from_tightness(weights, num_constraints, num_items, tightness);
  return Instance(default_name("uncor", num_constraints, num_items, seed),
                  std::move(profits), std::move(weights), std::move(capacities));
}

Instance generate_weakly_correlated(std::size_t num_items, std::size_t num_constraints,
                                    std::uint64_t seed, double max_value, double spread,
                                    double tightness) {
  Rng rng(seed);
  std::vector<double> weights(num_constraints * num_items);
  for (auto& w : weights) {
    w = static_cast<double>(rng.uniform_int(1, static_cast<std::int64_t>(max_value)));
  }
  std::vector<double> profits(num_items);
  for (std::size_t j = 0; j < num_items; ++j) {
    const double base = weights[j];  // first constraint row drives correlation
    profits[j] = std::max(
        1.0, std::floor(base + rng.uniform_real(-spread, spread) + 0.5));
  }
  auto capacities =
      capacities_from_tightness(weights, num_constraints, num_items, tightness);
  return Instance(default_name("weak", num_constraints, num_items, seed),
                  std::move(profits), std::move(weights), std::move(capacities));
}

Instance generate_strongly_correlated(std::size_t num_items, std::size_t num_constraints,
                                      std::uint64_t seed, double max_value, double offset,
                                      double tightness) {
  Rng rng(seed);
  std::vector<double> weights(num_constraints * num_items);
  for (auto& w : weights) {
    w = static_cast<double>(rng.uniform_int(1, static_cast<std::int64_t>(max_value)));
  }
  std::vector<double> profits(num_items);
  for (std::size_t j = 0; j < num_items; ++j) {
    double column_sum = 0.0;
    for (std::size_t i = 0; i < num_constraints; ++i) {
      column_sum += weights[i * num_items + j];
    }
    profits[j] = std::floor(column_sum / static_cast<double>(num_constraints) + offset);
  }
  auto capacities =
      capacities_from_tightness(weights, num_constraints, num_items, tightness);
  return Instance(default_name("strong", num_constraints, num_items, seed),
                  std::move(profits), std::move(weights), std::move(capacities));
}

std::vector<GkClass> generate_gk_table1_classes(std::uint64_t seed,
                                                std::size_t instances_per_class,
                                                double size_scale) {
  // The paper's Table 1 groups: rows for 3xN, 5xN, 10xN, 15xN, 25xN ending at
  // 25x500. size_scale < 1 shrinks n for quick benchmark runs.
  struct Shape {
    std::size_t m;
    std::size_t n;
  };
  static constexpr Shape kShapes[] = {{3, 10},  {3, 100},  {5, 100},  {5, 200},
                                      {10, 100}, {10, 250}, {15, 250}, {15, 500},
                                      {25, 250}, {25, 500}};
  std::vector<GkClass> classes;
  classes.reserve(std::size(kShapes));
  std::uint64_t salt = 0;
  for (const auto& shape : kShapes) {
    GkClass cls;
    const auto n = std::max<std::size_t>(
        shape.m, static_cast<std::size_t>(std::llround(
                     static_cast<double>(shape.n) * size_scale)));
    cls.label = std::to_string(shape.m) + "x" + std::to_string(n);
    for (std::size_t k = 0; k < instances_per_class; ++k) {
      GkConfig config;
      config.num_constraints = shape.m;
      config.num_items = n;
      cls.instances.push_back(generate_gk(config, seed + 104729ULL * (++salt),
                                          cls.label + "-" + std::to_string(k + 1)));
    }
    classes.push_back(std::move(cls));
  }
  return classes;
}

}  // namespace pts::mkp
