#include "mkp/suites.hpp"

#include <cstdio>

#include <cmath>

#include "util/check.hpp"

namespace pts::mkp {

std::vector<SuiteClass> generate_chu_beasley(std::uint64_t seed,
                                             const ChuBeasleyConfig& config) {
  PTS_CHECK(config.instances_per_class >= 1);
  PTS_CHECK(config.size_scale > 0.0);
  std::vector<SuiteClass> classes;
  classes.reserve(config.constraint_counts.size() * config.item_counts.size() *
                  config.tightness_levels.size());
  std::uint64_t salt = 0;
  for (std::size_t m : config.constraint_counts) {
    for (std::size_t n_full : config.item_counts) {
      const auto n = std::max<std::size_t>(
          m, static_cast<std::size_t>(
                 std::llround(static_cast<double>(n_full) * config.size_scale)));
      for (double tightness : config.tightness_levels) {
        SuiteClass cls;
        cls.tightness = tightness;
        {
          char label[64];
          std::snprintf(label, sizeof label, "cb-%zux%zu-t%.2f", m, n, tightness);
          cls.label = label;
        }
        for (std::size_t k = 0; k < config.instances_per_class; ++k) {
          GkConfig gen;
          gen.num_constraints = m;
          gen.num_items = n;
          gen.tightness = tightness;
          cls.instances.push_back(
              generate_gk(gen, seed + 15485863ULL * (++salt),
                          cls.label + "-" + std::to_string(k + 1)));
        }
        classes.push_back(std::move(cls));
      }
    }
  }
  return classes;
}

}  // namespace pts::mkp
