#pragma once
// Structural statistics of an MKP instance: the quantities the literature
// uses to predict hardness — constraint tightness, profit/weight
// correlation (what makes GK instances resist greedy methods), and density
// dispersion. Consumed by the orlib_solver example and the search_diagnostics
// example, and by benches labelling their workloads.

#include <string>

#include "mkp/instance.hpp"

namespace pts::mkp {

struct InstanceProfile {
  std::size_t num_items = 0;
  std::size_t num_constraints = 0;

  /// Per-constraint tightness b_i / sum_j a_ij, aggregated.
  double tightness_min = 0.0;
  double tightness_mean = 0.0;
  double tightness_max = 0.0;

  /// Pearson correlation between c_j and sum_i a_ij. Near 1 on GK-style
  /// correlated instances, near 0 on uncorrelated ones.
  double profit_weight_correlation = 0.0;

  /// Coefficient of variation of the profit densities c_j / sum_i a_ij —
  /// small values mean greedy orderings carry little information.
  double density_cv = 0.0;

  /// Expected knapsack occupancy: mean over constraints of
  /// (b_i / mean row weight) / n — roughly the fraction of items a
  /// solution can hold.
  double expected_fill = 0.0;

  [[nodiscard]] std::string to_string() const;
};

InstanceProfile profile_instance(const Instance& inst);

}  // namespace pts::mkp
