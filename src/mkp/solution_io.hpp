#pragma once
// Solution persistence: a small line-oriented text format so solver runs can
// be saved, diffed and re-validated later (orlib_solver --save, and test
// fixtures).
//
//   mkpsol 1                    <- magic + format version
//   instance <name>
//   items <n>
//   value <objective>
//   selected <k> j1 j2 ... jk   <- ascending indices
//
// Loading validates against the instance: index range, recomputed value,
// feasibility. A mismatch throws SolutionIoError (a saved solution for a
// different instance must never be silently accepted).

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "mkp/instance.hpp"
#include "mkp/solution.hpp"

namespace pts::mkp {

class SolutionIoError : public std::runtime_error {
 public:
  explicit SolutionIoError(const std::string& what) : std::runtime_error(what) {}
};

void write_solution(std::ostream& out, const Solution& solution);
void write_solution_file(const std::string& path, const Solution& solution);

/// Reads and validates against `inst`. Throws SolutionIoError on malformed
/// input, out-of-range indices, value mismatch (tolerance 1e-6) or
/// infeasibility w.r.t. `inst`.
Solution read_solution(std::istream& in, const Instance& inst);
Solution read_solution_file(const std::string& path, const Instance& inst);

}  // namespace pts::mkp
