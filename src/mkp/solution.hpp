#pragma once
// A 0-1 assignment with incrementally maintained objective value and
// per-constraint loads. add()/drop() are O(m); the tabu engine's move
// evaluation never re-scans the weight matrix column-by-column from scratch.
//
// Solutions may be infeasible on purpose: strategic oscillation (paper §3.2)
// deliberately crosses the feasibility boundary, so feasibility is a query,
// not an invariant.

#include <cstddef>
#include <span>
#include <vector>

#include "mkp/instance.hpp"
#include "util/bitvec.hpp"

namespace pts::mkp {

class Solution {
 public:
  /// Empty knapsack over `inst`. The instance must outlive the solution.
  explicit Solution(const Instance& inst);

  [[nodiscard]] const Instance& instance() const { return *inst_; }
  [[nodiscard]] std::size_t num_items() const { return inst_->num_items(); }

  [[nodiscard]] bool contains(std::size_t j) const { return bits_.test(j); }
  [[nodiscard]] std::size_t cardinality() const { return cardinality_; }

  /// Objective value sum_j c_j x_j (maintained incrementally).
  [[nodiscard]] double value() const { return value_; }

  /// Current load of constraint i: sum_j a_ij x_j.
  [[nodiscard]] double load(std::size_t i) const {
    PTS_DCHECK(i < inst_->num_constraints());
    return loads_[i];
  }
  [[nodiscard]] std::span<const double> loads() const {
    return {loads_.data(), inst_->num_constraints()};
  }

  /// loads() extended with zero pad lanes to num_constraints_padded(), for
  /// full-width vector loads in the SIMD kernels. Pads are exactly +0.0 and
  /// never written by add()/drop().
  [[nodiscard]] std::span<const double> loads_padded() const { return loads_; }

  /// Remaining capacity b_i - load_i (negative when violated).
  [[nodiscard]] double slack(std::size_t i) const {
    return inst_->capacity(i) - loads_[i];
  }

  /// min_i slack(i), maintained incrementally by add()/drop(). Combined with
  /// Instance::min_col_weight this gives the O(1) candidate prune: an item
  /// whose smallest weight exceeds the smallest slack cannot fit anywhere.
  [[nodiscard]] double min_slack() const { return min_slack_; }

  /// Floor applied to per-constraint slack before taking its reciprocal, so
  /// scoring against a (nearly) saturated constraint stays finite.
  static constexpr double kSlackFloor = 1e-9;

  /// Per-constraint 1 / max(slack(i), kSlackFloor), maintained incrementally
  /// by add()/drop(). Move scoring divides weights by slack for every
  /// candidate; slacks only change once per move, so precomputing the
  /// reciprocals here turns m divisions per candidate into m multiplies.
  [[nodiscard]] std::span<const double> inv_slack() const {
    return {inv_slack_.data(), inst_->num_constraints()};
  }

  /// inv_slack() extended with zero pad lanes (pad weight × pad reciprocal
  /// contributes exactly +0.0 to a score accumulator).
  [[nodiscard]] std::span<const double> inv_slack_padded() const { return inv_slack_; }

  void add(std::size_t j);   ///< item must be absent
  void drop(std::size_t j);  ///< item must be present
  void flip(std::size_t j);

  /// Reset to the empty knapsack.
  void clear();

  /// True iff no constraint is violated.
  [[nodiscard]] bool is_feasible() const;

  /// Sum over constraints of max(0, load_i - b_i); 0 iff feasible. This is
  /// the infeasibility measure strategic oscillation drives back to zero.
  [[nodiscard]] double total_violation() const;

  /// True iff adding item j keeps every constraint satisfied.
  [[nodiscard]] bool fits(std::size_t j) const;

  /// Index of the constraint with minimum slack — the paper's "most
  /// saturated constraint", the one the Drop step targets. When `relative`
  /// is true, slack is normalized by b_i (constraints with tiny capacity
  /// are not drowned out by large ones). Ties break to the lowest index.
  [[nodiscard]] std::size_t most_saturated_constraint(bool relative = false) const;

  [[nodiscard]] const BitVec& bits() const { return bits_; }
  [[nodiscard]] std::uint64_t hash() const { return bits_.hash(); }

  [[nodiscard]] std::size_t hamming_distance(const Solution& other) const {
    return bits_.hamming_distance(other.bits_);
  }

  /// Items currently at 1, ascending.
  [[nodiscard]] std::vector<std::size_t> selected_items() const;

  /// Recompute value/loads from scratch; returns true if they agree with the
  /// incrementally maintained state (tolerance for float accumulation).
  /// Test/debug aid for the incremental-evaluation invariant.
  [[nodiscard]] bool check_consistency(double tolerance = 1e-6) const;

  bool operator==(const Solution& other) const { return bits_ == other.bits_; }

 private:
  void recompute_slack_summaries();

  const Instance* inst_;
  BitVec bits_;
  std::vector<double> loads_;
  std::vector<double> inv_slack_;
  double value_ = 0.0;
  double min_slack_ = 0.0;
  std::size_t cardinality_ = 0;
};

/// Copy assignment between solutions over the same instance.
void copy_assignment(const Solution& from, Solution& to);

}  // namespace pts::mkp
