#pragma once
// The 0-1 multidimensional knapsack problem instance:
//
//   max  sum_j c_j x_j
//   s.t. sum_j a_ij x_j <= b_i   for i = 0..m-1
//        x_j in {0,1}
//
// with c_j > 0, a_ij >= 0, b_i >= 0 (the paper assumes positive reals).
// Weights are stored in BOTH layouts (see DESIGN.md "Data layout & move
// kernels"): row-major (one contiguous row per constraint) for the Drop
// step's bottleneck-row scan, and a column-major mirror (one contiguous
// column per item) for the Add step's per-candidate feasibility/score
// kernels, which would otherwise read column j at stride n. The mirror is
// built once at construction together with per-item min/max weight
// summaries that let the move kernels reject non-fitting candidates in
// O(1) without touching the column at all.
//
// The mirror's per-column stride is padded to a multiple of simd::kLaneWidth
// (pad weights are 0.0) and a padded capacity vector (+infinity pads) is kept
// alongside, so the vector kernels can issue full-width loads and feasibility
// compares over the tail group without masking: a pad lane adds 0 load
// against an infinite capacity and can never report a violation, and a pad
// weight contributes exactly +0.0 to any score accumulator. All public
// m-sized spans keep logical size m; the *_padded accessors expose the wide
// views.

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace pts::mkp {

class Instance {
 public:
  /// weights_row_major has m*n entries; row i holds a_i0 .. a_i,n-1.
  Instance(std::string name, std::vector<double> profits,
           std::vector<double> weights_row_major, std::vector<double> capacities);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t num_items() const { return n_; }
  [[nodiscard]] std::size_t num_constraints() const { return m_; }

  /// m rounded up to a multiple of simd::kLaneWidth — the stride of the
  /// column-major mirror and the length of the padded load/slack vectors.
  [[nodiscard]] std::size_t num_constraints_padded() const { return m_pad_; }

  [[nodiscard]] double profit(std::size_t j) const {
    PTS_DCHECK(j < n_);
    return profits_[j];
  }

  [[nodiscard]] double weight(std::size_t i, std::size_t j) const {
    PTS_DCHECK(i < m_ && j < n_);
    return weights_[i * n_ + j];
  }

  [[nodiscard]] double capacity(std::size_t i) const {
    PTS_DCHECK(i < m_);
    return capacities_[i];
  }

  [[nodiscard]] std::span<const double> profits() const { return profits_; }
  [[nodiscard]] std::span<const double> capacities() const { return capacities_; }
  [[nodiscard]] std::span<const double> weights_row(std::size_t i) const {
    PTS_DCHECK(i < m_);
    return {weights_.data() + i * n_, n_};
  }

  /// Column-major mirror: item j's m weights a_0j .. a_{m-1},j, contiguous.
  [[nodiscard]] std::span<const double> weights_col(std::size_t j) const {
    PTS_DCHECK(j < n_);
    return {weights_col_.data() + j * m_pad_, m_};
  }

  /// The same column including its zero pad lanes (length m_pad_), safe for
  /// full-width vector loads over the final partial group.
  [[nodiscard]] std::span<const double> weights_col_padded(std::size_t j) const {
    PTS_DCHECK(j < n_);
    return {weights_col_.data() + j * m_pad_, m_pad_};
  }

  /// Capacities extended with +infinity pad lanes (length m_pad_): a pad
  /// lane's feasibility compare `0 + 0 > +inf` is false by construction.
  [[nodiscard]] std::span<const double> capacities_padded() const {
    return capacities_padded_;
  }

  /// min_i a_ij. If this exceeds the solution's minimum slack, item j cannot
  /// fit (its weight at the tightest constraint is at least this large) — the
  /// O(1) candidate prune used by the Add kernels.
  [[nodiscard]] double min_col_weight(std::size_t j) const {
    PTS_DCHECK(j < n_);
    return col_min_weight_[j];
  }

  /// max_i a_ij. If this is at most the solution's minimum slack, item j is
  /// guaranteed to fit — no column scan needed to prove feasibility.
  [[nodiscard]] double max_col_weight(std::size_t j) const {
    PTS_DCHECK(j < n_);
    return col_max_weight_[j];
  }

  /// Precomputed 1/b_i for relative slack normalization (1.0 when b_i <= 0,
  /// matching the historical "fall back to raw slack" semantics). Lets
  /// Solution::most_saturated_constraint run branch-free inside the loop.
  [[nodiscard]] double relative_slack_scale(std::size_t i) const {
    PTS_DCHECK(i < m_);
    return relative_scale_[i];
  }
  [[nodiscard]] std::span<const double> relative_slack_scales() const {
    return relative_scale_;
  }

  /// sum_i a_ij — the aggregate resource consumption of item j.
  [[nodiscard]] double column_weight_sum(std::size_t j) const {
    PTS_DCHECK(j < n_);
    return column_sums_[j];
  }

  /// Profit per unit of aggregate weight; items with zero weight rank first.
  /// Used by greedy construction and by strategic oscillation's projection
  /// step ("exclude the objects with large sum_i a_ij / c_j ratio").
  [[nodiscard]] double profit_density(std::size_t j) const {
    PTS_DCHECK(j < n_);
    return density_[j];
  }

  [[nodiscard]] double total_profit() const { return total_profit_; }

  /// Optimum recorded in the source file (OR-Library convention: 0 = unknown).
  [[nodiscard]] const std::optional<double>& known_optimum() const { return known_optimum_; }
  void set_known_optimum(double value) { known_optimum_ = value; }

  /// Human-readable structural problems (empty means well-formed).
  [[nodiscard]] std::vector<std::string> validate() const;

  /// True when every item alone fits every constraint (no forced zeros).
  [[nodiscard]] bool every_item_fits() const;

 private:
  std::string name_;
  std::size_t n_ = 0;
  std::size_t m_ = 0;
  std::size_t m_pad_ = 0;            // m_ rounded up to simd::kLaneWidth
  std::vector<double> profits_;
  std::vector<double> weights_;      // row-major, m_ rows of n_
  std::vector<double> weights_col_;  // column-major mirror, n_ columns of m_pad_
  std::vector<double> capacities_;
  std::vector<double> capacities_padded_;  // capacities_ + inf pad lanes
  std::vector<double> col_min_weight_;
  std::vector<double> col_max_weight_;
  std::vector<double> relative_scale_;  // 1/b_i (1.0 when b_i <= 0)
  std::vector<double> column_sums_;
  std::vector<double> density_;
  double total_profit_ = 0.0;
  std::optional<double> known_optimum_;
};

}  // namespace pts::mkp
