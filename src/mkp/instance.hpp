#pragma once
// The 0-1 multidimensional knapsack problem instance:
//
//   max  sum_j c_j x_j
//   s.t. sum_j a_ij x_j <= b_i   for i = 0..m-1
//        x_j in {0,1}
//
// with c_j > 0, a_ij >= 0, b_i >= 0 (the paper assumes positive reals).
// Weights are stored row-major (one contiguous row per constraint) so the
// inner candidate-evaluation loops of the tabu engine stream one cache-
// friendly row at a time.

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace pts::mkp {

class Instance {
 public:
  /// weights_row_major has m*n entries; row i holds a_i0 .. a_i,n-1.
  Instance(std::string name, std::vector<double> profits,
           std::vector<double> weights_row_major, std::vector<double> capacities);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t num_items() const { return n_; }
  [[nodiscard]] std::size_t num_constraints() const { return m_; }

  [[nodiscard]] double profit(std::size_t j) const {
    PTS_DCHECK(j < n_);
    return profits_[j];
  }

  [[nodiscard]] double weight(std::size_t i, std::size_t j) const {
    PTS_DCHECK(i < m_ && j < n_);
    return weights_[i * n_ + j];
  }

  [[nodiscard]] double capacity(std::size_t i) const {
    PTS_DCHECK(i < m_);
    return capacities_[i];
  }

  [[nodiscard]] std::span<const double> profits() const { return profits_; }
  [[nodiscard]] std::span<const double> capacities() const { return capacities_; }
  [[nodiscard]] std::span<const double> weights_row(std::size_t i) const {
    PTS_DCHECK(i < m_);
    return {weights_.data() + i * n_, n_};
  }

  /// sum_i a_ij — the aggregate resource consumption of item j.
  [[nodiscard]] double column_weight_sum(std::size_t j) const {
    PTS_DCHECK(j < n_);
    return column_sums_[j];
  }

  /// Profit per unit of aggregate weight; items with zero weight rank first.
  /// Used by greedy construction and by strategic oscillation's projection
  /// step ("exclude the objects with large sum_i a_ij / c_j ratio").
  [[nodiscard]] double profit_density(std::size_t j) const {
    PTS_DCHECK(j < n_);
    return density_[j];
  }

  [[nodiscard]] double total_profit() const { return total_profit_; }

  /// Optimum recorded in the source file (OR-Library convention: 0 = unknown).
  [[nodiscard]] const std::optional<double>& known_optimum() const { return known_optimum_; }
  void set_known_optimum(double value) { known_optimum_ = value; }

  /// Human-readable structural problems (empty means well-formed).
  [[nodiscard]] std::vector<std::string> validate() const;

  /// True when every item alone fits every constraint (no forced zeros).
  [[nodiscard]] bool every_item_fits() const;

 private:
  std::string name_;
  std::size_t n_ = 0;
  std::size_t m_ = 0;
  std::vector<double> profits_;
  std::vector<double> weights_;  // row-major, m_ rows of n_
  std::vector<double> capacities_;
  std::vector<double> column_sums_;
  std::vector<double> density_;
  double total_profit_ = 0.0;
  std::optional<double> known_optimum_;
};

}  // namespace pts::mkp
