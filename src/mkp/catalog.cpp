#include "mkp/catalog.hpp"

#include "util/check.hpp"

namespace pts::mkp {

namespace {

// n=3, m=1. Greedy-by-density picks item 0 (profit 10) and gets stuck;
// the optimum takes items {1,2} for 12. Exercises "greedy is not optimal".
CatalogEntry make_greedy_trap() {
  Instance inst("cat-greedy-trap", {10, 6, 6}, {5, 4, 4}, {8});
  return {std::move(inst), 12.0};
}

// n=4, m=1. Optimum is {1,2}: profit 13, weight 7 == capacity (tight).
CatalogEntry make_pick_two() {
  Instance inst("cat-pick-two", {10, 7, 6, 1}, {5, 4, 3, 1}, {7});
  return {std::move(inst), 13.0};
}

// n=6, m=1 subset-sum flavour: c_j == a_j, capacity 10, and 10 is reachable
// ({3,5} -> 4+6), so the optimum equals the capacity.
CatalogEntry make_subset_sum() {
  Instance inst("cat-subset-sum", {1, 2, 3, 4, 5, 6}, {1, 2, 3, 4, 5, 6}, {10});
  return {std::move(inst), 10.0};
}

// n=8, m=3 pure cardinality: every weight 1, capacities 4 -> take the four
// most profitable items: 9+8+7+6 = 30.
CatalogEntry make_cardinality() {
  std::vector<double> profits{5, 9, 3, 7, 8, 2, 6, 4};
  std::vector<double> weights(3 * 8, 1.0);
  Instance inst("cat-cardinality", std::move(profits), std::move(weights), {4, 4, 4});
  return {std::move(inst), 30.0};
}

// n=10, m=5 block structure: items 0-4 weigh 2 everywhere (profit 10),
// items 5-9 weigh 3 everywhere (profit 11); capacities all 10. Equivalent to
// a single knapsack over {2,3} weights; best packing is five light items: 50.
CatalogEntry make_blocks() {
  std::vector<double> profits{10, 10, 10, 10, 10, 11, 11, 11, 11, 11};
  std::vector<double> weights(5 * 10);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 10; ++j) {
      weights[i * 10 + j] = j < 5 ? 2.0 : 3.0;
    }
  }
  Instance inst("cat-blocks", std::move(profits), std::move(weights),
                {10, 10, 10, 10, 10});
  return {std::move(inst), 50.0};
}

// n=12, m=2 with asymmetric constraints: constraint 0 binds the even items,
// constraint 1 the odd ones. Even items j=0,2,..,10 have (profit 4, a0=3,
// a1=1); odd items (profit 5, a0=1, a1=3). b = {12, 12}. Taking e evens and
// o odds needs 3e+o <= 12 and e+3o <= 12; maximize 4e+5o. e=o=3 gives 27;
// e=2,o=3: 23; e=3,o=2: 22; e=4,o=0:16; o=4,e=0:20; e=2,o=3->? (3*2+3=9<=12,
// 2+9=11<=12) 23. e=3,o=3 loads: 9+3=12, 3+9=12 feasible -> optimum 27.
CatalogEntry make_crossed() {
  std::vector<double> profits(12);
  std::vector<double> weights(2 * 12);
  for (std::size_t j = 0; j < 12; ++j) {
    const bool even = (j % 2) == 0;
    profits[j] = even ? 4.0 : 5.0;
    weights[0 * 12 + j] = even ? 3.0 : 1.0;
    weights[1 * 12 + j] = even ? 1.0 : 3.0;
  }
  Instance inst("cat-crossed", std::move(profits), std::move(weights), {12, 12});
  return {std::move(inst), 27.0};
}

// n=8, m=2 nested capacities: constraint 1 duplicates constraint 0 at half
// the capacity, so only constraint 1 ever binds. Weights 2 each, b = {16, 8}
// -> exactly 4 items fit; profits {9,8,7,6,5,4,3,2}: optimum 9+8+7+6 = 30.
CatalogEntry make_nested() {
  std::vector<double> profits{9, 8, 7, 6, 5, 4, 3, 2};
  std::vector<double> weights(2 * 8, 2.0);
  Instance inst("cat-nested", std::move(profits), std::move(weights), {16, 8});
  return {std::move(inst), 30.0};
}

// n=6, m=1 dominant-item trap: item 0 has the best profit density
// (22/7 > 6/2) so density-greedy grabs it first and strands a unit of
// capacity ({0,j} = 28, weight 9 of 10); the optimum skips it entirely and
// packs the five small items for 30. Tests escaping a dominant-item local
// optimum — a drop of the "best" item must pay off.
CatalogEntry make_dominant_trap() {
  Instance inst("cat-dominant-trap", {22, 6, 6, 6, 6, 6}, {7, 2, 2, 2, 2, 2}, {10});
  return {std::move(inst), 30.0};
}

}  // namespace

std::vector<CatalogEntry> catalog() {
  std::vector<CatalogEntry> entries;
  entries.push_back(make_greedy_trap());
  entries.push_back(make_pick_two());
  entries.push_back(make_subset_sum());
  entries.push_back(make_cardinality());
  entries.push_back(make_blocks());
  entries.push_back(make_crossed());
  entries.push_back(make_nested());
  entries.push_back(make_dominant_trap());
  return entries;
}

CatalogEntry catalog_entry(const std::string& name) {
  for (auto& entry : catalog()) {
    if (entry.instance.name() == name) return entry;
  }
  PTS_CHECK_MSG(false, "unknown catalog entry");
  __builtin_unreachable();
}

}  // namespace pts::mkp
