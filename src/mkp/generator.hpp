#pragma once
// Instance generators replacing the OR-Library data files (not shipped
// offline — see DESIGN.md, data substitution note).
//
// * generate_gk: the standard Glover–Kochenberger-style construction used
//   throughout the MKP literature — a_ij ~ U{1..1000},
//   b_i = tightness * sum_j a_ij, and profits correlated with aggregate
//   weight: c_j = sum_i a_ij / m + 500 * u_j, u_j ~ U(0,1), rounded up.
//   Correlated profits are what makes these instances hard for greedy
//   methods (density is nearly uniform).
// * generate_fp: Fréville–Plateau-style "hard small" problems: the published
//   set spans n in [6,105], m in [2,30] with tight capacities; we reproduce
//   that regime with uncorrelated weights and a 0.5 tightness.
// * generate_uncorrelated / weakly / strongly correlated: classic knapsack
//   families for tests and ablations.
//
// All values are integer-valued doubles so arithmetic is exact.

#include <cstdint>
#include <vector>

#include "mkp/instance.hpp"
#include "util/rng.hpp"

namespace pts::mkp {

struct GkConfig {
  std::size_t num_items = 100;
  std::size_t num_constraints = 5;
  double tightness = 0.25;       ///< b_i as a fraction of sum_j a_ij
  double weight_max = 1000.0;    ///< a_ij ~ U{1..weight_max}
  double profit_noise = 500.0;   ///< c_j = colsum/m + profit_noise * u_j
};

Instance generate_gk(const GkConfig& config, std::uint64_t seed,
                     const std::string& name = "");

struct FpConfig {
  std::size_t num_items = 50;
  std::size_t num_constraints = 5;
  double tightness = 0.5;
  double weight_max = 100.0;
};

Instance generate_fp(const FpConfig& config, std::uint64_t seed,
                     const std::string& name = "");

/// The 57-problem Fréville–Plateau-style suite on the published size grid
/// (n from 6 to 105, m from 2 to 30), deterministically seeded.
std::vector<Instance> generate_fp57(std::uint64_t seed);

/// c_j, a_ij independent uniform in {1..max_value}; tight capacities.
Instance generate_uncorrelated(std::size_t num_items, std::size_t num_constraints,
                               std::uint64_t seed, double max_value = 1000.0,
                               double tightness = 0.5);

/// c_j = a_1j + noise in [-spread, spread] (single-row correlation source).
Instance generate_weakly_correlated(std::size_t num_items, std::size_t num_constraints,
                                    std::uint64_t seed, double max_value = 1000.0,
                                    double spread = 100.0, double tightness = 0.5);

/// c_j = sum_i a_ij / m + offset: density identical up to the offset.
Instance generate_strongly_correlated(std::size_t num_items, std::size_t num_constraints,
                                      std::uint64_t seed, double max_value = 1000.0,
                                      double offset = 100.0, double tightness = 0.5);

/// The paper's Table-1 grid of Glover–Kochenberger classes:
/// m in {3,5,10,15,25} crossed with a size ladder ending at 25x500.
struct GkClass {
  std::string label;            ///< e.g. "10x250"
  std::vector<Instance> instances;
};
std::vector<GkClass> generate_gk_table1_classes(std::uint64_t seed,
                                                std::size_t instances_per_class = 2,
                                                double size_scale = 1.0);

}  // namespace pts::mkp
