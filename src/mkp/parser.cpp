#include "mkp/parser.hpp"

#include <fstream>
#include <sstream>

namespace pts::mkp {

namespace {

double next_number(std::istream& in, const char* what) {
  double value = 0.0;
  if (!(in >> value)) {
    throw ParseError(std::string("unexpected end of input while reading ") + what);
  }
  return value;
}

std::size_t next_count(std::istream& in, const char* what) {
  const double value = next_number(in, what);
  if (value < 0.0 || value != static_cast<double>(static_cast<long long>(value))) {
    throw ParseError(std::string("expected a non-negative integer for ") + what);
  }
  return static_cast<std::size_t>(value);
}

}  // namespace

Instance read_orlib_single(std::istream& in, const std::string& name) {
  const std::size_t n = next_count(in, "item count n");
  const std::size_t m = next_count(in, "constraint count m");
  if (n == 0) throw ParseError("item count n must be positive");
  if (m == 0) throw ParseError("constraint count m must be positive");
  const double opt = next_number(in, "recorded optimum");

  std::vector<double> profits(n);
  for (auto& c : profits) c = next_number(in, "profit");

  std::vector<double> weights(m * n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      weights[i * n + j] = next_number(in, "weight");
    }
  }

  std::vector<double> capacities(m);
  for (auto& b : capacities) b = next_number(in, "capacity");

  Instance instance(name, std::move(profits), std::move(weights), std::move(capacities));
  if (opt > 0.0) instance.set_known_optimum(opt);
  return instance;
}

std::vector<Instance> read_orlib(std::istream& in, const std::string& base_name) {
  const std::size_t count = next_count(in, "problem count");
  std::vector<Instance> instances;
  instances.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    instances.push_back(read_orlib_single(in, base_name + "-" + std::to_string(k + 1)));
  }
  return instances;
}

std::vector<Instance> read_orlib_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open file: " + path);
  return read_orlib(in, path);
}

void write_orlib_single(std::ostream& out, const Instance& instance) {
  const std::size_t n = instance.num_items();
  const std::size_t m = instance.num_constraints();
  out << n << ' ' << m << ' ' << instance.known_optimum().value_or(0.0) << '\n';
  for (std::size_t j = 0; j < n; ++j) {
    out << instance.profit(j) << (j + 1 == n ? '\n' : ' ');
  }
  for (std::size_t i = 0; i < m; ++i) {
    const auto row = instance.weights_row(i);
    for (std::size_t j = 0; j < n; ++j) {
      out << row[j] << (j + 1 == n ? '\n' : ' ');
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    out << instance.capacity(i) << (i + 1 == m ? '\n' : ' ');
  }
}

void write_orlib(std::ostream& out, const std::vector<Instance>& instances) {
  out << instances.size() << '\n';
  for (const auto& instance : instances) write_orlib_single(out, instance);
}

void write_orlib_file(const std::string& path, const std::vector<Instance>& instances) {
  std::ofstream out(path);
  if (!out) throw ParseError("cannot open file for writing: " + path);
  write_orlib(out, instances);
}

}  // namespace pts::mkp
