#include "mkp/instance.hpp"

#include <algorithm>
#include <limits>

#include "util/simd.hpp"

namespace pts::mkp {

Instance::Instance(std::string name, std::vector<double> profits,
                   std::vector<double> weights_row_major, std::vector<double> capacities)
    : name_(std::move(name)),
      n_(profits.size()),
      m_(capacities.size()),
      profits_(std::move(profits)),
      weights_(std::move(weights_row_major)),
      capacities_(std::move(capacities)) {
  PTS_CHECK_MSG(n_ > 0, "instance needs at least one item");
  PTS_CHECK_MSG(m_ > 0, "instance needs at least one constraint");
  PTS_CHECK_MSG(weights_.size() == n_ * m_, "weight matrix must be m*n");

  m_pad_ = (m_ + simd::kLaneWidth - 1) / simd::kLaneWidth * simd::kLaneWidth;
  column_sums_.assign(n_, 0.0);
  weights_col_.assign(n_ * m_pad_, 0.0);  // pad lanes stay exactly +0.0
  col_min_weight_.assign(n_, std::numeric_limits<double>::infinity());
  col_max_weight_.assign(n_, 0.0);
  for (std::size_t i = 0; i < m_; ++i) {
    const double* row = weights_.data() + i * n_;
    for (std::size_t j = 0; j < n_; ++j) {
      const double w = row[j];
      column_sums_[j] += w;
      weights_col_[j * m_pad_ + i] = w;
      col_min_weight_[j] = std::min(col_min_weight_[j], w);
      col_max_weight_[j] = std::max(col_max_weight_[j], w);
    }
  }

  capacities_padded_.assign(m_pad_, std::numeric_limits<double>::infinity());
  std::copy(capacities_.begin(), capacities_.end(), capacities_padded_.begin());

  relative_scale_.resize(m_);
  for (std::size_t i = 0; i < m_; ++i) {
    relative_scale_[i] = capacities_[i] > 0.0 ? 1.0 / capacities_[i] : 1.0;
  }

  density_.resize(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    density_[j] = column_sums_[j] > 0.0 ? profits_[j] / column_sums_[j]
                                        : std::numeric_limits<double>::infinity();
    total_profit_ += profits_[j];
  }
}

std::vector<std::string> Instance::validate() const {
  std::vector<std::string> issues;
  for (std::size_t j = 0; j < n_; ++j) {
    if (!(profits_[j] > 0.0)) {
      issues.push_back("profit of item " + std::to_string(j) + " is not positive");
    }
  }
  for (std::size_t i = 0; i < m_; ++i) {
    if (capacities_[i] < 0.0) {
      issues.push_back("capacity of constraint " + std::to_string(i) + " is negative");
    }
    const auto row = weights_row(i);
    for (std::size_t j = 0; j < n_; ++j) {
      if (row[j] < 0.0) {
        issues.push_back("weight a[" + std::to_string(i) + "][" + std::to_string(j) +
                         "] is negative");
      }
    }
  }
  return issues;
}

bool Instance::every_item_fits() const {
  for (std::size_t i = 0; i < m_; ++i) {
    const auto row = weights_row(i);
    for (std::size_t j = 0; j < n_; ++j) {
      if (row[j] > capacities_[i]) return false;
    }
  }
  return true;
}

}  // namespace pts::mkp
