#include "mkp/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/stats.hpp"

namespace pts::mkp {

InstanceProfile profile_instance(const Instance& inst) {
  const std::size_t n = inst.num_items();
  const std::size_t m = inst.num_constraints();
  InstanceProfile profile;
  profile.num_items = n;
  profile.num_constraints = m;

  // Tightness per constraint.
  profile.tightness_min = std::numeric_limits<double>::infinity();
  profile.tightness_max = 0.0;
  double tightness_sum = 0.0;
  double fill_sum = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const auto row = inst.weights_row(i);
    double row_sum = 0.0;
    for (double w : row) row_sum += w;
    const double tightness = row_sum > 0.0 ? inst.capacity(i) / row_sum : 1.0;
    profile.tightness_min = std::min(profile.tightness_min, tightness);
    profile.tightness_max = std::max(profile.tightness_max, tightness);
    tightness_sum += tightness;
    const double mean_weight = row_sum / static_cast<double>(n);
    fill_sum += mean_weight > 0.0
                    ? (inst.capacity(i) / mean_weight) / static_cast<double>(n)
                    : 1.0;
  }
  profile.tightness_mean = tightness_sum / static_cast<double>(m);
  profile.expected_fill = fill_sum / static_cast<double>(m);

  // Pearson correlation between profits and column weight sums.
  RunningStats profit_stats, weight_stats;
  for (std::size_t j = 0; j < n; ++j) {
    profit_stats.add(inst.profit(j));
    weight_stats.add(inst.column_weight_sum(j));
  }
  double covariance = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    covariance += (inst.profit(j) - profit_stats.mean()) *
                  (inst.column_weight_sum(j) - weight_stats.mean());
  }
  covariance /= static_cast<double>(n > 1 ? n - 1 : 1);
  const double denom = profit_stats.stddev() * weight_stats.stddev();
  profile.profit_weight_correlation = denom > 0.0 ? covariance / denom : 0.0;

  // Density dispersion.
  RunningStats density_stats;
  for (std::size_t j = 0; j < n; ++j) {
    const double density = inst.profit_density(j);
    if (std::isfinite(density)) density_stats.add(density);
  }
  profile.density_cv = density_stats.mean() > 0.0
                           ? density_stats.stddev() / density_stats.mean()
                           : 0.0;
  return profile;
}

std::string InstanceProfile::to_string() const {
  char buffer[256];
  std::snprintf(buffer, sizeof buffer,
                "n=%zu m=%zu tightness[%.2f..%.2f, mean %.2f] "
                "corr(c,w)=%.2f density-cv=%.2f fill~%.2f",
                num_items, num_constraints, tightness_min, tightness_max,
                tightness_mean, profit_weight_correlation, density_cv,
                expected_fill);
  return buffer;
}

}  // namespace pts::mkp
