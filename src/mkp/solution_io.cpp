#include "mkp/solution_io.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

namespace pts::mkp {

namespace {

std::string expect_token(std::istream& in, const char* what) {
  std::string token;
  if (!(in >> token)) {
    throw SolutionIoError(std::string("unexpected end of input, expected ") + what);
  }
  return token;
}

void expect_keyword(std::istream& in, const std::string& keyword) {
  const auto token = expect_token(in, keyword.c_str());
  if (token != keyword) {
    throw SolutionIoError("expected keyword '" + keyword + "', got '" + token + "'");
  }
}

double expect_number(std::istream& in, const char* what) {
  double value = 0.0;
  if (!(in >> value)) {
    throw SolutionIoError(std::string("expected a number for ") + what);
  }
  return value;
}

}  // namespace

void write_solution(std::ostream& out, const Solution& solution) {
  const auto items = solution.selected_items();
  out << "mkpsol 1\n";
  out << "instance " << solution.instance().name() << '\n';
  out << "items " << solution.num_items() << '\n';
  out << "value " << solution.value() << '\n';
  out << "selected " << items.size();
  for (auto j : items) out << ' ' << j;
  out << '\n';
}

void write_solution_file(const std::string& path, const Solution& solution) {
  std::ofstream out(path);
  if (!out) throw SolutionIoError("cannot open for writing: " + path);
  write_solution(out, solution);
}

Solution read_solution(std::istream& in, const Instance& inst) {
  expect_keyword(in, "mkpsol");
  const double version = expect_number(in, "format version");
  if (version != 1.0) {
    throw SolutionIoError("unsupported mkpsol version " + std::to_string(version));
  }
  expect_keyword(in, "instance");
  (void)expect_token(in, "instance name");  // informational; not validated

  expect_keyword(in, "items");
  const auto items = static_cast<std::size_t>(expect_number(in, "item count"));
  if (items != inst.num_items()) {
    throw SolutionIoError("solution is for " + std::to_string(items) +
                          " items, instance has " + std::to_string(inst.num_items()));
  }

  expect_keyword(in, "value");
  const double recorded_value = expect_number(in, "objective value");

  expect_keyword(in, "selected");
  const auto count = static_cast<std::size_t>(expect_number(in, "selected count"));
  Solution solution(inst);
  for (std::size_t k = 0; k < count; ++k) {
    const double raw = expect_number(in, "selected index");
    if (raw < 0.0 || raw >= static_cast<double>(inst.num_items()) ||
        raw != std::floor(raw)) {
      throw SolutionIoError("selected index out of range: " + std::to_string(raw));
    }
    const auto j = static_cast<std::size_t>(raw);
    if (solution.contains(j)) {
      throw SolutionIoError("duplicate selected index " + std::to_string(j));
    }
    solution.add(j);
  }

  if (std::fabs(solution.value() - recorded_value) > 1e-6) {
    std::ostringstream message;
    message << "recorded value " << recorded_value << " does not match recomputed "
            << solution.value() << " — wrong instance?";
    throw SolutionIoError(message.str());
  }
  if (!solution.is_feasible()) {
    throw SolutionIoError("solution violates the instance's constraints");
  }
  return solution;
}

Solution read_solution_file(const std::string& path, const Instance& inst) {
  std::ifstream in(path);
  if (!in) throw SolutionIoError("cannot open: " + path);
  return read_solution(in, inst);
}

}  // namespace pts::mkp
