#pragma once
// Named benchmark suites, one call each: the two suites of the paper
// (generate_fp57 / generate_gk_table1_classes live in generator.hpp) plus
// the Chu–Beasley-style grid that became the field's standard after 1998 —
// the same GK construction crossed with tightness in {0.25, 0.5, 0.75}.
// Useful for forward-comparing this reproduction against later literature.

#include <string>
#include <vector>

#include "mkp/generator.hpp"
#include "mkp/instance.hpp"

namespace pts::mkp {

struct SuiteClass {
  std::string label;  ///< e.g. "cb-5x100-t0.25"
  double tightness = 0.25;
  std::vector<Instance> instances;
};

struct ChuBeasleyConfig {
  std::vector<std::size_t> constraint_counts{5, 10, 30};
  std::vector<std::size_t> item_counts{100, 250, 500};
  std::vector<double> tightness_levels{0.25, 0.5, 0.75};
  std::size_t instances_per_class = 1;  ///< the original has 10
  /// Scale factor on item counts for quick runs (1.0 = full size).
  double size_scale = 1.0;
};

/// The full crossed grid, deterministically seeded from `seed`. Class order:
/// constraints-major, then items, then tightness.
std::vector<SuiteClass> generate_chu_beasley(std::uint64_t seed,
                                             const ChuBeasleyConfig& config = {});

}  // namespace pts::mkp
