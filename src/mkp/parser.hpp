#pragma once
// Reader/writer for the OR-Library "mknap" text format the paper's two
// benchmark sets (Fréville–Plateau, Glover–Kochenberger) are distributed in:
//
//   K                          <- number of problems in the file
//   n m opt                    <- per problem (opt 0 when unknown)
//   c_1 ... c_n
//   a_11 ... a_1n              <- one row per constraint
//   ...
//   a_m1 ... a_mn
//   b_1 ... b_m
//
// Tokens are whitespace-separated; line breaks are not significant.
// read_single() reads one problem without the leading count.

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "mkp/instance.hpp"

namespace pts::mkp {

/// Thrown on malformed input (truncated file, bad token, size mismatch).
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

std::vector<Instance> read_orlib(std::istream& in, const std::string& base_name = "orlib");
Instance read_orlib_single(std::istream& in, const std::string& name = "orlib");

std::vector<Instance> read_orlib_file(const std::string& path);

void write_orlib(std::ostream& out, const std::vector<Instance>& instances);
void write_orlib_single(std::ostream& out, const Instance& instance);

/// Round-trip convenience used by tests and the orlib_solver example.
void write_orlib_file(const std::string& path, const std::vector<Instance>& instances);

}  // namespace pts::mkp
