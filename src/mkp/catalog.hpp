#pragma once
// Small embedded instances with hand-verified optimal values. The OR-Library
// data files are not available offline, so these serve as fixed ground truth
// for tests (and are additionally cross-checked against the exhaustive
// enumeration oracle in the test suite).

#include <vector>

#include "mkp/instance.hpp"

namespace pts::mkp {

struct CatalogEntry {
  Instance instance;
  double optimum;  ///< verified optimal objective value
};

/// All embedded instances, smallest first.
std::vector<CatalogEntry> catalog();

/// A specific entry by name; aborts if absent (programming error).
CatalogEntry catalog_entry(const std::string& name);

}  // namespace pts::mkp
