#include "parallel/autotune.hpp"

#include <map>
#include <tuple>

#include "util/check.hpp"

namespace pts::parallel {

namespace {

/// Strategies are aggregated by value; a strict ordering keys the map.
struct StrategyLess {
  bool operator()(const tabu::Strategy& a, const tabu::Strategy& b) const {
    return std::tie(a.tabu_tenure, a.nb_drop, a.nb_local, a.nb_candidates) <
           std::tie(b.tabu_tenure, b.nb_drop, b.nb_local, b.nb_candidates);
  }
};

}  // namespace

AutotuneResult recommend_strategy(const mkp::Instance& inst,
                                  const AutotuneOptions& options) {
  PTS_CHECK(options.probe_rounds >= 1);

  ParallelConfig config;
  config.mode = CooperationMode::kCooperativeAdaptive;
  config.num_slaves = options.num_slaves;
  config.search_iterations = options.probe_rounds;
  config.work_per_slave_round = options.work_per_slave_round;
  config.mix_intensification = true;
  config.seed = options.seed;
  const auto probe = run_parallel_tabu_search(inst, config);
  PTS_CHECK(probe.best_value > 0.0 || inst.num_items() == 0 ||
            probe.best.is_feasible());

  struct Tally {
    double value_sum = 0.0;
    std::size_t rounds = 0;
  };
  std::map<tabu::Strategy, Tally, StrategyLess> tallies;
  for (const auto& log : probe.master.timeline) {
    auto& tally = tallies[log.strategy];
    tally.value_sum += log.final_value;
    ++tally.rounds;
  }

  AutotuneResult result{tabu::Strategy{}, 0.0, 0, tallies.size(),
                        probe.best_value, probe.best};
  const double normalizer = probe.best_value > 0.0 ? probe.best_value : 1.0;
  bool found = false;
  for (const auto& [strategy, tally] : tallies) {
    if (tally.rounds < options.min_rounds_evidence) continue;
    const double mean_normalized =
        tally.value_sum / static_cast<double>(tally.rounds) / normalizer;
    if (!found || mean_normalized > result.mean_normalized_value) {
      result.recommended = strategy;
      result.mean_normalized_value = mean_normalized;
      result.evidence_rounds = tally.rounds;
      found = true;
    }
  }
  if (!found) {
    // Probe too short for any strategy to accumulate evidence: fall back to
    // the most-observed strategy.
    std::size_t best_rounds = 0;
    for (const auto& [strategy, tally] : tallies) {
      if (tally.rounds > best_rounds) {
        best_rounds = tally.rounds;
        result.recommended = strategy;
        result.evidence_rounds = tally.rounds;
        result.mean_normalized_value =
            tally.value_sum / static_cast<double>(tally.rounds) / normalizer;
      }
    }
  }
  return result;
}

}  // namespace pts::parallel
