#pragma once
// The message protocol between the master and the slave search threads —
// the in-process stand-in for the paper's PVM layer (synchronous centralized
// communication scheme, §4.2). One mailbox per slave carries assignments
// down; a shared mailbox carries reports up. The master's "rendezvous" is
// simply gathering P reports before computing the next round.
//
// Everything in a message is moved; the only shared object is the const
// Instance (immutable data is safe to share — Core Guidelines CP.3).

#include <cstdint>
#include <variant>
#include <vector>

#include "mkp/solution.hpp"
#include "obs/anytime.hpp"
#include "obs/counters.hpp"
#include "tabu/engine.hpp"
#include "tabu/strategy.hpp"
#include "util/mailbox.hpp"

namespace pts::parallel {

/// Master -> slave: run one search iteration.
struct Assignment {
  std::size_t round = 0;
  mkp::Solution initial;
  tabu::TsParams params;  ///< strategy + budget, fully resolved by the master
};

/// Master -> slave: shut down.
struct Stop {};

using ToSlave = std::variant<Assignment, Stop>;

/// Slave -> master: the outcome of one search iteration (the paper's
/// "B best solutions" plus what scoring needs).
struct Report {
  std::size_t slave_id = 0;
  std::size_t round = 0;
  double initial_value = 0.0;  ///< C(S_i): cost of the assigned start
  double final_value = 0.0;    ///< C'(S_i): best cost the slave reached
  std::vector<mkp::Solution> elite;  ///< B best, best first
  std::uint64_t moves = 0;
  double seconds = 0.0;
  bool reached_target = false;

  /// Telemetry riding along with the result: the run's counter snapshot and
  /// its improvement curve (sample.source == slave_id, seconds relative to
  /// the run's own start). Empty when telemetry is disabled.
  obs::Counters counters;
  std::vector<obs::AnytimeSample> anytime;
};

/// The two endpoints a slave needs.
struct SlaveChannels {
  Mailbox<ToSlave>* inbox = nullptr;
  Mailbox<Report>* outbox = nullptr;
};

}  // namespace pts::parallel
