#pragma once
// The message protocol between the master and the slave search threads —
// the in-process stand-in for the paper's PVM layer (synchronous centralized
// communication scheme, §4.2). One mailbox per slave carries assignments
// down; a shared mailbox carries reports up. The master's "rendezvous" is
// simply gathering P reports before computing the next round.
//
// Everything in a message is moved; the only shared object is the const
// Instance (immutable data is safe to share — Core Guidelines CP.3).

#include <cstdint>
#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "mkp/solution.hpp"
#include "obs/anytime.hpp"
#include "obs/counters.hpp"
#include "tabu/engine.hpp"
#include "tabu/strategy.hpp"
#include "util/cancel.hpp"
#include "util/mailbox.hpp"

namespace pts::parallel {

/// Master -> slave: run one search iteration.
struct Assignment {
  std::size_t round = 0;
  mkp::Solution initial;
  tabu::TsParams params;  ///< strategy + budget, fully resolved by the master
};

/// Master -> slave: shut down.
struct Stop {};

using ToSlave = std::variant<Assignment, Stop>;

/// Slave -> master: the outcome of one search iteration (the paper's
/// "B best solutions" plus what scoring needs).
struct Report {
  std::size_t slave_id = 0;
  std::size_t round = 0;
  double initial_value = 0.0;  ///< C(S_i): cost of the assigned start
  double final_value = 0.0;    ///< C'(S_i): best cost the slave reached
  std::vector<mkp::Solution> elite;  ///< B best, best first
  std::uint64_t moves = 0;
  double seconds = 0.0;
  bool reached_target = false;

  /// Telemetry riding along with the result: the run's counter snapshot and
  /// its improvement curve (sample.source == slave_id, seconds relative to
  /// the run's own start). Empty when telemetry is disabled.
  obs::Counters counters;
  std::vector<obs::AnytimeSample> anytime;
};

/// Slave -> master: the round died instead of reporting. A slave whose
/// search throws sends this in place of its Report, so the rendezvous still
/// sees one message per slave per round — the master proceeds with P-1
/// results and respawns the slave's record instead of hanging forever on a
/// gather that can never complete (the liveness gap in the paper's §4.2
/// synchronous scheme).
struct SlaveFault {
  std::size_t slave_id = 0;
  std::size_t round = 0;
  std::string what;  ///< exception text, for the audit log
};

/// Everything a slave can send up.
using FromSlave = std::variant<Report, SlaveFault>;

/// Test-only fault injection: when wired into SlaveChannels, the slave
/// throws at the top of any (slave, round) for which should_throw returns
/// true — the hook the fault-tolerance tests use to force SlaveFault paths
/// without bespoke test slaves.
struct FaultInjector {
  std::function<bool(std::size_t slave_id, std::size_t round)> should_throw;
  /// Chaos schedule: seconds to sleep at the top of the round before doing
  /// any work (0 or unset = no stall) — a slow slave the rendezvous must
  /// wait out, distinct from a fault. The chaos harness uses this to verify
  /// that stalls delay rounds without ever losing a message.
  std::function<double(std::size_t slave_id, std::size_t round)> stall_seconds;
};

/// The endpoints a slave needs, plus the stop/fault plumbing.
///
/// Wiring invariant: `inbox` is private to the slave, but every slave's
/// `outbox` must alias ONE shared report mailbox — the master's rendezvous
/// drains exactly that box (channels[0].outbox) for its P messages per
/// round. run_master PTS_CHECKs the aliasing up front, so a caller that
/// wires per-slave report boxes dies with a diagnostic instead of hanging
/// the gather on messages nobody reads.
struct SlaveChannels {
  Mailbox<ToSlave>* inbox = nullptr;
  Mailbox<FromSlave>* outbox = nullptr;
  /// Checked at every inbox wait; a fired token makes an idle slave return
  /// without waiting for Stop.
  CancelToken cancel;
  const FaultInjector* fault = nullptr;  ///< tests only; nullptr in production
};

}  // namespace pts::parallel
