#include "parallel/runner.hpp"

#include <atomic>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "bounds/greedy.hpp"
#include "obs/counters.hpp"
#include "parallel/proc_backend.hpp"
#include "parallel/slave.hpp"
#include "tabu/engine.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace pts::parallel {

std::string to_string(CooperationMode mode) {
  switch (mode) {
    case CooperationMode::kSequential: return "SEQ";
    case CooperationMode::kIndependent: return "ITS";
    case CooperationMode::kCooperativePool: return "CTS1";
    case CooperationMode::kCooperativeAdaptive: return "CTS2";
  }
  return "?";
}

namespace {

std::string ascii_upper(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return out;
}

}  // namespace

Expected<CooperationMode> cooperation_mode_from_string(const std::string& text) {
  const auto upper = ascii_upper(text);
  for (auto mode : {CooperationMode::kSequential, CooperationMode::kIndependent,
                    CooperationMode::kCooperativePool,
                    CooperationMode::kCooperativeAdaptive}) {
    if (upper == to_string(mode)) return mode;
  }
  return Status::invalid_argument("unknown cooperation mode '" + text +
                                  "' (accepted: SEQ, ITS, CTS1, CTS2)");
}

std::string to_string(Backend backend) {
  switch (backend) {
    case Backend::kThread: return "thread";
    case Backend::kProcess: return "proc";
  }
  return "?";
}

Expected<Backend> backend_from_string(const std::string& text) {
  const auto upper = ascii_upper(text);
  if (upper == "THREAD") return Backend::kThread;
  if (upper == "PROC" || upper == "PROCESS") return Backend::kProcess;
  return Status::invalid_argument("unknown backend '" + text +
                                  "' (accepted: thread, proc)");
}

namespace {

ParallelResult run_sequential(const mkp::Instance& inst, const ParallelConfig& config) {
  Stopwatch watch;
  Rng rng(config.seed);

  tabu::TsParams params = config.base_params;
  params.strategy = random_strategy(rng, config.sgp.bounds);
  // The whole ensemble's work budget, converted to moves for this strategy.
  const std::uint64_t total_work = static_cast<std::uint64_t>(config.num_slaves) *
                                   config.search_iterations *
                                   config.work_per_slave_round;
  params.max_moves = std::max<std::uint64_t>(1, total_work / params.strategy.nb_drop);
  params.time_limit_seconds = config.time_limit_seconds;
  params.target_value = config.target_value;
  params.run_to_budget = true;
  params.cancel = config.cancel;

  const auto initial = bounds::greedy_randomized(inst, rng);
  auto ts = tabu::tabu_search(inst, initial, params, rng);

  ParallelResult result{config.mode, std::move(ts.best), ts.best_value, ts.moves,
                        watch.elapsed_seconds(), ts.reached_target,
                        config.cancel.stop_requested() && !ts.reached_target,
                        MasterResult{mkp::Solution(inst)}};
  // Surface the single run's telemetry through the same MasterResult fields
  // the cooperative modes fill, so --metrics / report_io treat SEQ uniformly.
  result.master.counters = ts.counters;
  result.master.counter_stats.observe(ts.counters);
  result.master.anytime = std::move(ts.anytime);
  return result;
}

}  // namespace

ParallelResult run_parallel_tabu_search(const mkp::Instance& inst,
                                        const ParallelConfig& config) {
  PTS_CHECK(config.num_slaves >= 1);
  if (config.mode == CooperationMode::kSequential) {
    return run_sequential(inst, config);
  }

  Stopwatch watch;

  MasterConfig master_config;
  master_config.num_slaves = config.num_slaves;
  master_config.search_iterations = config.search_iterations;
  master_config.work_per_slave_round = config.work_per_slave_round;
  master_config.seed = config.seed;
  master_config.share_solutions = config.mode != CooperationMode::kIndependent;
  master_config.adapt_strategies = config.mode == CooperationMode::kCooperativeAdaptive;
  master_config.isp = config.isp;
  master_config.sgp = config.sgp;
  master_config.base_params = config.base_params;
  master_config.mix_intensification = config.mix_intensification;
  master_config.relink_elites = config.relink_elites;
  master_config.target_value = config.target_value;
  master_config.time_limit_seconds = config.time_limit_seconds;
  master_config.cancel = config.cancel;
  master_config.checkpoint_path = config.checkpoint_path;
  master_config.checkpoint_every_rounds = config.checkpoint_every_rounds;
  master_config.resume = config.resume;
  master_config.degrade_after_faults = config.degrade_after_faults;

  MasterResult master_result{mkp::Solution(inst)};
  ProcStats proc_stats;
  if (config.backend == Backend::kProcess) {
    // Proc backend: the supervisor owns the mailbox facade and the worker
    // processes; run_master drives it exactly as it would drive threads.
    ProcSupervisor supervisor(inst, config.num_slaves, config.seed,
                              config.proc, config.cancel);
    if (auto status = supervisor.start(); !status.ok()) {
      ParallelResult failed{config.mode,
                            mkp::Solution(inst),
                            0.0,
                            0,
                            watch.elapsed_seconds(),
                            false,
                            false,
                            MasterResult{mkp::Solution(inst)}};
      failed.status = std::move(status);
      return failed;
    }
    master_result =
        run_master(inst, supervisor.channels(), master_config, config.observer);
    // Join the pumps (and stop the workers) before sampling the stats so
    // respawn/drop counts are final.
    supervisor.shutdown();
    proc_stats = supervisor.stats();
    master_result.dropped_messages += proc_stats.dropped_messages;
  } else {
    // Thread backend. Wire the mailboxes: one inbox per slave, one shared
    // report box. Every channel carries the run's cancel token (so idle
    // slaves unblock without waiting for Stop) and the test-only fault
    // injector.
    std::vector<std::unique_ptr<Mailbox<ToSlave>>> inboxes;
    inboxes.reserve(config.num_slaves);
    auto reports = std::make_unique<Mailbox<FromSlave>>();
    std::vector<SlaveChannels> channels(config.num_slaves);
    for (std::size_t i = 0; i < config.num_slaves; ++i) {
      inboxes.push_back(std::make_unique<Mailbox<ToSlave>>());
      channels[i] = SlaveChannels{inboxes.back().get(), reports.get(),
                                  config.cancel, config.fault_injector};
    }

    std::atomic<std::uint64_t> slave_drops{0};
    {
      // jthreads join on scope exit; run_master sends Stop to every slave
      // (and a fired cancel token unblocks them too), so the joins cannot
      // block (CP.23/CP.25: threads as scoped containers).
      std::vector<std::jthread> slaves;
      slaves.reserve(config.num_slaves);
      for (std::size_t i = 0; i < config.num_slaves; ++i) {
        slaves.emplace_back(
            [&inst, i, seed = config.seed, ch = channels[i], &slave_drops] {
              slave_drops.fetch_add(slave_loop(inst, i, seed, ch).dropped_messages,
                                    std::memory_order_relaxed);
            });
      }
      master_result = run_master(inst, channels, master_config, config.observer);
    }
    // Slaves are joined: fold their counted drops into the master's tally
    // (see MasterResult::dropped_messages).
    master_result.dropped_messages +=
        slave_drops.load(std::memory_order_relaxed);
  }
  if (obs::kTelemetryCompiled && obs::telemetry_enabled()) {
    master_result.counters[obs::Counter::kDroppedMessages] =
        master_result.dropped_messages;
  }

  ParallelResult result{config.mode,
                        master_result.best,
                        master_result.best_value,
                        master_result.total_moves,
                        watch.elapsed_seconds(),
                        master_result.reached_target,
                        master_result.cancelled,
                        std::move(master_result)};
  result.proc = proc_stats;
  return result;
}

}  // namespace pts::parallel
