#include "parallel/runner.hpp"

#include <atomic>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "bounds/core.hpp"
#include "bounds/greedy.hpp"
#include "obs/counters.hpp"
#include "obs/metrics.hpp"
#include "parallel/proc_backend.hpp"
#include "parallel/slave.hpp"
#include "parallel/snapshot.hpp"
#include "tabu/engine.hpp"
#include "util/check.hpp"
#include "util/simd.hpp"
#include "util/timer.hpp"

namespace pts::parallel {

std::string to_string(CooperationMode mode) {
  switch (mode) {
    case CooperationMode::kSequential: return "SEQ";
    case CooperationMode::kIndependent: return "ITS";
    case CooperationMode::kCooperativePool: return "CTS1";
    case CooperationMode::kCooperativeAdaptive: return "CTS2";
  }
  return "?";
}

namespace {

std::string ascii_upper(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return out;
}

}  // namespace

Expected<CooperationMode> cooperation_mode_from_string(const std::string& text) {
  const auto upper = ascii_upper(text);
  for (auto mode : {CooperationMode::kSequential, CooperationMode::kIndependent,
                    CooperationMode::kCooperativePool,
                    CooperationMode::kCooperativeAdaptive}) {
    if (upper == to_string(mode)) return mode;
  }
  return Status::invalid_argument("unknown cooperation mode '" + text +
                                  "' (accepted: SEQ, ITS, CTS1, CTS2)");
}

std::string to_string(Backend backend) {
  switch (backend) {
    case Backend::kThread: return "thread";
    case Backend::kProcess: return "proc";
  }
  return "?";
}

Expected<Backend> backend_from_string(const std::string& text) {
  const auto upper = ascii_upper(text);
  if (upper == "THREAD") return Backend::kThread;
  if (upper == "PROC" || upper == "PROCESS") return Backend::kProcess;
  return Status::invalid_argument("unknown backend '" + text +
                                  "' (accepted: thread, proc)");
}

namespace {

ParallelResult run_sequential(const mkp::Instance& inst, const ParallelConfig& config) {
  Stopwatch watch;
  Rng rng(config.seed);

  tabu::TsParams params = config.base_params;
  params.strategy = random_strategy(rng, config.sgp.bounds);
  // The whole ensemble's work budget, converted to moves for this strategy.
  const std::uint64_t total_work = static_cast<std::uint64_t>(config.num_slaves) *
                                   config.search_iterations *
                                   config.work_per_slave_round;
  params.max_moves = std::max<std::uint64_t>(1, total_work / params.strategy.nb_drop);
  params.time_limit_seconds = config.time_limit_seconds;
  params.target_value = config.target_value;
  params.run_to_budget = true;
  params.cancel = config.cancel;

  const auto initial = bounds::greedy_randomized(inst, rng);
  auto ts = tabu::tabu_search(inst, initial, params, rng);

  ParallelResult result{config.mode, std::move(ts.best), ts.best_value, ts.moves,
                        watch.elapsed_seconds(), ts.reached_target,
                        config.cancel.stop_requested() && !ts.reached_target,
                        MasterResult{mkp::Solution(inst)}};
  // Surface the single run's telemetry through the same MasterResult fields
  // the cooperative modes fill, so --metrics / report_io treat SEQ uniformly.
  result.master.counters = ts.counters;
  result.master.counter_stats.observe(ts.counters);
  result.master.anytime = std::move(ts.anytime);
  return result;
}

/// The master-driven modes (ITS/CTS1/CTS2) over whichever instance the
/// caller resolved — full or core. Everything above the backend choice is
/// mode-independent wiring of MasterConfig.
ParallelResult run_parallel_impl(const mkp::Instance& inst,
                                 const ParallelConfig& config) {
  Stopwatch watch;

  MasterConfig master_config;
  master_config.num_slaves = config.num_slaves;
  master_config.search_iterations = config.search_iterations;
  master_config.work_per_slave_round = config.work_per_slave_round;
  master_config.seed = config.seed;
  master_config.share_solutions = config.mode != CooperationMode::kIndependent;
  master_config.adapt_strategies = config.mode == CooperationMode::kCooperativeAdaptive;
  master_config.isp = config.isp;
  master_config.sgp = config.sgp;
  master_config.base_params = config.base_params;
  master_config.mix_intensification = config.mix_intensification;
  master_config.relink_elites = config.relink_elites;
  master_config.target_value = config.target_value;
  master_config.time_limit_seconds = config.time_limit_seconds;
  master_config.cancel = config.cancel;
  master_config.checkpoint_path = config.checkpoint_path;
  master_config.checkpoint_every_rounds = config.checkpoint_every_rounds;
  master_config.resume = config.resume;
  master_config.core_section = config.core_section;
  master_config.degrade_after_faults = config.degrade_after_faults;
  master_config.warm_start = config.warm_start;

  MasterResult master_result{mkp::Solution(inst)};
  ProcStats proc_stats;
  if (config.backend == Backend::kProcess) {
    // Proc backend: the supervisor owns the mailbox facade and the worker
    // processes; run_master drives it exactly as it would drive threads.
    ProcSupervisor supervisor(inst, config.num_slaves, config.seed,
                              config.proc, config.cancel);
    if (auto status = supervisor.start(); !status.ok()) {
      ParallelResult failed{config.mode,
                            mkp::Solution(inst),
                            0.0,
                            0,
                            watch.elapsed_seconds(),
                            false,
                            false,
                            MasterResult{mkp::Solution(inst)}};
      failed.status = std::move(status);
      return failed;
    }
    master_result =
        run_master(inst, supervisor.channels(), master_config, config.observer);
    // Join the pumps (and stop the workers) before sampling the stats so
    // respawn/drop counts are final.
    supervisor.shutdown();
    proc_stats = supervisor.stats();
    master_result.dropped_messages += proc_stats.dropped_messages;
  } else {
    // Thread backend. Wire the mailboxes: one inbox per slave, one shared
    // report box. Every channel carries the run's cancel token (so idle
    // slaves unblock without waiting for Stop) and the test-only fault
    // injector.
    std::vector<std::unique_ptr<Mailbox<ToSlave>>> inboxes;
    inboxes.reserve(config.num_slaves);
    auto reports = std::make_unique<Mailbox<FromSlave>>();
    std::vector<SlaveChannels> channels(config.num_slaves);
    for (std::size_t i = 0; i < config.num_slaves; ++i) {
      inboxes.push_back(std::make_unique<Mailbox<ToSlave>>());
      channels[i] = SlaveChannels{inboxes.back().get(), reports.get(),
                                  config.cancel, config.fault_injector};
    }

    std::atomic<std::uint64_t> slave_drops{0};
    {
      // jthreads join on scope exit; run_master sends Stop to every slave
      // (and a fired cancel token unblocks them too), so the joins cannot
      // block (CP.23/CP.25: threads as scoped containers).
      std::vector<std::jthread> slaves;
      slaves.reserve(config.num_slaves);
      for (std::size_t i = 0; i < config.num_slaves; ++i) {
        slaves.emplace_back(
            [&inst, i, seed = config.seed, ch = channels[i], &slave_drops] {
              slave_drops.fetch_add(slave_loop(inst, i, seed, ch).dropped_messages,
                                    std::memory_order_relaxed);
            });
      }
      master_result = run_master(inst, channels, master_config, config.observer);
    }
    // Slaves are joined: fold their counted drops into the master's tally
    // (see MasterResult::dropped_messages).
    master_result.dropped_messages +=
        slave_drops.load(std::memory_order_relaxed);
  }
  if (obs::kTelemetryCompiled && obs::telemetry_enabled()) {
    master_result.counters[obs::Counter::kDroppedMessages] =
        master_result.dropped_messages;
  }

  ParallelResult result{config.mode,
                        master_result.best,
                        master_result.best_value,
                        master_result.total_moves,
                        watch.elapsed_seconds(),
                        master_result.reached_target,
                        master_result.cancelled,
                        std::move(master_result)};
  result.proc = proc_stats;
  return result;
}

/// A run that could not start at all (bad checkpoint, dead backend): default
/// solve fields over `inst`, the failure in `status`.
ParallelResult failed_result(const mkp::Instance& inst,
                             const ParallelConfig& config, Status status) {
  ParallelResult failed{config.mode,
                        mkp::Solution(inst),
                        0.0,
                        0,
                        0.0,
                        false,
                        false,
                        MasterResult{mkp::Solution(inst)}};
  failed.status = std::move(status);
  return failed;
}

/// Resolves ParallelConfig::resume_from_path (when set) into a loaded and
/// validated ParallelConfig::resume, then dispatches to SEQ or the master
/// impl. `inst` here is the instance the run actually searches — under core
/// reduction the caller (run_core_reduced) already swapped in the core, so
/// the checkpoint's solutions decode against the right bit width and its
/// core section is compared against the rederived fixing.
ParallelResult run_resolved(const mkp::Instance& inst,
                            const ParallelConfig& config) {
  if (config.mode == CooperationMode::kSequential) {
    // SEQ has no master, hence no checkpoints: nothing to resume.
    return run_sequential(inst, config);
  }
  if (config.resume_from_path.empty() || config.resume != nullptr) {
    return run_parallel_impl(inst, config);
  }
  auto loaded = snapshot::load_checkpoint(config.resume_from_path, inst);
  if (!loaded) {
    if (loaded.status().code() == StatusCode::kUnavailable) {
      // No checkpoint yet — the first run of a --resume loop starts fresh.
      return run_parallel_impl(inst, config);
    }
    return failed_result(inst, config, loaded.status());
  }
  if (!(loaded->core == config.core_section)) {
    return failed_result(
        inst, config,
        Status::invalid_argument(
            "snapshot: checkpoint core-reduction section does not match this "
            "run (was the checkpoint written with a different --core-reduction "
            "setting, bound, or instance?)"));
  }
  const bool share = config.mode != CooperationMode::kIndependent;
  const bool adapt = config.mode == CooperationMode::kCooperativeAdaptive;
  if (auto status = snapshot::check_compatible(*loaded, inst, config.seed,
                                               config.num_slaves, share, adapt);
      !status.ok()) {
    return failed_result(inst, config, std::move(status));
  }
  ParallelConfig resumed = config;
  resumed.resume = &*loaded;
  return run_parallel_impl(inst, resumed);
}

/// The core-reduction wrapper: reduce, search the residual core with the
/// whole cooperative machinery, lift the result back to full space. All
/// core-space Solutions are replaced before return — the core Instance dies
/// with this frame.
ParallelResult run_core_reduced(const mkp::Instance& inst,
                                const ParallelConfig& config) {
  Stopwatch watch;
  const auto core = bounds::build_core_problem(inst, config.core);

  if (!core.use_core) {
    // LP failed or the fixing was below min_fixed_fraction: run the full
    // instance untouched (checkpoints carry an empty core section).
    ParallelConfig full = config;
    full.core.enabled = false;
    return run_resolved(inst, full);
  }

  if (core.solved_outright()) {
    // Every variable settled by reduced cost — no search to run.
    ParallelResult result{config.mode,
                          core.lift(inst, nullptr),
                          0.0,
                          0,
                          watch.elapsed_seconds(),
                          false,
                          false,
                          MasterResult{mkp::Solution(inst)}};
    result.best_value = result.best.value();
    result.reached_target = config.target_value.has_value() &&
                            result.best_value >= *config.target_value;
    result.core_engaged = true;
    result.core_fixed_zero = core.fixing.fixed_to_zero;
    result.core_fixed_one = core.fixing.fixed_to_one;
    obs::metrics().gauge("core_fixed_vars").set(static_cast<double>(
        result.core_fixed_zero + result.core_fixed_one));
    result.core_banked_profit = core.banked_profit();
    return result;
  }

  const mkp::Instance& core_inst = core.core_instance();
  const double banked = core.banked_profit();

  ParallelConfig core_config = config;
  core_config.core.enabled = false;  // the inner run must not reduce again
  // Everything value-shaped the inner run compares against lives in core
  // coordinates: the target drops by the banked profit...
  if (config.target_value) {
    core_config.target_value = *config.target_value - banked;
  }
  // ...and checkpoints record which reduction their solutions assume.
  core_config.core_section.full_instance_fingerprint =
      snapshot::instance_fingerprint(inst);
  core_config.core_section.status = core.fixing.status;

  ParallelResult result = run_resolved(core_inst, core_config);
  result.core_engaged = true;
  result.core_fixed_zero = core.fixing.fixed_to_zero;
  result.core_fixed_one = core.fixing.fixed_to_one;
  obs::metrics().gauge("core_fixed_vars").set(static_cast<double>(
      result.core_fixed_zero + result.core_fixed_one));
  result.core_banked_profit = banked;
  result.seconds = watch.elapsed_seconds();  // include the reduction itself

  if (!result.status.ok()) {
    // The inner run never started; its default Solutions reference the core
    // instance, which dies here — replace them with full-space defaults.
    result.best = mkp::Solution(inst);
    result.master.best = mkp::Solution(inst);
    return result;
  }

  // Lift the winner and re-base every reported value to full space. The
  // MasterResult's only Solution is `best`; RoundLog and anytime samples
  // carry plain objective values, which shift by the banked profit.
  mkp::Solution lifted = core.lift(inst, &result.best);
  result.best_value = lifted.value();
  result.master.best_value = result.best_value;
  result.best = lifted;
  result.master.best = std::move(lifted);
  for (auto& round : result.master.timeline) {
    round.initial_value += banked;
    round.final_value += banked;
  }
  for (auto& sample : result.master.anytime) sample.value += banked;
  return result;
}

}  // namespace

ParallelResult run_parallel_tabu_search(const mkp::Instance& inst,
                                        const ParallelConfig& config) {
  PTS_CHECK(config.num_slaves >= 1);
  obs::metrics().gauge("simd_dispatch_kind")
      .set(static_cast<double>(simd::active()));
  PTS_CHECK_MSG(config.resume == nullptr || !config.core.enabled,
                "core reduction requires resume_from_path, not a pre-loaded "
                "checkpoint (its solutions are in core coordinates)");
  if (config.core.enabled) return run_core_reduced(inst, config);
  return run_resolved(inst, config);
}

}  // namespace pts::parallel
