#pragma once
// The Strategy Generation Procedure (SGP, §4.2). Pure logic over snapshots —
// no threads — so the adaptation rules are unit-testable in isolation.
//
// Scoring: every strategy starts at score 4 (the paper's value). After each
// search iteration the score is incremented when the slave improved on its
// assigned start (C' > C) and decremented otherwise. At score 0 the strategy
// is retired and retuned using the Hamming spread of the slave's B-best pool:
//
//   clustered pool  -> the slave barely moved: *diversify* it — longer
//                      tenure, more consecutive drops, less local patience;
//   spread-out pool -> the slave roams: *intensify* it — shorter tenure,
//                      fewer drops, more local patience;
//   in-between      -> fresh random strategy.

#include <cstddef>
#include <span>
#include <string>

#include "mkp/solution.hpp"
#include "tabu/strategy.hpp"
#include "util/rng.hpp"

namespace pts::parallel {

struct SgpConfig {
  tabu::StrategyBounds bounds;
  int initial_score = 4;
  /// Pool spread thresholds as fractions of n (mean pairwise Hamming / n).
  double clustered_below = 0.10;
  double spread_above = 0.30;
  /// Multiplicative step applied when retuning (e.g. 1.5 = +50%).
  double retune_factor = 1.5;
};

enum class RetuneKind : std::uint8_t {
  kKept,        ///< score still positive, strategy unchanged
  kDiversified, ///< clustered pool: pushed outward
  kIntensified, ///< spread pool: pulled inward
  kRandomized,  ///< inconclusive pool (or empty): fresh random draw
};

struct SgpDecision {
  tabu::Strategy strategy;
  int score = 0;
  RetuneKind kind = RetuneKind::kKept;
};

[[nodiscard]] std::string to_string(RetuneKind kind);

tabu::Strategy random_strategy(Rng& rng, const tabu::StrategyBounds& bounds);

class StrategyGenerator {
 public:
  explicit StrategyGenerator(const SgpConfig& config = {}) : config_(config) {}

  [[nodiscard]] const SgpConfig& config() const { return config_; }

  /// One scoring + (possibly) retuning step for one slave.
  /// `improved` is C'(S_i) > C(S_i); `pool` the slave's B best solutions;
  /// `num_items` the instance's n (normalizes the spread).
  SgpDecision update(const tabu::Strategy& current, int score, bool improved,
                     std::span<const mkp::Solution> pool, std::size_t num_items,
                     Rng& rng) const;

  /// The retuning rules alone (score handling stripped), exposed for tests.
  SgpDecision retune(const tabu::Strategy& current,
                     std::span<const mkp::Solution> pool, std::size_t num_items,
                     Rng& rng) const;

 private:
  SgpConfig config_;
};

}  // namespace pts::parallel
