#pragma once
// The byte-level codec shared by every binary format in the system: the
// socket wire protocol (parallel/wire.cpp), the crash-safe master snapshot
// (parallel/snapshot.cpp) and the solver-service job journal
// (service/journal.cpp). Extracted from wire.cpp so the on-disk formats
// inherit the exact conventions the wire fuzz tests already pin down.
//
// Writer appends little-endian scalars to a byte buffer. Reader consumes
// them with bounds checking, latching an error instead of reading past the
// end — decode code reads every field unconditionally and checks ok()/done()
// once, so a truncation anywhere surfaces as a single Status at the call
// site (the "total decoder" convention of DESIGN.md §8).

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace pts::parallel::codec {

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }
  void f64_span(std::span<const double> values) {
    for (const double v : values) f64(v);
  }
  void bytes(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(out_); }
  [[nodiscard]] std::size_t size() const { return out_.size(); }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* data = static_cast<const std::uint8_t*>(p);
    // Little-endian host assumed (x86/ARM Linux); static_assert the premise.
    static_assert(std::endian::native == std::endian::little,
                  "binary formats are little-endian; add byte swaps for this host");
    out_.insert(out_.end(), data, data + n);
  }

  std::vector<std::uint8_t> out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() { return take<std::uint8_t>(); }
  std::uint16_t u16() { return take<std::uint16_t>(); }
  std::uint32_t u32() { return take<std::uint32_t>(); }
  std::uint64_t u64() { return take<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() { return std::bit_cast<double>(u64()); }

  std::string str(std::size_t max_len) {
    const auto len = u32();
    if (len > max_len || len > remaining()) {
      ok_ = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return s;
  }

  std::vector<double> f64_vec(std::size_t count) {
    std::vector<double> v;
    if (count > remaining() / sizeof(double)) {
      ok_ = false;
      return v;
    }
    v.reserve(count);
    for (std::size_t k = 0; k < count; ++k) v.push_back(f64());
    return v;
  }

  /// Bound check for a count prefix: every element needs at least
  /// `min_element_bytes` more input, so a count beyond remaining/min is
  /// corrupt regardless of content — reject before reserving anything.
  [[nodiscard]] bool plausible_count(std::uint64_t count,
                                     std::size_t min_element_bytes) {
    if (min_element_bytes == 0) min_element_bytes = 1;
    if (count > remaining() / min_element_bytes) ok_ = false;
    return ok_;
  }

  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }
  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool done() const { return ok_ && pos_ == bytes_.size(); }

 private:
  template <typename T>
  T take() {
    if (remaining() < sizeof(T)) {
      ok_ = false;
      pos_ = bytes_.size();
      return T{};
    }
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace pts::parallel::codec
