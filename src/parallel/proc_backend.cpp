#include "parallel/proc_backend.hpp"

#include <fcntl.h>
#include <signal.h>
#include <spawn.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>
#include <variant>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/slave.hpp"
#include "parallel/wire.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

extern char** environ;

namespace pts::parallel {

namespace {

/// The fd number a worker finds its socket on; pts_worker receives it as
/// `--fd=3`. Fixed so the spawn can dup2 onto it, which clears CLOEXEC on
/// exactly the one descriptor the child is meant to keep.
constexpr int kWorkerFd = 3;

Status errno_status(const char* op) {
  return Status::unavailable(std::string(op) + " failed: " +
                             std::strerror(errno));
}

/// Moves an fd above the low range (keeping CLOEXEC) so it can never collide
/// with the dup2 target kWorkerFd — dup2(fd, fd) would leave CLOEXEC set and
/// the child would exec with its socket already closed.
Expected<int> raise_fd(int fd) {
  if (fd > kWorkerFd + 1) return fd;
  const int raised = ::fcntl(fd, F_DUPFD_CLOEXEC, 10);
  const int saved_errno = errno;
  ::close(fd);
  if (raised < 0) {
    errno = saved_errno;
    return errno_status("fcntl(F_DUPFD_CLOEXEC)");
  }
  return raised;
}

ProcOptions resolve_options(ProcOptions options) {
  if (options.worker_path.empty()) options.worker_path = default_worker_path();
  return options;
}

std::uint32_t env_u32(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return 0;
  return static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
}

}  // namespace

std::string default_worker_path() {
  if (const char* env = std::getenv("PTS_WORKER_BIN"); env && *env) return env;
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    std::string self(buf);
    if (const auto slash = self.rfind('/'); slash != std::string::npos) {
      std::string sibling = self.substr(0, slash + 1) + "pts_worker";
      if (::access(sibling.c_str(), X_OK) == 0) return sibling;
    }
  }
  return "pts_worker";  // last resort: let $PATH resolve it
}

ProcSupervisor::ProcSupervisor(const mkp::Instance& inst,
                               std::size_t num_slaves, std::uint64_t seed,
                               ProcOptions options, CancelToken cancel)
    : inst_(inst),
      num_slaves_(num_slaves),
      seed_(seed),
      options_(resolve_options(std::move(options))),
      cancel_(std::move(cancel)) {
  PTS_CHECK(num_slaves_ > 0);
  master_chaos_.corrupt_ppm = env_u32("PTS_CHAOS_MASTER_CORRUPT_PPM");
  master_chaos_.stall_ms = env_u32("PTS_CHAOS_MASTER_STALL_MS");
  master_chaos_.slow_write = env_u32("PTS_CHAOS_MASTER_SLOW_WRITE") != 0;
  reports_ = std::make_unique<Mailbox<FromSlave>>();
  slots_.resize(num_slaves_);
  inboxes_.reserve(num_slaves_);
  channels_.reserve(num_slaves_);
  for (std::size_t i = 0; i < num_slaves_; ++i) {
    inboxes_.push_back(std::make_unique<Mailbox<ToSlave>>());
    channels_.push_back(
        SlaveChannels{inboxes_[i].get(), reports_.get(), cancel_, nullptr});
  }
}

ProcSupervisor::~ProcSupervisor() { shutdown(); }

void ProcSupervisor::shutdown() {
  // Order matters: fire the teardown token first so a pump blocked in a
  // heartbeat read aborts within one poll slice, then close the inboxes so
  // idle pumps wake (a close still drains any queued Stop first), then join.
  teardown_.request_cancel();
  for (auto& inbox : inboxes_) inbox->close();
  for (auto& pump : pumps_) {
    if (pump.joinable()) pump.join();
  }
  reports_->close();
}

Status ProcSupervisor::start() {
  PTS_CHECK(!started_);
  if (options_.worker_path.find('/') != std::string::npos &&
      ::access(options_.worker_path.c_str(), X_OK) != 0) {
    return Status::invalid_argument("worker binary not executable: " +
                                    options_.worker_path);
  }
  for (std::size_t i = 0; i < num_slaves_; ++i) {
    if (auto status = spawn_worker(i); !status.ok()) {
      for (std::size_t k = 0; k < i; ++k) stop_worker(k, /*send_stop=*/true);
      return status;
    }
  }
  pumps_.reserve(num_slaves_);
  for (std::size_t i = 0; i < num_slaves_; ++i) {
    pumps_.emplace_back([this, i] { pump(i); });
  }
  started_ = true;
  return Status{};
}

ProcStats ProcSupervisor::stats() const {
  std::scoped_lock lock(mutex_);
  return stats_;
}

pid_t ProcSupervisor::worker_pid(std::size_t i) const {
  PTS_CHECK(i < num_slaves_);
  std::scoped_lock lock(mutex_);
  return slots_[i].pid;
}

Status ProcSupervisor::spawn_worker(std::size_t i) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, fds) != 0) {
    return errno_status("socketpair");
  }
  // Both ends carry CLOEXEC, so a respawn racing on another pump thread
  // cannot leak this pair into its own child — a leaked parent end would
  // mask the EOF that detects this worker's death. The dup2 below un-CLOEXECs
  // only the child's end, only in the child.
  auto parent_fd = raise_fd(fds[0]);
  auto child_fd = raise_fd(fds[1]);
  if (!parent_fd || !child_fd) {
    if (parent_fd) ::close(*parent_fd);
    if (child_fd) ::close(*child_fd);
    return parent_fd ? child_fd.status() : parent_fd.status();
  }

  posix_spawn_file_actions_t actions;
  posix_spawn_file_actions_init(&actions);
  posix_spawn_file_actions_adddup2(&actions, *child_fd, kWorkerFd);

  std::string fd_arg = "--fd=" + std::to_string(kWorkerFd);
  char* argv[] = {const_cast<char*>(options_.worker_path.c_str()),
                  fd_arg.data(), nullptr};
  pid_t pid = -1;
  // posix_spawnp (not fork): safe no matter how many pump threads exist, and
  // exec failure (missing binary) is reported here as an error code.
  const int rc = ::posix_spawnp(&pid, options_.worker_path.c_str(), &actions,
                                nullptr, argv, environ);
  posix_spawn_file_actions_destroy(&actions);
  ::close(*child_fd);
  if (rc != 0) {
    ::close(*parent_fd);
    return Status::unavailable("posix_spawn " + options_.worker_path +
                               " failed: " + std::strerror(rc));
  }

  FrameSocket socket(*parent_fd);
  // Handshake: identity, seed, and the problem data — the paper's "send
  // problem data to the slaves" step, repeated on every respawn so a fresh
  // worker is indistinguishable from the one it replaces. The flags byte
  // tells the worker whether to run its own telemetry session and ship
  // TelemetryChunks back (DESIGN.md §6).
  wire::Hello hello{static_cast<std::uint32_t>(i), seed_, inst_};
  if (obs::tracer().enabled()) hello.flags |= wire::kHelloFlagTrace;
  if (obs::telemetry_enabled()) hello.flags |= wire::kHelloFlagMetrics;
  if (auto status = socket.send_frame(wire::encode_hello(hello));
      !status.ok()) {
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    return status;
  }

  obs::metrics().counter("proc_workers_spawned_total").add();
  std::scoped_lock lock(mutex_);
  slots_[i].socket = std::move(socket);
  slots_[i].pid = pid;
  ++stats_.workers_spawned;
  update_workers_alive_locked();
  return Status{};
}

void ProcSupervisor::update_workers_alive_locked() {
  std::size_t alive = 0;
  for (const auto& slot : slots_) {
    if (slot.pid > 0) ++alive;
  }
  obs::metrics().gauge("proc_workers_alive").set(static_cast<double>(alive));
}

void ProcSupervisor::stop_worker(std::size_t i, bool send_stop) {
  pid_t pid = -1;
  {
    std::scoped_lock lock(mutex_);
    pid = slots_[i].pid;
    slots_[i].pid = -1;
    update_workers_alive_locked();
  }
  auto& socket = slots_[i].socket;
  if (send_stop && socket.valid() && pid > 0) {
    (void)socket.send_frame(wire::encode_to_slave(Stop{}));
  }
  socket.close();  // a worker blocked in read sees EOF even if Stop raced
  if (pid <= 0) return;
  // Short grace for an orderly exit, then SIGKILL. An idle worker exits on
  // Stop/EOF within milliseconds; only a wedged one eats the kill.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  for (;;) {
    const pid_t reaped = ::waitpid(pid, nullptr, WNOHANG);
    if (reaped == pid || (reaped < 0 && errno == ECHILD)) return;
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
}

void ProcSupervisor::record_fault(std::size_t i, std::size_t round,
                                  const std::string& why) {
  if (obs::tracer().enabled()) {
    obs::tracer().instant("worker_fault",
                          {{"slave", static_cast<double>(i)},
                           {"round", static_cast<double>(round)}});
  }
  obs::metrics().counter("proc_worker_faults_total").add();
  stop_worker(i, /*send_stop=*/false);  // it already failed us: kill + reap
  // The fault message is what keeps the master's rendezvous alive: one
  // message per (slave, round), dead worker or not.
  if (!reports_->send(SlaveFault{i, round, why})) {
    std::scoped_lock lock(mutex_);
    ++stats_.dropped_messages;
  }
  // No respawn here — that is the policy change. The fault only schedules
  // the earliest next attempt; the pump decides at the next assignment.
  const auto now = std::chrono::steady_clock::now();
  std::scoped_lock lock(mutex_);
  auto& slot = slots_[i];
  const auto window = std::chrono::duration<double>(
      options_.breaker_window_seconds);
  if (slot.consecutive_faults > 0 && now - slot.last_fault_at > window) {
    slot.consecutive_faults = 0;  // slow-burn faults are not a storm
  }
  ++slot.consecutive_faults;
  ++slot.fault_serial;
  slot.last_fault_at = now;

  // Exponential backoff with deterministic jitter. An isolated death (k=1)
  // respawns at the very next assignment — a single OOM kill must not idle
  // the slot — while a streak backs off base * 2^(k-2) capped, plus a
  // [0, base) jitter derived from (seed, slot, fault serial) so co-dying
  // slots never thunder back in lockstep yet tests can reason about the
  // schedule.
  double delay = 0.0;
  if (slot.consecutive_faults > 1) {
    delay = options_.respawn_backoff_base_seconds;
    for (std::size_t k = 2; k < slot.consecutive_faults; ++k) {
      delay *= 2.0;
      if (delay >= options_.respawn_backoff_cap_seconds) break;
    }
    delay = std::min(delay, options_.respawn_backoff_cap_seconds);
    std::uint64_t jitter_state = seed_ ^
                                 (static_cast<std::uint64_t>(i) << 32) ^
                                 slot.fault_serial;
    const double jitter01 =
        static_cast<double>(splitmix64(jitter_state) >> 11) * 0x1.0p-53;
    delay += jitter01 * options_.respawn_backoff_base_seconds;
  }
  slot.respawn_not_before =
      now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(delay));

  if (options_.breaker_threshold > 0 && !slot.breaker_open &&
      slot.consecutive_faults >= options_.breaker_threshold) {
    slot.breaker_open = true;
    slot.breaker_until =
        now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(
                      options_.breaker_cooloff_seconds));
    ++stats_.breaker_opens;
    obs::metrics().counter("proc_breaker_opens_total").add();
    if (obs::tracer().enabled()) {
      obs::tracer().instant("breaker_open",
                            {{"slave", static_cast<double>(i)},
                             {"faults",
                              static_cast<double>(slot.consecutive_faults)}});
    }
  }
}

bool ProcSupervisor::may_respawn_now(std::size_t i, std::string& reason) {
  const auto now = std::chrono::steady_clock::now();
  std::scoped_lock lock(mutex_);
  auto& slot = slots_[i];
  if (slot.respawns >= options_.max_respawns_per_slave) {
    reason = "worker process unavailable (respawn budget exhausted)";
    return false;
  }
  if (slot.breaker_open) {
    if (now < slot.breaker_until) {
      reason = "worker in circuit-breaker cooloff";
      ++stats_.respawn_backoff_skips;
      obs::metrics().counter("proc_backoff_skips_total").add();
      return false;
    }
    // Half-open: one probe respawn is allowed; success closes the breaker
    // only when the worker later completes a round (see pump).
  }
  if (now < slot.respawn_not_before) {
    reason = "worker in respawn backoff";
    ++stats_.respawn_backoff_skips;
    obs::metrics().counter("proc_backoff_skips_total").add();
    return false;
  }
  return true;
}

Status ProcSupervisor::send_assignment(std::size_t i, Rng& chaos_rng,
                                       std::vector<std::uint8_t> frame) {
  if (!master_chaos_.any()) return slots_[i].socket.send_frame(frame);
  bool injected = false;
  if (master_chaos_.stall_ms > 0) {
    injected = true;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(master_chaos_.stall_ms));
  }
  if (master_chaos_.corrupt_ppm > 0 &&
      chaos_rng.next_below(1'000'000) < master_chaos_.corrupt_ppm &&
      frame.size() > wire::kHeaderBytes) {
    // Flip one payload byte; the header stays valid so the frame reaches the
    // worker's payload decoder — the hard case. The worker's total decoder
    // rejects it, the worker exits, the heartbeat read sees EOF, and the
    // round completes degraded via SlaveFault + respawn.
    injected = true;
    const std::size_t at =
        wire::kHeaderBytes +
        chaos_rng.index(frame.size() - wire::kHeaderBytes);
    frame[at] ^= 0x5A;
  }
  if (injected || master_chaos_.slow_write) {
    obs::metrics().counter("proc_chaos_injections_total").add();
    std::scoped_lock lock(mutex_);
    ++stats_.chaos_injections;
  }
  if (!master_chaos_.slow_write) return slots_[i].socket.send_frame(frame);
  std::span<const std::uint8_t> rest(frame);
  while (!rest.empty()) {
    const std::size_t n = std::min<std::size_t>(rest.size(), 7);
    if (auto status = slots_[i].socket.send_frame(rest.first(n)); !status.ok()) {
      return status;
    }
    rest = rest.subspan(n);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return Status{};
}

void ProcSupervisor::merge_telemetry_chunk(std::size_t i,
                                           const wire::TelemetryChunk& chunk) {
  {
    std::scoped_lock lock(mutex_);
    ++stats_.telemetry_chunks;
  }
  auto& registry = obs::metrics();
  registry.counter("proc_telemetry_chunks_total").add();
  for (const auto& [name, delta] : chunk.counter_deltas) {
    registry.apply_counter_delta(name, delta);
  }
  auto& tr = obs::tracer();
  if (!tr.enabled() || chunk.events.empty()) return;
  registry.counter("proc_telemetry_events_total").add(chunk.events.size());
  bool name_now = false;
  {
    std::scoped_lock lock(mutex_);
    if (!slots_[i].process_named) {
      slots_[i].process_named = true;
      name_now = true;
    }
  }
  const auto pid = static_cast<std::uint32_t>(2 + i);  // master keeps pid 1
  if (name_now) tr.name_process(pid, "pts_worker " + std::to_string(i));
  // Clock offset: the chunk carries the worker's tracer clock as of encode
  // time; sampling ours at merge time aligns the two timelines to within the
  // frame's transit latency (microseconds on a socketpair). Offsets are
  // per-chunk, so drift across a long run is re-anchored every round.
  const std::int64_t offset = tr.now_us() - chunk.worker_now_us;
  for (const auto& incoming : chunk.events) {
    obs::TraceEvent event;
    event.name = obs::intern_name(incoming.name);
    event.phase = incoming.phase;
    event.pid = pid;
    event.tid = incoming.tid;
    event.ts_us = incoming.phase == 'M'
                      ? incoming.ts_us  // metadata is timeless
                      : std::max<std::int64_t>(0, incoming.ts_us + offset);
    event.dur_us = incoming.dur_us;
    event.args.reserve(incoming.args.size());
    for (const auto& [key, value] : incoming.args) {
      event.args.push_back({obs::intern_name(key), value});
    }
    if (incoming.has_detail) {
      event.detail_key = obs::intern_name(incoming.detail_key);
      event.detail = incoming.detail;
    }
    tr.record_event(std::move(event));
  }
}

void ProcSupervisor::pump(std::size_t i) {
  // Slot-local deterministic stream for the master chaos schedule, separated
  // from the worker-side chaos constant so the two schedules decorrelate.
  Rng chaos_rng = Rng(seed_ ^ 0x3A57E25C4A05ULL).derive(i);
  for (;;) {
    auto message = inboxes_[i]->receive(cancel_);
    if (!message || std::holds_alternative<Stop>(*message)) {
      // Stop, a closed inbox, or a fired run token: orderly worker shutdown.
      stop_worker(i, /*send_stop=*/true);
      return;
    }
    const auto& assignment = std::get<Assignment>(*message);

    bool alive = false;
    {
      std::scoped_lock lock(mutex_);
      alive = slots_[i].pid > 0;
    }
    if (!alive) {
      // Dead slot: the recovery policy decides between respawning now and
      // faulting fast. Either way the rendezvous never waits on a ghost —
      // a backoff/breaker fault is immediate and burns no respawn budget.
      std::string reason;
      if (!may_respawn_now(i, reason)) {
        if (!reports_->send(SlaveFault{i, assignment.round, reason})) {
          std::scoped_lock lock(mutex_);
          ++stats_.dropped_messages;
        }
        continue;
      }
      if (auto status = spawn_worker(i); status.ok()) {
        obs::metrics().counter("proc_worker_respawns_total").add();
        std::scoped_lock lock(mutex_);
        ++slots_[i].respawns;
        ++stats_.worker_respawns;
      } else {
        if (!reports_->send(SlaveFault{i, assignment.round,
                                       "worker respawn failed: " +
                                           status.message()})) {
          std::scoped_lock lock(mutex_);
          ++stats_.dropped_messages;
        }
        continue;
      }
    }

    const Stopwatch rtt_watch;
    if (auto status =
            send_assignment(i, chaos_rng, wire::encode_to_slave(*message));
        !status.ok()) {
      record_fault(i, assignment.round,
                   "assignment write failed: " + status.message());
      continue;
    }

    // The heartbeat: a worker owes its reply within worker_timeout_seconds.
    // EOF here is a dead worker (kill -9 lands on this branch); timeout is a
    // hung one; a malformed frame is a corrupt one. All three map onto the
    // same SlaveFault -> respawn path a throwing in-thread slave takes.
    // TelemetryChunk frames may precede the reply: each is folded into the
    // master's tracer/registry, and the read continues for the real reply
    // under the same per-read heartbeat bound.
    auto frame = slots_[i].socket.read_frame(options_.worker_timeout_seconds,
                                             teardown_.token());
    bool chunk_fault = false;
    while (frame && frame->type == wire::MessageType::kTelemetry) {
      auto chunk = wire::decode_telemetry_chunk(frame->payload);
      if (!chunk) {
        // A corrupt chunk is a corrupt worker: same fault path as a corrupt
        // report, and crucially only ONE fault for the round.
        record_fault(i, assignment.round,
                     "telemetry chunk: " + chunk.status().message());
        chunk_fault = true;
        break;
      }
      merge_telemetry_chunk(i, *chunk);
      frame = slots_[i].socket.read_frame(options_.worker_timeout_seconds,
                                          teardown_.token());
    }
    if (chunk_fault) continue;
    if (!frame) {
      if (frame.status().code() == StatusCode::kCancelled) {
        stop_worker(i, /*send_stop=*/false);  // destructor is unwinding
        return;
      }
      record_fault(i, assignment.round, frame.status().message());
      continue;
    }
    auto reply = wire::decode_from_slave(frame->type, frame->payload, inst_);
    if (!reply) {
      record_fault(i, assignment.round, reply.status().message());
      continue;
    }
    // A frame that decodes but claims a foreign identity is still corruption
    // (a flipped byte lands in the slave_id/round fields as easily as in a
    // payload double). Forwarding it would poison the master's rendezvous
    // accounting — or trip its slave_id range check — so it maps onto the
    // same fault path as a frame that fails to decode.
    const auto [claimed_slave, claimed_round] = std::visit(
        [](const auto& m) { return std::make_pair(m.slave_id, m.round); },
        *reply);
    if (claimed_slave != i || claimed_round != assignment.round) {
      record_fault(i, assignment.round,
                   "frame claims foreign (slave, round) identity");
      continue;
    }
    {
      // A completed round is the real health signal: it clears the fault
      // streak and closes a half-open breaker.
      std::scoped_lock lock(mutex_);
      slots_[i].consecutive_faults = 0;
      slots_[i].breaker_open = false;
    }
    // Frame round trip: assignment write through reply decode. The gauge is
    // the freshness signal ("age of the newest heartbeat"); the histogram
    // is the distribution the efficiency accounting wants.
    const double rtt = rtt_watch.elapsed_seconds();
    obs::metrics().histogram("proc_frame_rtt_seconds").record(rtt);
    obs::metrics().gauge("proc_heartbeat_age_seconds").set(rtt);
    if (!reports_->send(*std::move(reply))) {
      std::scoped_lock lock(mutex_);
      ++stats_.dropped_messages;
    }
  }
}

namespace {

/// Worker-side chaos schedule, parsed from the environment so the chaos
/// harness (tests/dist, bench/soak_chaos) can misbehave a real pts_worker
/// without a special build. All off by default; see DESIGN.md §9.
struct ChaosSettings {
  std::uint32_t crash_ppm = 0;    ///< P(_exit(9) on assignment) * 1e6
  std::uint32_t corrupt_ppm = 0;  ///< P(flip a report payload byte) * 1e6
  std::uint32_t stall_ms = 0;     ///< sleep before every report
  bool slow_write = false;        ///< trickle report frames in small chunks

  [[nodiscard]] bool any() const {
    return crash_ppm > 0 || corrupt_ppm > 0 || stall_ms > 0 || slow_write;
  }

  static std::uint32_t env_u32(const char* name) {
    const char* value = std::getenv(name);
    if (value == nullptr || *value == '\0') return 0;
    return static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
  }

  static ChaosSettings from_env() {
    ChaosSettings s;
    s.crash_ppm = env_u32("PTS_CHAOS_CRASH_PPM");
    s.corrupt_ppm = env_u32("PTS_CHAOS_CORRUPT_PPM");
    s.stall_ms = env_u32("PTS_CHAOS_STALL_MS");
    s.slow_write = env_u32("PTS_CHAOS_SLOW_WRITE") != 0;
    return s;
  }
};

/// Decorates the worker's transport with scheduled misbehavior. Every fault
/// mode lands on a supervisor path the production code must already handle:
/// crash -> EOF, corrupt frame -> decode failure, stall -> heartbeat
/// timeout, slow write -> framed read reassembly.
class ChaosTransport final : public Transport {
 public:
  ChaosTransport(SocketTransport inner, FrameSocket& socket,
                 ChaosSettings settings, Rng rng)
      : inner_(inner), socket_(&socket), settings_(settings), rng_(rng) {}

  [[nodiscard]] std::optional<ToSlave> receive(const CancelToken& token) override {
    auto message = inner_.receive(token);
    if (message && std::holds_alternative<Assignment>(*message) &&
        roll(settings_.crash_ppm)) {
      // The scheduled "kill": from the supervisor's side indistinguishable
      // from an OOM kill or a kernel-delivered SIGKILL mid-round.
      std::_Exit(9);
    }
    return message;
  }

  [[nodiscard]] bool send(FromSlave message) override {
    if (settings_.stall_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(settings_.stall_ms));
    }
    const bool corrupt = roll(settings_.corrupt_ppm);
    if (!corrupt && !settings_.slow_write) return inner_.send(std::move(message));
    auto frame = wire::encode_from_slave(message);
    if (corrupt && frame.size() > wire::kHeaderBytes) {
      // Flip one payload byte; the header stays valid so the frame passes
      // header checks and dies in the payload decoder (the hard case).
      const std::size_t at =
          wire::kHeaderBytes +
          static_cast<std::size_t>(rng_.index(frame.size() - wire::kHeaderBytes));
      frame[at] ^= 0x5A;
    }
    if (!settings_.slow_write) return socket_->send_frame(frame).ok();
    std::span<const std::uint8_t> rest(frame);
    while (!rest.empty()) {
      const std::size_t n = std::min<std::size_t>(rest.size(), 7);
      if (!socket_->send_frame(rest.first(n)).ok()) return false;
      rest = rest.subspan(n);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
  }

 private:
  [[nodiscard]] bool roll(std::uint32_t ppm) {
    if (ppm == 0) return false;
    return rng_.next_below(1'000'000) < ppm;
  }

  SocketTransport inner_;
  FrameSocket* socket_;
  ChaosSettings settings_;
  Rng rng_;
};

/// Worker-side half of the cross-process aggregation: before every outgoing
/// report/fault, drain the worker's tracer and metrics registry and ship the
/// batch as a kTelemetry frame. Wraps OUTERMOST (outside chaos), so the
/// chunk goes out clean before a possibly chaos-mangled report — telemetry
/// must observe the chaos, not be destroyed by it.
class TelemetryChunkTransport final : public Transport {
 public:
  TelemetryChunkTransport(Transport& inner, FrameSocket& socket,
                          std::uint32_t slave_id)
      : inner_(&inner), socket_(&socket), slave_id_(slave_id) {}

  [[nodiscard]] std::optional<ToSlave> receive(const CancelToken& token) override {
    return inner_->receive(token);
  }

  [[nodiscard]] bool send(FromSlave message) override {
    obs::metrics().counter("worker_reports_total").add();
    ship_chunk();
    return inner_->send(std::move(message));
  }

 private:
  void ship_chunk() {
    wire::TelemetryChunk chunk;
    chunk.slave_id = slave_id_;
    auto& tr = obs::tracer();
    chunk.worker_now_us = tr.now_us();
    if (tr.enabled()) {
      for (auto& event : tr.drain()) {
        wire::ChunkEvent out;
        out.name = event.name;
        out.phase = event.phase;
        out.tid = event.tid;
        out.ts_us = event.ts_us;
        out.dur_us = event.dur_us;
        out.args.reserve(event.args.size());
        for (const auto& arg : event.args) {
          out.args.emplace_back(arg.key, arg.value);
        }
        if (event.detail_key != nullptr) {
          out.has_detail = true;
          out.detail_key = event.detail_key;
          out.detail = std::move(event.detail);
        }
        chunk.events.push_back(std::move(out));
      }
    }
    for (auto& delta : obs::metrics().drain_counter_deltas()) {
      chunk.counter_deltas.emplace_back(std::move(delta.name), delta.delta);
    }
    if (chunk.events.empty() && chunk.counter_deltas.empty()) return;
    // Best-effort: on a dying link the report send right after fails too,
    // and the supervisor maps that to a fault from its own side.
    (void)socket_->send_frame(wire::encode_telemetry_chunk(chunk));
  }

  Transport* inner_;
  FrameSocket* socket_;
  std::uint32_t slave_id_;
};

}  // namespace

int run_worker(int fd) {
  FrameSocket socket(fd);
  auto frame = socket.read_frame(std::nullopt);
  if (!frame || frame->type != wire::MessageType::kHello) return 2;
  auto hello = wire::decode_hello(frame->payload);
  if (!hello) return 2;
  // The Hello flags mirror the master's telemetry state into this process:
  // the kill switch tracks the master's, and tracing starts a worker-side
  // timeline whose events ship back in TelemetryChunks.
  const bool want_trace = (hello->flags & wire::kHelloFlagTrace) != 0;
  const bool want_metrics = (hello->flags & wire::kHelloFlagMetrics) != 0;
  obs::set_telemetry_enabled(want_metrics || want_trace);
  if (want_trace) obs::tracer().set_enabled(true);
  SocketTransport transport(socket, hello->instance);
  // Drops counted by the loop have nowhere to go from a dying link; the
  // supervisor observes the same event from its side of the socket.
  const auto chaos = ChaosSettings::from_env();
  if (chaos.any()) {
    ChaosTransport chaotic(transport, socket, chaos,
                           Rng(hello->seed ^ 0xC4A05C4A05ULL)
                               .derive(hello->slave_id));
    if (want_trace || want_metrics) {
      TelemetryChunkTransport shipping(chaotic, socket, hello->slave_id);
      (void)slave_loop(hello->instance, hello->slave_id, hello->seed, shipping);
    } else {
      (void)slave_loop(hello->instance, hello->slave_id, hello->seed, chaotic);
    }
    return 0;
  }
  if (want_trace || want_metrics) {
    TelemetryChunkTransport shipping(transport, socket, hello->slave_id);
    (void)slave_loop(hello->instance, hello->slave_id, hello->seed, shipping);
    return 0;
  }
  (void)slave_loop(hello->instance, hello->slave_id, hello->seed, transport);
  return 0;
}

}  // namespace pts::parallel
