#pragma once
// Run-report serialization: the master's timeline and summary as CSV, so a
// run can be archived or plotted without re-running. Consumed by the
// parameter_tuning example (--csv-out) and available to downstream users.

#include <iosfwd>
#include <string>

#include "parallel/master.hpp"
#include "parallel/runner.hpp"

namespace pts::parallel {

/// One row per (round, slave):
/// round,slave,tenure,nb_drop,nb_local,nb_candidates,init_kind,
/// initial_value,final_value,score_after,retune,moves,seconds
void timeline_to_csv(std::ostream& out, const MasterResult& result);

/// Key-value summary block (mode-agnostic): best_value, total_moves,
/// rounds_completed, retunes, injections, restarts, relinks, idle seconds.
void summary_to_csv(std::ostream& out, const ParallelResult& result);

/// Merged telemetry counters, one row per counter:
/// counter,total,snapshots,mean,min,max
void counters_to_csv(std::ostream& out, const MasterResult& result);

/// The stitched anytime curve, one row per sample (source -1 = the global
/// best-so-far envelope): source,seconds,work_units,value
void anytime_to_csv(std::ostream& out, const MasterResult& result);

/// Writes <prefix>-timeline.csv and <prefix>-summary.csv, plus
/// <prefix>-counters.csv / <prefix>-anytime.csv when the run carries
/// telemetry (skipped when empty so pre-telemetry consumers see no change),
/// and <prefix>-latency.csv (the metrics registry's histogram table —
/// round/frame/checkpoint/job latencies with p50/p90/p99) when any latency
/// histogram recorded a sample.
void write_report_files(const std::string& path_prefix, const ParallelResult& result);

}  // namespace pts::parallel
