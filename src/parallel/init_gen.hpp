#pragma once
// The Initial Solution generation Procedure (ISP, §4.2). For each slave the
// next starting solution is, in order of precedence:
//
//   1. its own best solution from the last search iteration;
//   2. the global best S* when the slave's best is worth less than
//      alpha * C(S*) — weak solutions are evicted from the pool and replaced
//      by the global best ("macro intensification");
//   3. a fresh random feasible solution when the slave's start has not
//      changed for `stagnation_rounds` rounds ("macro diversification").
//
// Pure logic over snapshots; no threads.

#include <cstdint>
#include <optional>
#include <string>

#include "mkp/solution.hpp"
#include "util/rng.hpp"

namespace pts::parallel {

struct IspConfig {
  double alpha = 0.95;  ///< the paper's fraction of the global best cost
  std::size_t stagnation_rounds = 3;
};

enum class InitKind : std::uint8_t {
  kOwnBest,     ///< rule 1
  kGlobalBest,  ///< rule 2 (injection)
  kRandom,      ///< rule 3 (restart)
};

struct IspDecision {
  mkp::Solution initial;
  InitKind kind = InitKind::kOwnBest;
};

[[nodiscard]] std::string to_string(InitKind kind);

class InitialSolutionGenerator {
 public:
  explicit InitialSolutionGenerator(const IspConfig& config = {}) : config_(config) {}

  [[nodiscard]] const IspConfig& config() const { return config_; }

  /// `own_best`: the slave's best from its last report (nullopt when the
  /// slave produced nothing usable). `global_best` must be feasible.
  /// `rounds_unchanged`: rounds the slave's start has been the same.
  IspDecision next_initial(const std::optional<mkp::Solution>& own_best,
                           const mkp::Solution& global_best,
                           std::size_t rounds_unchanged, Rng& rng) const;

 private:
  IspConfig config_;
};

}  // namespace pts::parallel
