#pragma once
// The paper's announced future extension (§6): replace the centralized
// synchronous master-slave scheme with a decentralized asynchronous one.
//
// Design: P peer threads, no master, no rendezvous. Each peer runs short
// tabu-search bursts. After every burst it broadcasts its best solution to
// every other peer's mailbox and drains its own, adopting the best incoming
// solution as its next start when that solution beats its own by the
// adoption threshold. Strategy adaptation is local: a peer whose burst
// failed to improve retunes itself (the same clustered/spread rule the
// master uses, applied to its own elite pool).
//
// Peers never block on each other — the asynchrony the paper wanted — and
// determinism is traded away: message arrival order depends on scheduling.
// Results remain reproducible in distribution, not bitwise.

#include <cstdint>
#include <optional>
#include <string>

#include "mkp/instance.hpp"
#include "obs/counters.hpp"
#include "parallel/strategy_gen.hpp"
#include "tabu/strategy.hpp"
#include "util/cancel.hpp"
#include "util/status.hpp"

namespace pts::parallel {

/// Who a peer broadcasts to after each burst — the communication-topology
/// axis of the cooperative-search design space (Toulouse/Crainic/Gendreau,
/// the paper's ref. [11]: "communication issues in designing cooperative
/// multithread parallel searches").
enum class AsyncTopology : std::uint8_t {
  kFullBroadcast,  ///< everyone tells everyone (highest traffic)
  kRing,           ///< peer i tells peer (i+1) mod P only
  kRandomPeer,     ///< one uniformly random other peer per burst
};

[[nodiscard]] std::string to_string(AsyncTopology topology);

/// Parses the to_string() names ("broadcast", "ring", "random-peer"),
/// case-insensitively, so flags round-trip with printed output.
[[nodiscard]] Expected<AsyncTopology> topology_from_string(const std::string& text);

struct AsyncConfig {
  std::size_t num_peers = 8;
  std::uint64_t seed = 1;
  std::size_t bursts_per_peer = 10;
  std::uint64_t work_per_burst = 20'000;  ///< move*nb_drop units
  AsyncTopology topology = AsyncTopology::kFullBroadcast;
  /// Adopt an incoming solution when it beats the peer's own best by this
  /// relative margin (0 = adopt any strictly better).
  double adoption_margin = 0.0;
  SgpConfig sgp;
  tabu::TsParams base_params;
  std::optional<double> target_value;
  double time_limit_seconds = 0.0;
  /// Cooperative stop, checked between bursts and inside each burst's
  /// engine loop. Default token = never stops.
  CancelToken cancel;
};

struct AsyncResult {
  mkp::Solution best;
  double best_value = 0.0;
  std::uint64_t total_moves = 0;
  double seconds = 0.0;
  bool reached_target = false;
  bool cancelled = false;  ///< AsyncConfig::cancel fired before the bursts ran out

  std::uint64_t broadcasts = 0;
  std::uint64_t adoptions = 0;
  std::uint64_t self_retunes = 0;

  /// Telemetry: counter totals merged over every peer's bursts (empty when
  /// telemetry is disabled).
  obs::Counters counters;
};

AsyncResult run_async_swarm(const mkp::Instance& inst, const AsyncConfig& config);

}  // namespace pts::parallel
