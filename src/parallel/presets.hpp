#pragma once
// Named configurations: sensible starting points for the parallel search so
// downstream users do not re-derive budgets from scratch. Each preset is a
// plain function returning a ParallelConfig — callers adjust fields after.

#include <optional>
#include <string>
#include <vector>

#include "mkp/instance.hpp"
#include "parallel/runner.hpp"

namespace pts::parallel {

/// ~1 second on a typical core for a 10x250 instance; good for smoke runs
/// and interactive use.
ParallelConfig preset_quick(std::uint64_t seed = 1);

/// The defaults the repository's benchmarks use: 4 slaves, mixed §3.2
/// intensification, a dozen short rounds.
ParallelConfig preset_balanced(std::uint64_t seed = 1);

/// Many rounds, more slaves, bigger budgets — for final-quality runs.
ParallelConfig preset_thorough(std::uint64_t seed = 1);

/// As close to the paper's §5 setup as this codebase gets: P = 16 slaves
/// (the Alpha farm's width), synchronous rounds, score-4 SGP, both
/// intensification procedures in rotation.
ParallelConfig preset_paper(std::uint64_t seed = 1);

/// Scale a preset's per-round budget to the instance (work grows with n*m
/// so bigger problems get proportionally more moves).
void scale_budget_to_instance(ParallelConfig& config, const mkp::Instance& inst);

/// Lookup by name ("quick", "balanced", "thorough", "paper"); nullopt for
/// unknown names. `known_preset_names()` lists them for CLI help text.
std::optional<ParallelConfig> preset_by_name(const std::string& name,
                                             std::uint64_t seed = 1);
std::vector<std::string> known_preset_names();

}  // namespace pts::parallel
