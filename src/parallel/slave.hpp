#pragma once
// The slave process (§3, Figure 1 executor): wait for an Assignment, run one
// tabu search, report the B best solutions, repeat until Stop (or until the
// channel's cancel token fires while idle). A round that throws is reported
// as a SlaveFault rather than swallowed, so the master's rendezvous always
// completes. Each assignment's randomness derives deterministically from
// (seed, slave_id, round), so a parallel run is reproducible regardless of
// thread interleaving — and regardless of transport: the same loop runs over
// in-proc mailboxes (thread backend) and over a socket inside a pts_worker
// process (proc backend).

#include <cstdint>

#include "mkp/instance.hpp"
#include "parallel/comm.hpp"
#include "parallel/transport.hpp"

namespace pts::parallel {

/// What a finished slave loop hands back to its harness. A send can fail
/// when the link closed underneath us (an orderly teardown racing the last
/// report); the loop discards the message but counts it — the runner folds
/// the counts into MasterResult::dropped_messages, never silently.
struct SlaveLoopStats {
  std::uint64_t dropped_messages = 0;
};

/// Blocks until Stop, a closed link, or a fired `cancel` while idle.
/// `fault` is the test-only injector (nullptr in production).
SlaveLoopStats slave_loop(const mkp::Instance& inst, std::size_t slave_id,
                          std::uint64_t seed, Transport& transport,
                          const FaultInjector* fault = nullptr,
                          CancelToken cancel = {});

/// Mailbox-channel convenience: wraps `channels` in a MailboxTransport.
/// Intended as a std::jthread body (the thread backend's slaves).
SlaveLoopStats slave_loop(const mkp::Instance& inst, std::size_t slave_id,
                          std::uint64_t seed, SlaveChannels channels);

/// One assignment worth of work — what slave_loop does per message, exposed
/// separately so tests can drive a slave without threads.
Report run_assignment(const mkp::Instance& inst, std::size_t slave_id,
                      std::uint64_t seed, const Assignment& assignment);

}  // namespace pts::parallel
