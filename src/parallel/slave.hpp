#pragma once
// The slave process (§3, Figure 1 executor): wait for an Assignment, run one
// tabu search, report the B best solutions, repeat until Stop (or until the
// channel's cancel token fires while idle). A round that throws is reported
// as a SlaveFault rather than swallowed, so the master's rendezvous always
// completes. Each assignment's randomness derives deterministically from
// (seed, slave_id, round), so a parallel run is reproducible regardless of
// thread interleaving.

#include <cstdint>

#include "mkp/instance.hpp"
#include "parallel/comm.hpp"

namespace pts::parallel {

/// Blocks until Stop (or the inbox closes). Intended as a std::jthread body.
void slave_loop(const mkp::Instance& inst, std::size_t slave_id, std::uint64_t seed,
                SlaveChannels channels);

/// One assignment worth of work — what slave_loop does per message, exposed
/// separately so tests can drive a slave without threads.
Report run_assignment(const mkp::Instance& inst, std::size_t slave_id,
                      std::uint64_t seed, const Assignment& assignment);

}  // namespace pts::parallel
