#include "parallel/wire.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

namespace pts::parallel::wire {

// Byte-level primitives live in parallel/codec.hpp, shared with the on-disk
// snapshot and journal formats so the fuzz tests here pin all three down.
using codec::Reader;
using codec::Writer;

namespace {

Status truncated(const char* what) {
  return Status::invalid_argument(std::string("wire: truncated or corrupt ") +
                                  what + " payload");
}

}  // namespace

// ---------------------------------------------------------------------------
// Sub-codecs. put_* appends into an open Writer; get_* consumes from a
// Reader (failures latch in the reader; callers check once).
// ---------------------------------------------------------------------------

void put_solution(Writer& w, const mkp::Solution& solution) {
  w.u32(static_cast<std::uint32_t>(solution.num_items()));
  const auto& words = solution.bits().words();
  w.u32(static_cast<std::uint32_t>(words.size()));
  for (const auto word : words) w.u64(word);
  w.f64(solution.value());
}

Expected<mkp::Solution> get_solution(Reader& r, const mkp::Instance& inst) {
  const auto n_bits = r.u32();
  const auto n_words = r.u32();
  if (!r.ok()) return truncated("solution");
  if (n_bits != inst.num_items()) {
    return Status::invalid_argument(
        "wire: solution is over " + std::to_string(n_bits) +
        " items but the instance has " + std::to_string(inst.num_items()));
  }
  if (n_words != (n_bits + 63) / 64 || !r.plausible_count(n_words, 8)) {
    return truncated("solution bitvec");
  }
  mkp::Solution solution(inst);
  for (std::uint32_t k = 0; k < n_words; ++k) {
    std::uint64_t word = r.u64();
    if (!r.ok()) return truncated("solution bitvec");
    while (word != 0) {
      const auto bit = static_cast<std::size_t>(std::countr_zero(word));
      const std::size_t j = k * 64 + bit;
      if (j >= inst.num_items()) {
        return Status::invalid_argument("wire: solution has bits past item count");
      }
      solution.add(j);
      word &= word - 1;
    }
  }
  const double claimed = r.f64();
  if (!r.ok()) return truncated("solution");
  // Integrity check: the serialized value must match what the bits imply.
  // A mismatch means the frame was corrupted in flight (or the peer runs a
  // different objective) — poisoning the master's incumbent would be silent
  // and permanent, so reject the message instead.
  const double rebuilt = solution.value();
  const double tol = 1e-6 * std::max(1.0, std::abs(rebuilt));
  if (!(std::abs(claimed - rebuilt) <= tol)) {
    return Status::invalid_argument("wire: solution value does not match its bits");
  }
  return solution;
}

void put_strategy(Writer& w, const tabu::Strategy& s) {
  w.u64(s.tabu_tenure);
  w.u64(s.nb_drop);
  w.u64(s.nb_local);
  w.u64(s.nb_candidates);
}

tabu::Strategy get_strategy(Reader& r) {
  tabu::Strategy s;
  s.tabu_tenure = static_cast<std::size_t>(r.u64());
  s.nb_drop = static_cast<std::size_t>(r.u64());
  s.nb_local = static_cast<std::size_t>(r.u64());
  s.nb_candidates = static_cast<std::size_t>(r.u64());
  return s;
}

void put_instance(Writer& w, const mkp::Instance& inst) {
  w.str(inst.name());
  w.u32(static_cast<std::uint32_t>(inst.num_items()));
  w.u32(static_cast<std::uint32_t>(inst.num_constraints()));
  w.f64_span(inst.profits());
  for (std::size_t i = 0; i < inst.num_constraints(); ++i) {
    w.f64_span(inst.weights_row(i));
  }
  w.f64_span(inst.capacities());
  w.u8(inst.known_optimum().has_value() ? 1 : 0);
  w.f64(inst.known_optimum().value_or(0.0));
}

Expected<mkp::Instance> get_instance(Reader& r) {
  auto name = r.str(/*max_len=*/4096);
  const auto n = r.u32();
  const auto m = r.u32();
  if (!r.ok()) return truncated("instance");
  if (n == 0 || m == 0) {
    return Status::invalid_argument("wire: serialized instance is empty");
  }
  // Every matrix entry still has to fit in the remaining payload.
  if (!r.plausible_count(static_cast<std::uint64_t>(n) * m + n + m, 8)) {
    return truncated("instance matrix");
  }
  auto profits = r.f64_vec(n);
  auto weights = r.f64_vec(static_cast<std::size_t>(n) * m);
  auto capacities = r.f64_vec(m);
  const bool has_opt = r.u8() != 0;
  const double opt = r.f64();
  if (!r.ok()) return truncated("instance");
  mkp::Instance inst(std::move(name), std::move(profits), std::move(weights),
                     std::move(capacities));
  if (has_opt) inst.set_known_optimum(opt);
  return inst;
}

void put_fixed_status(Writer& w, std::span<const bounds::FixedValue> status) {
  w.u32(static_cast<std::uint32_t>(status.size()));
  for (const auto value : status) w.u8(static_cast<std::uint8_t>(value));
}

Expected<std::vector<bounds::FixedValue>> get_fixed_status(Reader& r) {
  const auto count = r.u32();
  if (!r.ok() || !r.plausible_count(count, 1)) {
    return truncated("fixing status");
  }
  std::vector<bounds::FixedValue> status;
  status.reserve(count);
  for (std::uint32_t k = 0; k < count; ++k) {
    const auto byte = r.u8();
    if (byte > static_cast<std::uint8_t>(bounds::FixedValue::kOne)) {
      return Status::invalid_argument(
          "wire: fixing status byte is not a FixedValue");
    }
    status.push_back(static_cast<bounds::FixedValue>(byte));
  }
  if (!r.ok()) return truncated("fixing status");
  return status;
}

namespace {

void put_params(Writer& w, const tabu::TsParams& p) {
  put_strategy(w, p.strategy);
  w.u64(p.nb_div);
  w.u64(p.nb_int);
  w.u64(p.b_best);
  w.u8(static_cast<std::uint8_t>(p.intensification));
  w.u64(p.oscillation_depth);
  w.u8(static_cast<std::uint8_t>(p.tenure_control));
  w.f64(p.high_frequency);
  w.f64(p.low_frequency);
  w.u64(p.diversify_hold);
  w.u64(p.max_moves);
  w.f64(p.time_limit_seconds);
  w.u8(p.target_value.has_value() ? 1 : 0);
  w.f64(p.target_value.value_or(0.0));
  w.u8(p.run_to_budget ? 1 : 0);
  // TsParams::cancel deliberately does not travel: a process boundary has no
  // shared stop flag. The proc backend stops workers via Stop frames and, in
  // the limit, SIGKILL (see proc_backend.hpp).
}

tabu::TsParams get_params(Reader& r) {
  tabu::TsParams p;
  p.strategy = get_strategy(r);
  p.nb_div = static_cast<std::size_t>(r.u64());
  p.nb_int = static_cast<std::size_t>(r.u64());
  p.b_best = static_cast<std::size_t>(r.u64());
  p.intensification = static_cast<tabu::IntensificationKind>(r.u8());
  p.oscillation_depth = static_cast<std::size_t>(r.u64());
  p.tenure_control = static_cast<tabu::TenureControl>(r.u8());
  p.high_frequency = r.f64();
  p.low_frequency = r.f64();
  p.diversify_hold = static_cast<std::size_t>(r.u64());
  p.max_moves = r.u64();
  p.time_limit_seconds = r.f64();
  const bool has_target = r.u8() != 0;
  const double target = r.f64();
  if (has_target) p.target_value = target;
  p.run_to_budget = r.u8() != 0;
  return p;
}

void put_counters(Writer& w, const obs::Counters& counters) {
  w.u32(static_cast<std::uint32_t>(obs::kCounterCount));
  for (const auto slot : counters.slots) w.u64(slot);
}

bool get_counters(Reader& r, obs::Counters& counters) {
  const auto count = r.u32();
  // Strict: both ends are built from the same taxonomy; a mismatch means a
  // version skew the header byte should have caught.
  if (count != obs::kCounterCount || !r.plausible_count(count, 8)) return false;
  for (auto& slot : counters.slots) slot = r.u64();
  return r.ok();
}

std::vector<std::uint8_t> finish_frame(MessageType type, Writer payload_writer) {
  auto payload = payload_writer.take();
  PTS_CHECK_MSG(payload.size() <= kMaxPayloadBytes,
                "outgoing frame exceeds kMaxPayloadBytes");
  Writer frame;
  frame.u16(kMagic);
  frame.u8(kVersion);
  frame.u8(static_cast<std::uint8_t>(type));
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  auto out = frame.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

}  // namespace

Expected<FrameHeader> decode_header(std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  FrameHeader header;
  const auto magic = r.u16();
  header.version = r.u8();
  const auto type = r.u8();
  header.payload_size = r.u32();
  if (!r.ok()) return Status::invalid_argument("wire: short frame header");
  if (magic != kMagic) return Status::invalid_argument("wire: bad frame magic");
  if (header.version != kVersion) {
    return Status::invalid_argument("wire: unsupported version " +
                                    std::to_string(header.version) +
                                    " (expected " + std::to_string(kVersion) + ")");
  }
  const bool worker_range =
      type >= static_cast<std::uint8_t>(MessageType::kHello) &&
      type <= static_cast<std::uint8_t>(MessageType::kTelemetry);
  const bool client_range =
      type >= static_cast<std::uint8_t>(MessageType::kSubmitJob) &&
      type <= static_cast<std::uint8_t>(MessageType::kGoodbye);
  const bool peer_range =
      type >= static_cast<std::uint8_t>(MessageType::kPeerHello) &&
      type <= static_cast<std::uint8_t>(MessageType::kPeerReplicateAck);
  if (!worker_range && !client_range && !peer_range) {
    return Status::invalid_argument("wire: unknown message type " +
                                    std::to_string(type));
  }
  header.type = static_cast<MessageType>(type);
  if (header.payload_size > kMaxPayloadBytes) {
    return Status::invalid_argument("wire: payload length " +
                                    std::to_string(header.payload_size) +
                                    " exceeds the frame ceiling");
  }
  return header;
}

std::vector<std::uint8_t> encode_hello(const Hello& hello) {
  Writer w;
  w.u32(hello.slave_id);
  w.u64(hello.seed);
  put_instance(w, hello.instance);
  w.u8(hello.flags);
  return finish_frame(MessageType::kHello, std::move(w));
}

Expected<Hello> decode_hello(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  const auto slave_id = r.u32();
  const auto seed = r.u64();
  if (!r.ok()) return truncated("hello");
  auto inst = get_instance(r);
  if (!inst) return inst.status();
  const auto flags = r.u8();
  if (!r.ok() || !r.done()) return truncated("hello");
  return Hello{slave_id, seed, *std::move(inst), flags};
}

std::vector<std::uint8_t> encode_telemetry_chunk(const TelemetryChunk& chunk) {
  Writer w;
  w.u32(chunk.slave_id);
  w.u64(static_cast<std::uint64_t>(chunk.worker_now_us));
  w.u32(static_cast<std::uint32_t>(chunk.events.size()));
  for (const auto& event : chunk.events) {
    w.str(event.name);
    w.u8(static_cast<std::uint8_t>(event.phase));
    w.u32(event.tid);
    w.u64(static_cast<std::uint64_t>(event.ts_us));
    w.u64(static_cast<std::uint64_t>(event.dur_us));
    w.u32(static_cast<std::uint32_t>(event.args.size()));
    for (const auto& [key, value] : event.args) {
      w.str(key);
      w.f64(value);
    }
    w.u8(event.has_detail ? 1 : 0);
    if (event.has_detail) {
      w.str(event.detail_key);
      w.str(event.detail);
    }
  }
  w.u32(static_cast<std::uint32_t>(chunk.counter_deltas.size()));
  for (const auto& [name, delta] : chunk.counter_deltas) {
    w.str(name);
    w.u64(delta);
  }
  return finish_frame(MessageType::kTelemetry, std::move(w));
}

Expected<TelemetryChunk> decode_telemetry_chunk(
    std::span<const std::uint8_t> payload) {
  Reader r(payload);
  TelemetryChunk chunk;
  chunk.slave_id = r.u32();
  chunk.worker_now_us = static_cast<std::int64_t>(r.u64());
  const auto event_count = r.u32();
  // A serialized event costs at least name-length + fixed fields.
  if (!r.ok() || !r.plausible_count(event_count, 24)) {
    return truncated("telemetry chunk");
  }
  chunk.events.reserve(event_count);
  for (std::uint32_t k = 0; k < event_count; ++k) {
    ChunkEvent event;
    event.name = r.str(/*max_len=*/256);
    const auto phase = r.u8();
    // The tracer only ever emits these phases; anything else is corruption.
    if (phase != 'X' && phase != 'i' && phase != 'C' && phase != 'M') {
      return Status::invalid_argument("wire: telemetry event has unknown phase");
    }
    event.phase = static_cast<char>(phase);
    event.tid = r.u32();
    event.ts_us = static_cast<std::int64_t>(r.u64());
    event.dur_us = static_cast<std::int64_t>(r.u64());
    const auto arg_count = r.u32();
    if (!r.ok() || arg_count > 64 || !r.plausible_count(arg_count, 10)) {
      return truncated("telemetry event args");
    }
    event.args.reserve(arg_count);
    for (std::uint32_t a = 0; a < arg_count; ++a) {
      auto key = r.str(/*max_len=*/256);
      const auto value = r.f64();
      event.args.emplace_back(std::move(key), value);
    }
    event.has_detail = r.u8() != 0;
    if (event.has_detail) {
      event.detail_key = r.str(/*max_len=*/256);
      event.detail = r.str(/*max_len=*/4096);
    }
    if (!r.ok()) return truncated("telemetry event");
    chunk.events.push_back(std::move(event));
  }
  const auto delta_count = r.u32();
  if (!r.ok() || !r.plausible_count(delta_count, 10)) {
    return truncated("telemetry counter deltas");
  }
  chunk.counter_deltas.reserve(delta_count);
  for (std::uint32_t k = 0; k < delta_count; ++k) {
    auto name = r.str(/*max_len=*/256);
    const auto delta = r.u64();
    chunk.counter_deltas.emplace_back(std::move(name), delta);
  }
  if (!r.done()) return truncated("telemetry chunk");
  return chunk;
}

std::vector<std::uint8_t> encode_to_slave(const ToSlave& message) {
  if (std::holds_alternative<Stop>(message)) {
    return finish_frame(MessageType::kStop, Writer{});
  }
  const auto& a = std::get<Assignment>(message);
  Writer w;
  w.u64(a.round);
  put_solution(w, a.initial);
  put_params(w, a.params);
  return finish_frame(MessageType::kAssignment, std::move(w));
}

Expected<ToSlave> decode_to_slave(MessageType type,
                                  std::span<const std::uint8_t> payload,
                                  const mkp::Instance& inst) {
  switch (type) {
    case MessageType::kStop:
      if (!payload.empty()) return truncated("stop");
      return ToSlave{Stop{}};
    case MessageType::kAssignment: {
      Reader r(payload);
      const auto round = static_cast<std::size_t>(r.u64());
      if (!r.ok()) return truncated("assignment");
      auto initial = get_solution(r, inst);
      if (!initial) return initial.status();
      auto params = get_params(r);
      if (!r.done()) return truncated("assignment");
      return ToSlave{Assignment{round, *std::move(initial), params}};
    }
    default:
      return Status::invalid_argument("wire: unexpected master->slave type " +
                                      std::to_string(static_cast<int>(type)));
  }
}

std::vector<std::uint8_t> encode_from_slave(const FromSlave& message) {
  if (const auto* fault = std::get_if<SlaveFault>(&message)) {
    Writer w;
    w.u32(static_cast<std::uint32_t>(fault->slave_id));
    w.u64(fault->round);
    w.str(fault->what);
    return finish_frame(MessageType::kFault, std::move(w));
  }
  const auto& report = std::get<Report>(message);
  Writer w;
  w.u32(static_cast<std::uint32_t>(report.slave_id));
  w.u64(report.round);
  w.f64(report.initial_value);
  w.f64(report.final_value);
  w.u32(static_cast<std::uint32_t>(report.elite.size()));
  for (const auto& solution : report.elite) put_solution(w, solution);
  w.u64(report.moves);
  w.f64(report.seconds);
  w.u8(report.reached_target ? 1 : 0);
  put_counters(w, report.counters);
  w.u32(static_cast<std::uint32_t>(report.anytime.size()));
  for (const auto& sample : report.anytime) {
    w.i32(sample.source);
    w.f64(sample.seconds);
    w.u64(sample.work_units);
    w.f64(sample.value);
  }
  return finish_frame(MessageType::kReport, std::move(w));
}

Expected<FromSlave> decode_from_slave(MessageType type,
                                      std::span<const std::uint8_t> payload,
                                      const mkp::Instance& inst) {
  Reader r(payload);
  switch (type) {
    case MessageType::kFault: {
      SlaveFault fault;
      fault.slave_id = static_cast<std::size_t>(r.u32());
      fault.round = static_cast<std::size_t>(r.u64());
      fault.what = r.str(/*max_len=*/65536);
      if (!r.done()) return truncated("fault");
      return FromSlave{std::move(fault)};
    }
    case MessageType::kReport: {
      Report report;
      report.slave_id = static_cast<std::size_t>(r.u32());
      report.round = static_cast<std::size_t>(r.u64());
      report.initial_value = r.f64();
      report.final_value = r.f64();
      const auto elite_count = r.u32();
      // A solution costs at least its bitvec words on the wire.
      if (!r.plausible_count(elite_count, 8 + inst.num_items() / 8)) {
        return truncated("report elite");
      }
      report.elite.reserve(elite_count);
      for (std::uint32_t k = 0; k < elite_count; ++k) {
        auto solution = get_solution(r, inst);
        if (!solution) return solution.status();
        report.elite.push_back(*std::move(solution));
      }
      report.moves = r.u64();
      report.seconds = r.f64();
      report.reached_target = r.u8() != 0;
      if (!get_counters(r, report.counters)) return truncated("report counters");
      const auto sample_count = r.u32();
      if (!r.plausible_count(sample_count, 28)) return truncated("report anytime");
      report.anytime.reserve(sample_count);
      for (std::uint32_t k = 0; k < sample_count; ++k) {
        obs::AnytimeSample sample;
        sample.source = r.i32();
        sample.seconds = r.f64();
        sample.work_units = r.u64();
        sample.value = r.f64();
        report.anytime.push_back(sample);
      }
      if (!r.done()) return truncated("report");
      return FromSlave{std::move(report)};
    }
    default:
      return Status::invalid_argument("wire: unexpected slave->master type " +
                                      std::to_string(static_cast<int>(type)));
  }
}

std::vector<std::uint8_t> encode_solution(const mkp::Solution& solution) {
  Writer w;
  put_solution(w, solution);
  return w.take();
}

Expected<mkp::Solution> decode_solution(std::span<const std::uint8_t> bytes,
                                        const mkp::Instance& inst) {
  Reader r(bytes);
  auto solution = get_solution(r, inst);
  if (!solution) return solution.status();
  if (!r.done()) return truncated("solution");
  return solution;
}

std::vector<std::uint8_t> encode_strategy(const tabu::Strategy& strategy) {
  Writer w;
  put_strategy(w, strategy);
  return w.take();
}

Expected<tabu::Strategy> decode_strategy(std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  auto strategy = get_strategy(r);
  if (!r.done()) return truncated("strategy");
  return strategy;
}

}  // namespace pts::parallel::wire
