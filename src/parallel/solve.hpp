#pragma once
// The one-call entry point: solve an MKP instance with the full cooperative
// parallel tabu search under a time (or effort) budget, with every knob set
// to the repository's validated defaults. This is the API a downstream user
// who just wants answers should reach for first; everything else in
// parallel/ is for users who want control.

#include <optional>
#include <string>

#include "mkp/instance.hpp"
#include "parallel/runner.hpp"

namespace pts::parallel {

struct SolveOptions {
  /// Wall-time budget. The run may finish earlier on reaching target_value.
  double time_budget_seconds = 2.0;
  /// Named preset governing slaves/rounds shape ("quick", "balanced",
  /// "thorough", "paper"); budgets are then scaled to the instance.
  std::string preset = "balanced";
  std::uint64_t seed = 1;
  std::optional<double> target_value;
  bool relink_elites = true;  ///< the extension earns its keep by default here
};

struct SolveSummary {
  mkp::Solution best;
  double best_value = 0.0;
  double seconds = 0.0;
  std::uint64_t total_moves = 0;
  bool reached_target = false;
  /// Gap to the LP bound in percent (computed once at the end; the LP solve
  /// is skipped — and the value is NaN — for instances with more than
  /// `kLpGapLimit` items to keep solve() predictable).
  double lp_gap_percent = 0.0;

  static constexpr std::size_t kLpGapLimit = 600;
};

/// Aborts (PTS_CHECK) on an unknown preset name.
SolveSummary solve(const mkp::Instance& inst, const SolveOptions& options = {});

}  // namespace pts::parallel
