#pragma once
// The one-call entry point: solve an MKP instance with the full cooperative
// parallel tabu search under a time (or effort) budget, with every knob set
// to the repository's validated defaults. This is the API a downstream user
// who just wants answers should reach for first; everything else in
// parallel/ is for users who want control.

#include <optional>
#include <string>

#include "mkp/instance.hpp"
#include "parallel/runner.hpp"
#include "util/cancel.hpp"
#include "util/status.hpp"

namespace pts::parallel {

struct SolveOptions {
  /// Wall-time budget. The run may finish earlier on reaching target_value.
  double time_budget_seconds = 2.0;
  /// Named preset governing slaves/rounds shape ("quick", "balanced",
  /// "thorough", "paper"); budgets are then scaled to the instance.
  std::string preset = "balanced";
  std::uint64_t seed = 1;
  std::optional<double> target_value;
  bool relink_elites = true;  ///< the extension earns its keep by default here
  /// LP core-problem reduction before the search (ParallelConfig::core):
  /// fix variables by reduced cost and search only the residual core. The
  /// returned best is always full-space. Off by default — it changes the
  /// searched space, so fixed-seed results differ from a non-reduced solve.
  bool core_reduction = false;
  /// Cooperative stop (external cancel and/or deadline); the best found so
  /// far is still returned when it fires.
  CancelToken cancel;
};

struct SolveSummary {
  mkp::Solution best;
  double best_value = 0.0;
  double seconds = 0.0;
  std::uint64_t total_moves = 0;
  bool reached_target = false;
  bool cancelled = false;  ///< SolveOptions::cancel fired before the budget ran out
  /// Gap to the LP bound in percent (computed once at the end; the LP solve
  /// is skipped — and the value is NaN — for instances with more than
  /// `kLpGapLimit` items to keep solve() predictable).
  double lp_gap_percent = 0.0;

  static constexpr std::size_t kLpGapLimit = 600;
};

/// Result-or-error: an unknown preset name returns kInvalidArgument (with
/// the known names in the message) instead of aborting the process — the
/// contract a service embedding this call relies on.
[[nodiscard]] Expected<SolveSummary> solve(const mkp::Instance& inst,
                                           const SolveOptions& options = {});

}  // namespace pts::parallel
