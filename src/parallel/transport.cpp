#include "parallel/transport.hpp"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace pts::parallel {

namespace {

/// Poll slice while waiting for readability: short enough that a fired
/// cancel token is honoured promptly, long enough not to spin.
constexpr int kPollSliceMs = 50;

Status errno_status(const char* op) {
  return Status::unavailable(std::string(op) + " failed: " +
                             std::strerror(errno));
}

}  // namespace

FrameSocket& FrameSocket::operator=(FrameSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void FrameSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status FrameSocket::send_frame(std::span<const std::uint8_t> frame) {
  if (fd_ < 0) return Status::unavailable("send on a closed socket");
  std::size_t sent = 0;
  while (sent < frame.size()) {
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not as a
    // process-killing SIGPIPE — a kill -9'd worker is an expected event.
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status{};
}

Status FrameSocket::read_exact(std::vector<std::uint8_t>& out, std::size_t n) {
  out.resize(n);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd_, out.data() + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return errno_status("read");
    }
    if (r == 0) return Status::unavailable("peer closed the connection");
    got += static_cast<std::size_t>(r);
  }
  return Status{};
}

Expected<wire::Frame> FrameSocket::read_frame(std::optional<double> timeout_seconds,
                                              const CancelToken& cancel) {
  if (fd_ < 0) return Status::unavailable("read on a closed socket");

  // Wait for the first byte under the heartbeat bound. Once a header has
  // started arriving the rest is read blocking: a live peer writes a whole
  // frame promptly, and a dead one hits EOF.
  double waited = 0.0;
  for (;;) {
    if (cancel.stop_requested()) {
      return Status::cancelled("cancelled while waiting for a frame");
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, kPollSliceMs);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return errno_status("poll");
    }
    if (rc > 0) break;  // readable (or HUP — the read below will surface it)
    waited += kPollSliceMs / 1000.0;
    if (timeout_seconds && waited >= *timeout_seconds) {
      return Status::deadline_exceeded("no frame within the heartbeat timeout");
    }
  }

  std::vector<std::uint8_t> header_bytes;
  if (auto status = read_exact(header_bytes, wire::kHeaderBytes); !status.ok()) {
    return status;
  }
  auto header = wire::decode_header(header_bytes);
  if (!header) return header.status();

  wire::Frame frame;
  frame.type = header->type;
  if (header->payload_size > 0) {
    if (auto status = read_exact(frame.payload, header->payload_size);
        !status.ok()) {
      return status;
    }
  }
  return frame;
}

std::optional<ToSlave> SocketTransport::receive(const CancelToken& token) {
  auto frame = socket_->read_frame(std::nullopt, token);
  if (!frame) return std::nullopt;  // EOF / cancel: treated as a closed link
  auto message = wire::decode_to_slave(frame->type, frame->payload, *inst_);
  if (!message) return std::nullopt;  // corrupt directive: stop, don't guess
  return *std::move(message);
}

bool SocketTransport::send(FromSlave message) {
  return socket_->send_frame(wire::encode_from_slave(message)).ok();
}

}  // namespace pts::parallel
