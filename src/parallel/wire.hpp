#pragma once
// Wire format of the distributed backend (DESIGN.md §8): length-prefixed
// binary frames carrying the Section-4 protocol between the master's
// supervisor and a pts_worker process.
//
// Frame layout (all integers little-endian):
//
//   offset 0  u16  magic   0x5054 ("PT")
//   offset 2  u8   version kVersion — bumped on any payload layout change
//   offset 3  u8   type    MessageType
//   offset 4  u32  size    payload byte count (<= kMaxPayloadBytes)
//   offset 8  ...  payload
//
// Doubles travel as IEEE-754 bit patterns (bit-exact round trip), which is
// what makes `--backend=proc` reproduce `--backend=thread` result-for-result
// on a fixed seed: the worker computes on exactly the numbers the master
// serialized, not on a formatted approximation.
//
// Every decoder is total: truncated payloads, bad magic, unsupported
// versions, oversized or inconsistent length prefixes and absurd element
// counts all come back as a Status — never a crash, never an unbounded
// allocation. The frames originate from a child process we spawned, but the
// decoder trusts nothing: a crashing worker can hand us half a frame.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bounds/reduction.hpp"
#include "mkp/instance.hpp"
#include "parallel/codec.hpp"
#include "parallel/comm.hpp"
#include "util/status.hpp"

namespace pts::parallel::wire {

inline constexpr std::uint16_t kMagic = 0x5054;  // "PT"
/// v2: Hello carries a trailing flags byte (telemetry opt-in) and the
/// worker->master direction gains the kTelemetry chunk message.
/// v3: the client/server frame range (kSubmitJob..kGoodbye) joins the
/// protocol — the network front-end (src/net/) speaks the same framed
/// header, so FrameSocket serves both the worker farm and remote clients.
inline constexpr std::uint8_t kVersion = 3;
inline constexpr std::size_t kHeaderBytes = 8;

/// Ceiling on one payload. A corrupt length prefix must be rejected before
/// any allocation happens, so a dying worker cannot OOM the supervisor.
inline constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;

enum class MessageType : std::uint8_t {
  kHello = 1,       ///< master -> worker: identity + problem data
  kAssignment = 2,  ///< master -> worker: one round of work
  kStop = 3,        ///< master -> worker: shut down
  kReport = 4,      ///< worker -> master: round outcome
  kFault = 5,       ///< worker -> master: round died; SlaveFault payload
  kTelemetry = 6,   ///< worker -> master: TelemetryChunk (trace + metrics)

  // -- Client/server range (v3): the network front-end's request/response
  //    protocol. Payload layouts and codecs live in net/protocol.hpp; the
  //    types are registered here so decode_header stays the single
  //    total-decoder gate for every frame a FrameSocket can carry. --
  kSubmitJob = 16,  ///< client -> server: one submission (instance + options)
  kSubmitAck = 17,  ///< server -> client: admission verdict for a submission
  kJobEvent = 18,   ///< server -> client: streamed progress (anytime chunks)
  kJobResult = 19,  ///< server -> client: terminal result of a submission
  kCancelJob = 20,  ///< client -> server: cancel one accepted submission
  kGoodbye = 21,    ///< server -> client: draining / at capacity; no new work

  // -- Cluster peer range (v3): the coordinator/worker-node control
  //    protocol of src/cluster/ (DESIGN.md §11). Payload layouts and codecs
  //    live in cluster/peer_protocol.hpp; registered here so decode_header
  //    stays the single total-decoder gate for every frame a FrameSocket
  //    can carry. Job traffic between nodes rides the client range above —
  //    the peer range carries only membership, heartbeats and journal
  //    replication. --
  kPeerHello = 32,         ///< coordinator -> worker: join handshake
  kPeerWelcome = 33,       ///< worker -> coordinator: identity + applied seq
  kPeerPing = 34,          ///< coordinator -> worker: liveness probe
  kPeerPong = 35,          ///< worker -> coordinator: probe echo + load
  kPeerReplicate = 36,     ///< coordinator -> worker: journal record batch
  kPeerReplicateAck = 37,  ///< worker -> coordinator: applied-through seq
};

/// Validated header fields of one frame.
struct FrameHeader {
  std::uint8_t version = 0;
  MessageType type = MessageType::kStop;
  std::uint32_t payload_size = 0;
};

/// One frame after header validation: its type plus the raw payload.
struct Frame {
  MessageType type = MessageType::kStop;
  std::vector<std::uint8_t> payload;
};

/// Hello.flags bit: the master is tracing — enable the worker's tracer and
/// ship its drained trace events in TelemetryChunks before each report.
inline constexpr std::uint8_t kHelloFlagTrace = 1;
/// Hello.flags bit: the master's telemetry kill switch is on — keep the
/// worker's switch on too and ship its metrics-counter deltas in
/// TelemetryChunks. Cleared when the master runs with telemetry off, so the
/// kill-switch-off baseline pays zero chunk traffic.
inline constexpr std::uint8_t kHelloFlagMetrics = 2;

/// The proc backend's handshake — the paper's "read and send problem data
/// to the slaves" step, performed once per spawned worker (and again on
/// every respawn).
struct Hello {
  std::uint32_t slave_id = 0;
  std::uint64_t seed = 0;
  mkp::Instance instance;
  std::uint8_t flags = 0;
};

/// One trace event in transit inside a TelemetryChunk. Mirrors
/// obs::TraceEvent, but strings are owned — the receiving supervisor interns
/// names back into stable pointers before recording into its tracer.
struct ChunkEvent {
  std::string name;
  char phase = 'i';
  std::uint32_t tid = 0;
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;
  std::vector<std::pair<std::string, double>> args;
  bool has_detail = false;
  std::string detail_key;
  std::string detail;
};

/// Worker -> master telemetry batch (DESIGN.md §6): the trace events the
/// worker recorded since its previous chunk plus the growth of its metrics
/// counters, stamped with the worker's current tracer clock so the
/// supervisor can offset timestamps onto the master timeline.
struct TelemetryChunk {
  std::uint32_t slave_id = 0;
  std::int64_t worker_now_us = 0;  ///< worker tracer clock at encode time
  std::vector<ChunkEvent> events;
  std::vector<std::pair<std::string, std::uint64_t>> counter_deltas;
};

/// Rejects bad magic, unsupported version, and a payload_size beyond
/// kMaxPayloadBytes. `bytes` must hold at least kHeaderBytes.
[[nodiscard]] Expected<FrameHeader> decode_header(
    std::span<const std::uint8_t> bytes);

// -- Encoders. Each returns a complete frame, header included. --

[[nodiscard]] std::vector<std::uint8_t> encode_hello(const Hello& hello);
[[nodiscard]] std::vector<std::uint8_t> encode_to_slave(const ToSlave& message);
[[nodiscard]] std::vector<std::uint8_t> encode_from_slave(const FromSlave& message);
[[nodiscard]] std::vector<std::uint8_t> encode_telemetry_chunk(
    const TelemetryChunk& chunk);

// -- Payload decoders (payload only — the header is consumed by the frame
//    reader). Solutions are rebuilt against `inst`, whose item count must
//    match what was serialized. --

[[nodiscard]] Expected<Hello> decode_hello(std::span<const std::uint8_t> payload);
[[nodiscard]] Expected<ToSlave> decode_to_slave(
    MessageType type, std::span<const std::uint8_t> payload,
    const mkp::Instance& inst);
[[nodiscard]] Expected<FromSlave> decode_from_slave(
    MessageType type, std::span<const std::uint8_t> payload,
    const mkp::Instance& inst);
[[nodiscard]] Expected<TelemetryChunk> decode_telemetry_chunk(
    std::span<const std::uint8_t> payload);

// -- Standalone sub-codecs for the two structured value types the protocol
//    nests (tests and tooling drive these directly). Decoding requires the
//    buffer to be fully consumed. --

[[nodiscard]] std::vector<std::uint8_t> encode_solution(
    const mkp::Solution& solution);
[[nodiscard]] Expected<mkp::Solution> decode_solution(
    std::span<const std::uint8_t> bytes, const mkp::Instance& inst);

[[nodiscard]] std::vector<std::uint8_t> encode_strategy(
    const tabu::Strategy& strategy);
[[nodiscard]] Expected<tabu::Strategy> decode_strategy(
    std::span<const std::uint8_t> bytes);

// -- Open-stream sub-codecs over the shared codec (parallel/codec.hpp).
//    The crash-safe snapshot (parallel/snapshot.cpp) and the job journal
//    (service/journal.cpp) embed these mid-stream inside their own CRC-
//    guarded containers; the frame encoders above wrap the same functions,
//    so one set of byte layouts serves the socket and the disk. get_* latch
//    failures in the reader (or return a Status where rebuilding needs an
//    instance); callers check once, per the total-decoder convention. --

void put_solution(codec::Writer& w, const mkp::Solution& solution);
[[nodiscard]] Expected<mkp::Solution> get_solution(codec::Reader& r,
                                                   const mkp::Instance& inst);

void put_strategy(codec::Writer& w, const tabu::Strategy& strategy);
[[nodiscard]] tabu::Strategy get_strategy(codec::Reader& r);

/// The instance section of the Hello handshake (name, sizes, profits,
/// weights, capacities, known optimum), reusable standalone: the journal
/// persists submitted jobs' instances with it, and the snapshot fingerprints
/// the running instance by hashing these bytes.
void put_instance(codec::Writer& w, const mkp::Instance& inst);
[[nodiscard]] Expected<mkp::Instance> get_instance(codec::Reader& r);

/// Core-reduction fixing status (bounds::FixedValue per original variable),
/// one byte each behind a count. The v2 snapshot embeds it so a resumed
/// run can verify its rederived reduction matches the checkpointed one.
/// Rejects counts that cannot fit the remaining buffer and any byte that is
/// not a FixedValue enumerator.
void put_fixed_status(codec::Writer& w, std::span<const bounds::FixedValue> status);
[[nodiscard]] Expected<std::vector<bounds::FixedValue>> get_fixed_status(
    codec::Reader& r);

}  // namespace pts::parallel::wire
