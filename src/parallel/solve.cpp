#include "parallel/solve.hpp"

#include <cmath>
#include <limits>

#include "bounds/simplex.hpp"
#include "parallel/presets.hpp"
#include "util/stats.hpp"

namespace pts::parallel {

Expected<SolveSummary> solve(const mkp::Instance& inst, const SolveOptions& options) {
  auto preset = preset_by_name(options.preset, options.seed);
  if (!preset) {
    std::string known;
    for (const auto& name : known_preset_names()) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    return Status::invalid_argument("unknown preset '" + options.preset +
                                    "' (known: " + known + ")");
  }
  if (options.time_budget_seconds <= 0.0) {
    return Status::invalid_argument("time_budget_seconds must be positive");
  }

  ParallelConfig config = *preset;
  scale_budget_to_instance(config, inst);
  // The time budget is the binding limit; give the round loop headroom so
  // time, not round count, decides when to stop.
  config.search_iterations = std::max<std::size_t>(config.search_iterations, 1000);
  config.time_limit_seconds = options.time_budget_seconds;
  config.target_value = options.target_value;
  config.relink_elites = options.relink_elites;
  config.core.enabled = options.core_reduction;
  config.cancel = options.cancel;

  const auto result = run_parallel_tabu_search(inst, config);

  SolveSummary summary{result.best,        result.best_value,     result.seconds,
                       result.total_moves, result.reached_target, result.cancelled};
  if (inst.num_items() <= SolveSummary::kLpGapLimit) {
    const auto lp = bounds::solve_lp_relaxation(inst);
    summary.lp_gap_percent = lp.optimal()
                                 ? deviation_percent(summary.best_value, lp.objective)
                                 : std::numeric_limits<double>::quiet_NaN();
  } else {
    summary.lp_gap_percent = std::numeric_limits<double>::quiet_NaN();
  }
  return summary;
}

}  // namespace pts::parallel
