#pragma once
// Facade over the whole parallel system. The four approaches of the paper's
// Table 2 are one driver parameterized by mode:
//
//   SEQ  — one sequential tabu search, random strategy and start, given the
//          ensemble's entire work budget;
//   ITS  — P independent threads, no communication, no retuning;
//   CTS1 — P cooperative threads: solution pooling via the ISP, strategies
//          fixed at their initial random draw;
//   CTS2 — CTS1 plus dynamic strategy setting via the SGP.
//
// All modes consume the same total work budget
// (num_slaves * rounds * work_per_slave_round, in move*nb_drop units), so
// comparisons are work-normalized — the property that survives running on a
// single physical core (DESIGN.md hardware-substitution note).

#include <cstdint>
#include <string>

#include "bounds/core.hpp"
#include "mkp/instance.hpp"
#include "parallel/master.hpp"
#include "parallel/proc_backend.hpp"
#include "util/status.hpp"

namespace pts::parallel {

enum class CooperationMode : std::uint8_t {
  kSequential,           ///< SEQ
  kIndependent,          ///< ITS
  kCooperativePool,      ///< CTS1
  kCooperativeAdaptive,  ///< CTS2
};

[[nodiscard]] std::string to_string(CooperationMode mode);

/// Parses the to_string() names ("SEQ", "ITS", "CTS1", "CTS2"), case-
/// insensitively, so flags round-trip with printed output. The error lists
/// the accepted names — flag parsers surface it verbatim.
[[nodiscard]] Expected<CooperationMode> cooperation_mode_from_string(
    const std::string& text);

/// How the slaves execute. Both backends run the identical master and slave
/// logic with the same per-(slave, round) rng derivation, so on a fixed seed
/// a fault-free run produces the same best value either way.
enum class Backend : std::uint8_t {
  kThread,   ///< slaves are std::jthreads over in-proc mailboxes (default)
  kProcess,  ///< slaves are pts_worker processes over socket frames
};

[[nodiscard]] std::string to_string(Backend backend);

/// Parses "thread" / "proc" (case-insensitive), mirroring --backend flags.
[[nodiscard]] Expected<Backend> backend_from_string(const std::string& text);

struct ParallelConfig {
  CooperationMode mode = CooperationMode::kCooperativeAdaptive;
  std::size_t num_slaves = 8;
  std::size_t search_iterations = 10;
  std::uint64_t work_per_slave_round = 20'000;
  std::uint64_t seed = 1;

  IspConfig isp;
  SgpConfig sgp;
  tabu::TsParams base_params;

  /// Alternate the two §3.2 intensification procedures across slaves
  /// (see MasterConfig::mix_intensification).
  bool mix_intensification = false;

  /// Path-relink elites after each gather (see MasterConfig::relink_elites).
  bool relink_elites = false;

  std::optional<double> target_value;
  double time_limit_seconds = 0.0;

  /// Cooperative stop (external cancel and/or deadline), threaded through
  /// the master's round loop, every mailbox wait, and each slave engine's
  /// inner loop. Default token = never stops.
  CancelToken cancel;

  /// Optional observer of the master's control flow (Fig. 2 structural
  /// tests, progress UIs). Replaces the old raw out-param of
  /// run_parallel_tabu_search; the observer must outlive the run.
  MasterTrace* observer = nullptr;

  /// Test-only fault injection, forwarded to every slave (see comm.hpp).
  /// Thread backend only — a worker process has no in-address-space hook
  /// (kill its pid instead; ProcSupervisor::worker_pid is the test handle).
  const FaultInjector* fault_injector = nullptr;

  /// Slave execution backend; ignored for SEQ (which has no slaves).
  Backend backend = Backend::kThread;

  /// Process-backend knobs (worker binary, heartbeat, respawn budget,
  /// recovery policy); unused by the thread backend.
  ProcOptions proc;

  /// Crash safety (DESIGN.md §9): non-empty = checkpoint the master state
  /// here every `checkpoint_every_rounds` rounds. SEQ has no master and
  /// ignores both. See MasterConfig::checkpoint_path.
  std::string checkpoint_path;
  std::size_t checkpoint_every_rounds = 1;

  /// Resume from an already-loaded checkpoint (caller validates it with
  /// snapshot::check_compatible and keeps it alive for the run). Only usable
  /// when core reduction is off — a core-reduced checkpoint's solutions are
  /// in core coordinates, which the caller cannot validate; use
  /// `resume_from_path` instead and the runner does both steps itself.
  const snapshot::MasterCheckpoint* resume = nullptr;

  /// Resume from a checkpoint FILE. Unlike `resume`, the runner loads and
  /// validates it against the instance it actually searches — which, under
  /// core reduction, is the rederived core, not the full instance — and also
  /// checks the checkpoint's embedded core section (snapshot::CoreSection)
  /// matches the rederived fixing. A missing file is not an error: the run
  /// starts fresh (first run of a --resume loop). Any malformed or
  /// incompatible checkpoint fails the run with a non-OK status.
  std::string resume_from_path;

  /// Retire a slave after this many back-to-back faulted rounds
  /// (see MasterConfig::degrade_after_faults); 0 = never retire.
  std::size_t degrade_after_faults = 0;

  /// Core-problem reduction (bounds/core.hpp): when enabled, fix variables
  /// by LP reduced cost at run start and hand master and slaves the smaller
  /// residual instance; the runner lifts everything back to full space
  /// before returning. Off by default — it changes the searched space, so
  /// fixed-seed trajectories differ from a non-reduced run (values are
  /// lifted, never lost: with gap_eps 0 the optimum survives whenever it
  /// beats the greedy bound).
  bounds::CoreOptions core;

  /// Core-reduction provenance stamped into every checkpoint (see
  /// snapshot::CoreSection). Filled by the runner's core layer; leave
  /// default — setting it by hand only mislabels checkpoints.
  snapshot::CoreSection core_section;

  /// Cross-run warm start (see MasterConfig::warm_start): seeds the fresh-
  /// init path from an earlier run's strategies/scores/initials. Must
  /// outlive the run; ignored by SEQ and by checkpoint resumes. nullptr
  /// keeps the cold start bit-identical to pre-warm-start behavior.
  const WarmStart* warm_start = nullptr;
};

struct ParallelResult {
  CooperationMode mode = CooperationMode::kSequential;
  mkp::Solution best;
  double best_value = 0.0;
  std::uint64_t total_moves = 0;
  double seconds = 0.0;
  bool reached_target = false;
  /// The run stopped because ParallelConfig::cancel fired (the best found
  /// up to that point is still returned).
  bool cancelled = false;

  /// Populated for the master-driven modes (empty for SEQ).
  MasterResult master;

  /// Non-OK when the run could not execute at all — today that means the
  /// proc backend failed to start its workers (missing pts_worker binary,
  /// spawn failure). The solve fields above are then all defaults.
  Status status;

  /// Process-level counters, populated only for Backend::kProcess.
  ProcStats proc;

  // -- Core-reduction telemetry (all zero when ParallelConfig::core is off
  //    or the reduction declined to engage). `best` and `best_value` above
  //    are always full-space regardless. --
  bool core_engaged = false;
  std::size_t core_fixed_zero = 0;
  std::size_t core_fixed_one = 0;
  double core_banked_profit = 0.0;
};

ParallelResult run_parallel_tabu_search(const mkp::Instance& inst,
                                        const ParallelConfig& config);

}  // namespace pts::parallel
