#pragma once
// Facade over the whole parallel system. The four approaches of the paper's
// Table 2 are one driver parameterized by mode:
//
//   SEQ  — one sequential tabu search, random strategy and start, given the
//          ensemble's entire work budget;
//   ITS  — P independent threads, no communication, no retuning;
//   CTS1 — P cooperative threads: solution pooling via the ISP, strategies
//          fixed at their initial random draw;
//   CTS2 — CTS1 plus dynamic strategy setting via the SGP.
//
// All modes consume the same total work budget
// (num_slaves * rounds * work_per_slave_round, in move*nb_drop units), so
// comparisons are work-normalized — the property that survives running on a
// single physical core (DESIGN.md hardware-substitution note).

#include <cstdint>
#include <string>

#include "mkp/instance.hpp"
#include "parallel/master.hpp"

namespace pts::parallel {

enum class CooperationMode : std::uint8_t {
  kSequential,           ///< SEQ
  kIndependent,          ///< ITS
  kCooperativePool,      ///< CTS1
  kCooperativeAdaptive,  ///< CTS2
};

[[nodiscard]] std::string to_string(CooperationMode mode);

struct ParallelConfig {
  CooperationMode mode = CooperationMode::kCooperativeAdaptive;
  std::size_t num_slaves = 8;
  std::size_t search_iterations = 10;
  std::uint64_t work_per_slave_round = 20'000;
  std::uint64_t seed = 1;

  IspConfig isp;
  SgpConfig sgp;
  tabu::TsParams base_params;

  /// Alternate the two §3.2 intensification procedures across slaves
  /// (see MasterConfig::mix_intensification).
  bool mix_intensification = false;

  /// Path-relink elites after each gather (see MasterConfig::relink_elites).
  bool relink_elites = false;

  std::optional<double> target_value;
  double time_limit_seconds = 0.0;
};

struct ParallelResult {
  CooperationMode mode = CooperationMode::kSequential;
  mkp::Solution best;
  double best_value = 0.0;
  std::uint64_t total_moves = 0;
  double seconds = 0.0;
  bool reached_target = false;

  /// Populated for the master-driven modes (empty for SEQ).
  MasterResult master;
};

ParallelResult run_parallel_tabu_search(const mkp::Instance& inst,
                                        const ParallelConfig& config,
                                        MasterTrace* trace = nullptr);

}  // namespace pts::parallel
