#include "parallel/init_gen.hpp"

#include "bounds/greedy.hpp"

namespace pts::parallel {

std::string to_string(InitKind kind) {
  switch (kind) {
    case InitKind::kOwnBest: return "own-best";
    case InitKind::kGlobalBest: return "global-best";
    case InitKind::kRandom: return "random";
  }
  return "?";
}

IspDecision InitialSolutionGenerator::next_initial(
    const std::optional<mkp::Solution>& own_best, const mkp::Solution& global_best,
    std::size_t rounds_unchanged, Rng& rng) const {
  // Rule 3 first: stagnation overrides everything — keeping a stale start
  // alive by injecting the global best would only deepen the rut.
  if (rounds_unchanged >= config_.stagnation_rounds) {
    return {bounds::random_feasible(global_best.instance(), rng), InitKind::kRandom};
  }
  // Rule 2: too weak relative to the global best.
  if (!own_best ||
      own_best->value() < config_.alpha * global_best.value()) {
    return {global_best, InitKind::kGlobalBest};
  }
  // Rule 1: carry on from the slave's own best.
  return {*own_best, InitKind::kOwnBest};
}

}  // namespace pts::parallel
