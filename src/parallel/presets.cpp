#include "parallel/presets.hpp"

#include <algorithm>
#include <cmath>

namespace pts::parallel {

namespace {

ParallelConfig base(std::uint64_t seed) {
  ParallelConfig config;
  config.mode = CooperationMode::kCooperativeAdaptive;
  config.base_params.strategy.nb_local = 25;
  config.mix_intensification = true;
  config.seed = seed;
  return config;
}

}  // namespace

ParallelConfig preset_quick(std::uint64_t seed) {
  auto config = base(seed);
  config.num_slaves = 2;
  config.search_iterations = 4;
  config.work_per_slave_round = 2'000;
  return config;
}

ParallelConfig preset_balanced(std::uint64_t seed) {
  auto config = base(seed);
  config.num_slaves = 4;
  config.search_iterations = 12;
  config.work_per_slave_round = 4'000;
  return config;
}

ParallelConfig preset_thorough(std::uint64_t seed) {
  auto config = base(seed);
  config.num_slaves = 8;
  config.search_iterations = 24;
  config.work_per_slave_round = 10'000;
  return config;
}

ParallelConfig preset_paper(std::uint64_t seed) {
  auto config = base(seed);
  config.num_slaves = 16;  // the farm of 16 Alpha processors
  config.search_iterations = 20;
  config.work_per_slave_round = 5'000;
  config.sgp.initial_score = 4;  // the paper's value (already the default)
  return config;
}

void scale_budget_to_instance(ParallelConfig& config, const mkp::Instance& inst) {
  // Reference shape: 10 x 250. A move costs O(n*m); keep moves-per-round
  // roughly constant in wall time by scaling the work budget with the
  // square root of the cost ratio (bigger problems also need more moves).
  const double cost = static_cast<double>(inst.num_items()) *
                      static_cast<double>(inst.num_constraints());
  const double reference = 250.0 * 10.0;
  const double factor = std::sqrt(std::max(cost / reference, 0.05));
  config.work_per_slave_round = std::max<std::uint64_t>(
      500, static_cast<std::uint64_t>(
               static_cast<double>(config.work_per_slave_round) * factor));
}

std::optional<ParallelConfig> preset_by_name(const std::string& name,
                                             std::uint64_t seed) {
  if (name == "quick") return preset_quick(seed);
  if (name == "balanced") return preset_balanced(seed);
  if (name == "thorough") return preset_thorough(seed);
  if (name == "paper") return preset_paper(seed);
  return std::nullopt;
}

std::vector<std::string> known_preset_names() {
  return {"quick", "balanced", "thorough", "paper"};
}

}  // namespace pts::parallel
