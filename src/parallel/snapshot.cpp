#include "parallel/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "parallel/codec.hpp"
#include "parallel/wire.hpp"
#include "util/crc32.hpp"

namespace pts::parallel::snapshot {

namespace {

using codec::Reader;
using codec::Writer;

constexpr std::uint8_t kMagic[4] = {'P', 'T', 'S', 'C'};

Status corrupt(const char* what) {
  return Status::invalid_argument(std::string("snapshot: truncated or corrupt ") +
                                  what);
}

void put_optional_solution(Writer& w, const std::optional<mkp::Solution>& s) {
  w.u8(s.has_value() ? 1 : 0);
  if (s) wire::put_solution(w, *s);
}

Expected<std::optional<mkp::Solution>> get_optional_solution(
    Reader& r, const mkp::Instance& inst) {
  const bool present = r.u8() != 0;
  if (!r.ok()) return corrupt("solution flag");
  if (!present) return std::optional<mkp::Solution>{};
  auto solution = wire::get_solution(r, inst);
  if (!solution) return solution.status();
  return std::optional<mkp::Solution>{*std::move(solution)};
}

void put_slave(Writer& w, const SlaveState& s) {
  wire::put_strategy(w, s.strategy);
  w.i32(s.score);
  put_optional_solution(w, s.initial);
  w.u32(static_cast<std::uint32_t>(s.b_best.size()));
  for (const auto& solution : s.b_best) wire::put_solution(w, solution);
  w.u64(s.rounds_unchanged);
  w.u64(s.moves_before_round);
  w.u64(s.consecutive_faults);
  w.u8(s.active ? 1 : 0);
}

Expected<SlaveState> get_slave(Reader& r, const mkp::Instance& inst) {
  SlaveState s;
  s.strategy = wire::get_strategy(r);
  s.score = r.i32();
  if (!r.ok()) return corrupt("slave record");
  auto initial = get_optional_solution(r, inst);
  if (!initial) return initial.status();
  s.initial = *std::move(initial);
  const auto b_count = r.u32();
  // A serialized solution costs at least its bitvec words.
  if (!r.plausible_count(b_count, 8 + inst.num_items() / 8)) {
    return corrupt("slave elite pool");
  }
  s.b_best.reserve(b_count);
  for (std::uint32_t k = 0; k < b_count; ++k) {
    auto solution = wire::get_solution(r, inst);
    if (!solution) return solution.status();
    s.b_best.push_back(*std::move(solution));
  }
  s.rounds_unchanged = static_cast<std::size_t>(r.u64());
  s.moves_before_round = r.u64();
  s.consecutive_faults = static_cast<std::size_t>(r.u64());
  s.active = r.u8() != 0;
  if (!r.ok()) return corrupt("slave record");
  return s;
}

std::vector<std::uint8_t> encode_body(const MasterCheckpoint& cp) {
  Writer w;
  w.u32(cp.instance_fingerprint);
  w.u64(cp.seed);
  w.u32(cp.num_slaves);
  w.u8(cp.share_solutions ? 1 : 0);
  w.u8(cp.adapt_strategies ? 1 : 0);
  w.u64(cp.next_round);
  wire::put_solution(w, cp.best);
  for (const auto word : cp.master_rng_state) w.u64(word);
  w.u32(static_cast<std::uint32_t>(cp.slaves.size()));
  for (const auto& slave : cp.slaves) put_slave(w, slave);
  w.u64(cp.total_moves);
  w.f64(cp.elapsed_seconds);
  w.u64(cp.rounds_completed);
  w.u64(cp.strategy_retunes);
  w.u64(cp.global_best_injections);
  w.u64(cp.random_restarts);
  w.u64(cp.relink_improvements);
  w.u64(cp.slave_faults);
  w.u64(cp.slave_respawns);
  // v2 core-reduction section. Always written (we always emit version 2);
  // a disengaged run writes the single 0 flag byte.
  w.u8(cp.core.engaged() ? 1 : 0);
  if (cp.core.engaged()) {
    w.u32(cp.core.full_instance_fingerprint);
    wire::put_fixed_status(w, cp.core.status);
  }
  return w.take();
}

Expected<MasterCheckpoint> decode_body(std::span<const std::uint8_t> body,
                                       std::uint8_t version,
                                       const mkp::Instance& inst) {
  Reader r(body);
  MasterCheckpoint cp(inst);
  cp.instance_fingerprint = r.u32();
  cp.seed = r.u64();
  cp.num_slaves = r.u32();
  cp.share_solutions = r.u8() != 0;
  cp.adapt_strategies = r.u8() != 0;
  cp.next_round = r.u64();
  if (!r.ok()) return corrupt("checkpoint header fields");
  // Reject a foreign file before trusting any solution bits against `inst` —
  // a checkpoint of another instance would otherwise fail with a confusing
  // item-count or value-mismatch error deep inside the solution codec.
  if (cp.instance_fingerprint != instance_fingerprint(inst)) {
    return Status::invalid_argument(
        "snapshot: checkpoint was written for a different instance "
        "(fingerprint mismatch)");
  }
  auto best = wire::get_solution(r, inst);
  if (!best) return best.status();
  cp.best = *std::move(best);
  for (auto& word : cp.master_rng_state) word = r.u64();
  const auto slave_count = r.u32();
  // Each slave record costs at least strategy + score + flags.
  if (!r.plausible_count(slave_count, 4 * 8 + 4)) {
    return corrupt("slave table");
  }
  if (slave_count != cp.num_slaves) {
    return corrupt("slave table (count disagrees with header)");
  }
  cp.slaves.reserve(slave_count);
  for (std::uint32_t k = 0; k < slave_count; ++k) {
    auto slave = get_slave(r, inst);
    if (!slave) return slave.status();
    cp.slaves.push_back(*std::move(slave));
  }
  cp.total_moves = r.u64();
  cp.elapsed_seconds = r.f64();
  cp.rounds_completed = r.u64();
  cp.strategy_retunes = r.u64();
  cp.global_best_injections = r.u64();
  cp.random_restarts = r.u64();
  cp.relink_improvements = r.u64();
  cp.slave_faults = r.u64();
  cp.slave_respawns = r.u64();
  if (version >= 2) {
    const bool engaged = r.u8() != 0;
    if (!r.ok()) return corrupt("core section flag");
    if (engaged) {
      cp.core.full_instance_fingerprint = r.u32();
      if (!r.ok()) return corrupt("core section fingerprint");
      auto status = wire::get_fixed_status(r);
      if (!status) return status.status();
      if (status->empty()) return corrupt("core section (engaged but empty)");
      cp.core.status = *std::move(status);
    }
  }
  if (!r.done()) return corrupt("checkpoint tail");
  return cp;
}

/// write(2) until done; short writes happen on signals even for regular files.
bool write_all(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const auto n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

Status io_error(const std::string& what) {
  return Status::internal("snapshot: " + what + ": " + std::strerror(errno));
}

}  // namespace

std::uint32_t instance_fingerprint(const mkp::Instance& inst) {
  Writer w;
  wire::put_instance(w, inst);
  const auto bytes = w.take();
  return crc32(bytes);
}

std::uint64_t instance_hash64(const mkp::Instance& inst) {
  Writer w;
  wire::put_instance(w, inst);
  const auto bytes = w.take();
  // FNV-1a 64: tiny, stable across platforms, and strong enough for a
  // byte-verified content index.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::vector<std::uint8_t> encode_checkpoint(const MasterCheckpoint& checkpoint) {
  const auto body = encode_body(checkpoint);
  Writer header;
  for (const auto b : kMagic) header.u8(b);
  header.u8(kSnapshotVersion);
  header.u32(crc32(body));
  header.u64(body.size());
  auto out = header.take();
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

Expected<MasterCheckpoint> decode_checkpoint(std::span<const std::uint8_t> bytes,
                                             const mkp::Instance& inst) {
  if (bytes.size() < kSnapshotHeaderBytes) {
    return corrupt("header (file too short)");
  }
  Reader r(bytes.first(kSnapshotHeaderBytes));
  std::uint8_t magic[4];
  for (auto& b : magic) b = r.u8();
  const auto version = r.u8();
  const auto crc = r.u32();
  const auto body_size = r.u64();
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return Status::invalid_argument("snapshot: bad magic (not a checkpoint file)");
  }
  if (version < kSnapshotMinVersion || version > kSnapshotVersion) {
    return Status::invalid_argument(
        "snapshot: unsupported version " + std::to_string(version) +
        " (accepted " + std::to_string(kSnapshotMinVersion) + ".." +
        std::to_string(kSnapshotVersion) + ")");
  }
  if (body_size > kMaxBodyBytes) {
    return Status::invalid_argument("snapshot: body length " +
                                    std::to_string(body_size) +
                                    " exceeds the checkpoint ceiling");
  }
  if (body_size != bytes.size() - kSnapshotHeaderBytes) {
    return corrupt("body (length prefix disagrees with file size)");
  }
  const auto body = bytes.subspan(kSnapshotHeaderBytes);
  if (crc32(body) != crc) {
    return Status::invalid_argument("snapshot: CRC mismatch (corrupt checkpoint)");
  }
  return decode_body(body, version, inst);
}

Status save_checkpoint(const std::string& path,
                       const MasterCheckpoint& checkpoint) {
  if (path.empty()) {
    return Status::invalid_argument("snapshot: empty checkpoint path");
  }
  const auto image = encode_checkpoint(checkpoint);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return io_error("open " + tmp);
  if (!write_all(fd, image)) {
    const auto status = io_error("write " + tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  }
  // fsync before rename: the rename must never become visible while the data
  // behind it is still only in the page cache — that ordering is the whole
  // crash-safety argument.
  if (::fsync(fd) != 0) {
    const auto status = io_error("fsync " + tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const auto status = io_error("rename " + tmp + " -> " + path);
    ::unlink(tmp.c_str());
    return status;
  }
  // Persist the rename itself. Failure here is not fatal to correctness of
  // the file contents (the data is synced), so report success but still try.
  const auto dir = std::filesystem::path(path).parent_path();
  const std::string dir_path = dir.empty() ? "." : dir.string();
  const int dir_fd = ::open(dir_path.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return Status{};
}

Expected<MasterCheckpoint> load_checkpoint(const std::string& path,
                                           const mkp::Instance& inst) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::unavailable("snapshot: no checkpoint at " + path);
    }
    return io_error("open " + path);
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const auto n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      const auto status = io_error("read " + path);
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), buf, buf + n);
    if (bytes.size() > kMaxBodyBytes + kSnapshotHeaderBytes) {
      ::close(fd);
      return Status::invalid_argument(
          "snapshot: file exceeds the checkpoint ceiling");
    }
  }
  ::close(fd);
  return decode_checkpoint(bytes, inst);
}

Status check_compatible(const MasterCheckpoint& checkpoint,
                        const mkp::Instance& inst, std::uint64_t seed,
                        std::size_t num_slaves, bool share_solutions,
                        bool adapt_strategies) {
  if (checkpoint.instance_fingerprint != instance_fingerprint(inst)) {
    return Status::invalid_argument(
        "snapshot: checkpoint was written for a different instance");
  }
  if (checkpoint.seed != seed) {
    return Status::invalid_argument(
        "snapshot: checkpoint seed " + std::to_string(checkpoint.seed) +
        " does not match configured seed " + std::to_string(seed));
  }
  if (checkpoint.num_slaves != num_slaves) {
    return Status::invalid_argument(
        "snapshot: checkpoint has " + std::to_string(checkpoint.num_slaves) +
        " slaves but the run is configured for " + std::to_string(num_slaves));
  }
  if (checkpoint.share_solutions != share_solutions ||
      checkpoint.adapt_strategies != adapt_strategies) {
    return Status::invalid_argument(
        "snapshot: checkpoint cooperation mode does not match the configured "
        "mode");
  }
  return Status{};
}

}  // namespace pts::parallel::snapshot
