#pragma once
// Transport: the seam between the Section-4 message protocol and how the
// bytes actually move. A slave runs the same loop whether its master lives
// in the next thread (MailboxTransport over the in-proc mailboxes) or in
// another process at the end of a stream socket (SocketTransport over
// wire.hpp frames) — the paper's PVM boundary, made pluggable.
//
// The master side of the socket path lives in proc_backend.hpp: the
// supervisor bridges run_master's mailboxes onto per-worker FrameSockets, so
// run_master itself never learns which transport is underneath.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "mkp/instance.hpp"
#include "parallel/comm.hpp"
#include "parallel/wire.hpp"
#include "util/status.hpp"

namespace pts::parallel {

/// A slave's view of its link to the master: where the next directive comes
/// from and where round outcomes go.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Blocks for the next directive. nullopt means the link is closed (or the
  /// token fired) — the slave loop exits as if it had received Stop.
  [[nodiscard]] virtual std::optional<ToSlave> receive(const CancelToken& token) = 0;

  /// Posts a round outcome. Returns false when the link is down and the
  /// message was dropped — callers must count the drop, never ignore it.
  [[nodiscard]] virtual bool send(FromSlave message) = 0;
};

/// In-process transport: the Mailbox pair of SlaveChannels. This is the
/// default `--backend=thread` path — and the reference semantics the socket
/// transport must reproduce.
class MailboxTransport final : public Transport {
 public:
  MailboxTransport(Mailbox<ToSlave>* inbox, Mailbox<FromSlave>* outbox)
      : inbox_(inbox), outbox_(outbox) {
    PTS_CHECK(inbox_ && outbox_);
  }

  [[nodiscard]] std::optional<ToSlave> receive(const CancelToken& token) override {
    return inbox_->receive(token);
  }

  [[nodiscard]] bool send(FromSlave message) override {
    return outbox_->send(std::move(message));
  }

 private:
  Mailbox<ToSlave>* inbox_;
  Mailbox<FromSlave>* outbox_;
};

/// Framed byte pipe over a connected stream socket (Unix socketpair or TCP —
/// anything read()/write() works on). Owns the fd. One frame per message,
/// header validated on the way in (magic, version, type, length ceiling).
///
/// Not internally synchronized: one reader and one writer thread at most
/// (the proc backend's pump is a single thread per worker, so in practice
/// one thread does both).
class FrameSocket {
 public:
  FrameSocket() = default;
  explicit FrameSocket(int fd) : fd_(fd) {}
  ~FrameSocket() { close(); }

  FrameSocket(FrameSocket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  FrameSocket& operator=(FrameSocket&& other) noexcept;
  FrameSocket(const FrameSocket&) = delete;
  FrameSocket& operator=(const FrameSocket&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Closes the fd (idempotent). A blocked peer sees EOF.
  void close();

  /// Writes one already-encoded frame, retrying short writes. Returns
  /// kUnavailable when the peer is gone (EPIPE/closed fd).
  Status send_frame(std::span<const std::uint8_t> frame);

  /// Reads one full frame. `timeout_seconds` bounds the wait for the FIRST
  /// byte (the hung-worker heartbeat bound); nullopt blocks indefinitely.
  /// The wait polls in short slices so `cancel` is honoured within one
  /// slice. Errors: kDeadlineExceeded (timeout), kCancelled (token fired),
  /// kUnavailable (EOF or socket error — a dead peer), kInvalidArgument
  /// (malformed header, from wire::decode_header).
  Expected<wire::Frame> read_frame(std::optional<double> timeout_seconds,
                                   const CancelToken& cancel = {});

 private:
  /// Reads exactly n bytes into out (which it resizes).
  Status read_exact(std::vector<std::uint8_t>& out, std::size_t n);

  int fd_ = -1;
};

/// Worker-side socket transport: decodes directives against the instance
/// from the handshake, encodes outcomes back. receive() blocks on the
/// socket; a vanished master (EOF) reads as a closed link.
class SocketTransport final : public Transport {
 public:
  SocketTransport(FrameSocket& socket, const mkp::Instance& inst)
      : socket_(&socket), inst_(&inst) {}

  [[nodiscard]] std::optional<ToSlave> receive(const CancelToken& token) override;
  [[nodiscard]] bool send(FromSlave message) override;

 private:
  FrameSocket* socket_;
  const mkp::Instance* inst_;
};

}  // namespace pts::parallel
