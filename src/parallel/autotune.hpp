#pragma once
// Strategy recommendation — the paper's promise ("unload the user from the
// task of finding the efficient TS parameters for each problem instance")
// packaged as a library call: run a short CTS2 probe and extract the
// strategy whose rounds performed best, for use in subsequent sequential
// (or embedded) runs on the same instance or instance family.
//
// Scoring: each strategy appearing in the probe's timeline is credited with
// its rounds' final values, normalized by the probe's best; the
// recommendation is the strategy with the highest mean normalized final
// value over at least `min_rounds_evidence` rounds.

#include <cstdint>

#include "mkp/instance.hpp"
#include "parallel/runner.hpp"
#include "tabu/strategy.hpp"

namespace pts::parallel {

struct AutotuneOptions {
  std::size_t num_slaves = 4;
  std::size_t probe_rounds = 10;
  std::uint64_t work_per_slave_round = 2'000;
  std::size_t min_rounds_evidence = 2;  ///< strategies seen fewer rounds are skipped
  std::uint64_t seed = 1;
};

struct AutotuneResult {
  tabu::Strategy recommended;
  double mean_normalized_value = 0.0;  ///< of the winning strategy's rounds
  std::size_t evidence_rounds = 0;     ///< rounds the winner was observed
  std::size_t strategies_seen = 0;     ///< distinct strategies in the probe
  double probe_best_value = 0.0;
  mkp::Solution probe_best;            ///< free by-product of the probe
};

AutotuneResult recommend_strategy(const mkp::Instance& inst,
                                  const AutotuneOptions& options = {});

}  // namespace pts::parallel
