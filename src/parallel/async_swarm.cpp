#include "parallel/async_swarm.hpp"

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bounds/greedy.hpp"
#include "obs/trace.hpp"
#include "tabu/engine.hpp"
#include "util/check.hpp"
#include "util/mailbox.hpp"
#include "util/timer.hpp"

namespace pts::parallel {

std::string to_string(AsyncTopology topology) {
  switch (topology) {
    case AsyncTopology::kFullBroadcast: return "broadcast";
    case AsyncTopology::kRing: return "ring";
    case AsyncTopology::kRandomPeer: return "random-peer";
  }
  return "?";
}

Expected<AsyncTopology> topology_from_string(const std::string& text) {
  std::string lower = text;
  for (char& c : lower) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  for (auto topology : {AsyncTopology::kFullBroadcast, AsyncTopology::kRing,
                        AsyncTopology::kRandomPeer}) {
    if (lower == to_string(topology)) return topology;
  }
  return Status::invalid_argument("unknown async topology '" + text +
                                  "' (accepted: broadcast, ring, random-peer)");
}

namespace {

struct PeerMessage {
  mkp::Solution solution;
  double value = 0.0;
};

struct PeerOutcome {
  mkp::Solution best;
  double best_value = 0.0;
  std::uint64_t moves = 0;
  std::uint64_t broadcasts = 0;
  std::uint64_t adoptions = 0;
  std::uint64_t self_retunes = 0;
  obs::Counters counters;
};

}  // namespace

AsyncResult run_async_swarm(const mkp::Instance& inst, const AsyncConfig& config) {
  PTS_CHECK(config.num_peers >= 1);
  PTS_CHECK(config.bursts_per_peer >= 1);

  Stopwatch watch;
  const auto deadline = config.time_limit_seconds > 0.0
                            ? Deadline::after_seconds(config.time_limit_seconds)
                            : Deadline::unbounded();

  std::vector<std::unique_ptr<Mailbox<PeerMessage>>> mailboxes;
  mailboxes.reserve(config.num_peers);
  for (std::size_t i = 0; i < config.num_peers; ++i) {
    mailboxes.push_back(std::make_unique<Mailbox<PeerMessage>>());
  }

  std::atomic<bool> stop_all{false};
  std::vector<PeerOutcome> outcomes;
  outcomes.reserve(config.num_peers);
  for (std::size_t i = 0; i < config.num_peers; ++i) {
    outcomes.push_back(PeerOutcome{mkp::Solution(inst)});
  }

  auto peer_body = [&](std::size_t peer_id) {
    Rng rng = Rng(config.seed).derive(0xA5A5ULL + peer_id);
    StrategyGenerator sgp(config.sgp);
    auto& outcome = outcomes[peer_id];
    // Same logical-tid convention as the master/slave farm: peer i = i + 1.
    obs::TidScope tid_scope(static_cast<std::uint32_t>(peer_id) + 1);

    tabu::Strategy strategy = random_strategy(rng, config.sgp.bounds);
    mkp::Solution current = bounds::greedy_randomized(inst, rng);
    outcome.best = current;
    outcome.best_value = current.value();
    std::vector<mkp::Solution> elite;

    for (std::size_t burst = 0; burst < config.bursts_per_peer; ++burst) {
      if (stop_all.load(std::memory_order_relaxed) || deadline.expired() ||
          config.cancel.stop_requested()) {
        break;
      }

      tabu::TsParams params = config.base_params;
      params.strategy = strategy;
      params.max_moves =
          std::max<std::uint64_t>(1, config.work_per_burst / strategy.nb_drop);
      params.target_value = config.target_value;
      params.run_to_budget = true;
      params.cancel = config.cancel;

      auto ts = [&] {
        obs::SpanScope burst_span("peer_burst",
                                  {{"peer", static_cast<double>(peer_id)},
                                   {"burst", static_cast<double>(burst)}});
        return tabu::tabu_search(inst, current, params, rng);
      }();
      outcome.moves += ts.moves;
      outcome.counters.add(ts.counters);
      elite = ts.elite;

      const bool improved = ts.best_value > outcome.best_value;
      if (improved) {
        outcome.best = ts.best;
        outcome.best_value = ts.best_value;
      }
      if (ts.reached_target) {
        stop_all.store(true, std::memory_order_relaxed);
        break;
      }

      // Share the burst's best along the configured topology (fire and
      // forget).
      auto send_to = [&](std::size_t other) {
        mailboxes[other]->send(PeerMessage{ts.best, ts.best_value});
        ++outcome.broadcasts;
      };
      switch (config.topology) {
        case AsyncTopology::kFullBroadcast:
          for (std::size_t other = 0; other < config.num_peers; ++other) {
            if (other != peer_id) send_to(other);
          }
          break;
        case AsyncTopology::kRing:
          if (config.num_peers > 1) send_to((peer_id + 1) % config.num_peers);
          break;
        case AsyncTopology::kRandomPeer:
          if (config.num_peers > 1) {
            std::size_t other = rng.index(config.num_peers - 1);
            if (other >= peer_id) ++other;  // skip self without bias
            send_to(other);
          }
          break;
      }

      // Drain the inbox; adopt the best incoming solution if it clears the
      // margin over our own best.
      if (obs::tracer().enabled()) {
        obs::tracer().sample("peer_inbox_depth",
                             static_cast<double>(mailboxes[peer_id]->depth()));
      }
      std::optional<PeerMessage> incoming_best;
      while (auto message = mailboxes[peer_id]->try_receive()) {
        if (!incoming_best || message->value > incoming_best->value) {
          incoming_best = std::move(message);
        }
      }
      current = ts.best;
      if (incoming_best &&
          incoming_best->value > outcome.best_value * (1.0 + config.adoption_margin)) {
        current = std::move(incoming_best->solution);
        ++outcome.adoptions;
        if (obs::tracer().enabled()) {
          obs::tracer().instant("adopt", {{"peer", static_cast<double>(peer_id)},
                                          {"burst", static_cast<double>(burst)},
                                          {"value", incoming_best->value}});
        }
      }

      // Local strategy adaptation: retune after an unproductive burst.
      if (!improved) {
        const auto decision = sgp.retune(strategy, elite, inst.num_items(), rng);
        strategy = decision.strategy;
        ++outcome.self_retunes;
      }
    }
  };

  {
    std::vector<std::jthread> peers;
    peers.reserve(config.num_peers);
    for (std::size_t i = 0; i < config.num_peers; ++i) {
      peers.emplace_back(peer_body, i);
    }
  }  // join

  AsyncResult result{mkp::Solution(inst)};
  for (const auto& outcome : outcomes) {
    result.total_moves += outcome.moves;
    result.broadcasts += outcome.broadcasts;
    result.adoptions += outcome.adoptions;
    result.self_retunes += outcome.self_retunes;
    result.counters.add(outcome.counters);
    if (outcome.best_value > result.best_value) {
      result.best = outcome.best;
      result.best_value = outcome.best_value;
    }
  }
  result.reached_target = stop_all.load();
  if (config.target_value && result.best_value >= *config.target_value) {
    result.reached_target = true;
  }
  result.cancelled = config.cancel.stop_requested() && !result.reached_target;
  result.seconds = watch.elapsed_seconds();
  return result;
}

}  // namespace pts::parallel
