#pragma once
// The multi-process backend (`--backend=proc`): the paper's PVM farm, for
// real. The master keeps running the unchanged run_master() over mailboxes;
// underneath, a ProcSupervisor spawns one pts_worker process per slave over
// a Unix socketpair and bridges each mailbox pair onto wire.hpp frames.
//
// Per worker the supervisor runs one pump thread:
//
//   idle ──Assignment──▶ deliver frame ──▶ await reply (heartbeat-bounded)
//     ▲                       │                   │
//     │                    write fails        reply / timeout / EOF / corrupt
//     │                       ▼                   │
//     │                 ┌───────────────◀─────────┘ (non-reply outcomes)
//     └──reply──────────┤ fault: SlaveFault into the report box,
//        forwarded      │ SIGKILL + reap, deferred respawn (jittered
//                       └──▶ idle          exponential backoff + breaker)
//
// Fault mapping is the point: a worker that is killed (EOF), hangs past the
// heartbeat timeout, or emits garbage becomes a SlaveFault for exactly the
// round it owed — the same message a throwing in-thread slave produces — so
// the master's rendezvous completes with P-1 reports and its existing
// respawn path reseeds the record, while the supervisor respawns the
// process. Determinism: each round's search derives its rng from
// (seed, slave, round) and doubles travel bit-exact, so a fault-free proc
// run reproduces the thread backend's results on a fixed seed.

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mkp/instance.hpp"
#include "parallel/comm.hpp"
#include "parallel/transport.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace pts::parallel {

namespace wire {
struct TelemetryChunk;
}  // namespace wire

struct ProcOptions {
  /// pts_worker binary to exec; empty means default_worker_path().
  std::string worker_path;
  /// Heartbeat bound: a worker that holds an assignment longer than this
  /// without replying is declared hung, killed, and mapped to a SlaveFault.
  /// Size it well above the per-round work budget.
  double worker_timeout_seconds = 120.0;
  /// Respawn budget per slave slot; a slot that exhausts it stays dead and
  /// faults every subsequent round (the master keeps degrading to P-1).
  std::size_t max_respawns_per_slave = 8;

  // -- Recovery policy (DESIGN.md §9). Respawns are deferred, not eager: a
  //    fault schedules the earliest next respawn attempt with jittered
  //    exponential backoff, and assignments that arrive before then fault
  //    immediately WITHOUT consuming the respawn budget — a worker dying
  //    three times in 100ms costs backoff skips, not three respawns. --

  /// Backoff for the SECOND consecutive fault (an isolated death respawns
  /// at the next assignment); doubles per further fault up to the cap.
  /// A deterministic jitter in [0, base) (splitmix64 of seed, slot and fault
  /// count) decorrelates a storm of slots all dying at once.
  double respawn_backoff_base_seconds = 0.05;
  double respawn_backoff_cap_seconds = 2.0;

  /// Circuit breaker: this many faults, each within `breaker_window_seconds`
  /// of the previous one, open the breaker for `breaker_cooloff_seconds` —
  /// no respawn attempts at all until it half-opens. 0 disables the breaker.
  std::size_t breaker_threshold = 3;
  double breaker_window_seconds = 1.0;
  double breaker_cooloff_seconds = 5.0;
};

/// Supervisor-side counters (the master-side fault/respawn counters live in
/// MasterResult; these add the process-level view).
struct ProcStats {
  std::size_t workers_spawned = 0;   ///< initial spawns + respawns
  std::size_t worker_respawns = 0;   ///< replacements after a fault
  std::uint64_t dropped_messages = 0;///< forwards lost on a closed report box
  /// Assignments faulted fast because the slot was in backoff or breaker
  /// cooloff — rounds that did NOT consume respawn budget.
  std::size_t respawn_backoff_skips = 0;
  std::size_t breaker_opens = 0;     ///< circuit-breaker trips
  /// Master-side chaos schedule activations (stall/corrupt/slow-write on the
  /// supervisor's assignment sends; see PTS_CHAOS_MASTER_* below).
  std::size_t chaos_injections = 0;
  /// TelemetryChunk frames folded into the master's tracer/registry.
  std::size_t telemetry_chunks = 0;
};

/// Resolution order: $PTS_WORKER_BIN, then pts_worker next to the current
/// executable (/proc/self/exe), then "pts_worker" on PATH.
[[nodiscard]] std::string default_worker_path();

/// Owns the worker processes and the mailbox facade run_master drives.
/// Lifecycle: construct → start() → run_master(channels()) → destroy (joins
/// pumps, stops workers; a hung worker is SIGKILLed after a short grace).
class ProcSupervisor {
 public:
  ProcSupervisor(const mkp::Instance& inst, std::size_t num_slaves,
                 std::uint64_t seed, ProcOptions options, CancelToken cancel);
  ~ProcSupervisor();

  ProcSupervisor(const ProcSupervisor&) = delete;
  ProcSupervisor& operator=(const ProcSupervisor&) = delete;

  /// Spawns every worker, performs the Hello handshake, starts the pumps.
  /// On error the supervisor is left stopped (safe to destroy).
  [[nodiscard]] Status start();

  /// Joins the pumps and stops the workers (what the destructor does), so a
  /// caller can read final stats() before the object goes away. Idempotent.
  void shutdown();

  /// Mailbox endpoints for run_master: one private inbox per slave, one
  /// shared report box — the wiring invariant SlaveChannels documents.
  [[nodiscard]] const std::vector<SlaveChannels>& channels() const {
    return channels_;
  }

  [[nodiscard]] ProcStats stats() const;

  /// Test hook (kill -9 fault injection): pid of slave i's current worker,
  /// -1 while dead/respawning.
  [[nodiscard]] pid_t worker_pid(std::size_t i) const;

 private:
  struct WorkerSlot {
    FrameSocket socket;
    pid_t pid = -1;
    std::size_t respawns = 0;
    bool process_named = false;  ///< merged pid labelled in the trace yet?
    // Recovery-policy bookkeeping (guarded by mutex_).
    std::size_t consecutive_faults = 0;  ///< reset by a completed round
    std::size_t fault_serial = 0;        ///< total faults (jitter stream index)
    std::chrono::steady_clock::time_point last_fault_at{};
    std::chrono::steady_clock::time_point respawn_not_before{};
    bool breaker_open = false;
    std::chrono::steady_clock::time_point breaker_until{};
  };

  /// Master-side chaos schedule (the mirror of the worker-side PTS_CHAOS_*
  /// knobs, applied to the supervisor's own assignment sends):
  ///   PTS_CHAOS_MASTER_CORRUPT_PPM  flip one payload byte of an assignment
  ///   PTS_CHAOS_MASTER_STALL_MS     sleep before each assignment send
  ///   PTS_CHAOS_MASTER_SLOW_WRITE   trickle assignment frames in 7-byte
  ///                                 chunks
  /// A corrupted assignment fails the worker's total decoder; the worker
  /// exits cleanly, the heartbeat read sees EOF, and the round completes
  /// degraded via the normal SlaveFault + respawn path.
  struct MasterChaos {
    std::uint32_t corrupt_ppm = 0;
    std::uint32_t stall_ms = 0;
    bool slow_write = false;
    [[nodiscard]] bool any() const {
      return corrupt_ppm > 0 || stall_ms > 0 || slow_write;
    }
  };

  [[nodiscard]] Status spawn_worker(std::size_t i);
  void stop_worker(std::size_t i, bool send_stop);
  void record_fault(std::size_t i, std::size_t round, const std::string& why);
  /// Dead-slot policy decision at assignment time: respawn now (half-open
  /// probe / backoff elapsed), or fault fast with `reason` set.
  [[nodiscard]] bool may_respawn_now(std::size_t i, std::string& reason);
  void pump(std::size_t i);
  /// Assignment send with the master chaos schedule applied. `chaos_rng` is
  /// the pump's slot-local deterministic stream.
  [[nodiscard]] Status send_assignment(std::size_t i, Rng& chaos_rng,
                                       std::vector<std::uint8_t> frame);
  /// Folds one worker TelemetryChunk into the master's tracer (pid/tid remap
  /// + clock offset) and metrics registry (counter deltas).
  void merge_telemetry_chunk(std::size_t i, const wire::TelemetryChunk& chunk);
  void update_workers_alive_locked();

  const mkp::Instance& inst_;
  const std::size_t num_slaves_;
  const std::uint64_t seed_;
  const ProcOptions options_;
  const CancelToken cancel_;     ///< the run's token (idle-pump unblock)
  CancelSource teardown_;        ///< fired by the destructor (hung-read abort)

  std::vector<std::unique_ptr<Mailbox<ToSlave>>> inboxes_;
  std::unique_ptr<Mailbox<FromSlave>> reports_;
  std::vector<SlaveChannels> channels_;

  mutable std::mutex mutex_;  ///< guards slots_ pids/respawns and stats_
  std::vector<WorkerSlot> slots_;
  ProcStats stats_;
  MasterChaos master_chaos_;  ///< parsed once from the environment

  std::vector<std::thread> pumps_;
  bool started_ = false;
};

/// The pts_worker entry body: Hello handshake on `fd`, then slave_loop over
/// a SocketTransport until Stop or EOF. Returns the process exit code
/// (0 = orderly stop, 2 = handshake/protocol failure).
int run_worker(int fd);

}  // namespace pts::parallel
