#include "parallel/report_io.hpp"

#include <fstream>
#include <ostream>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace pts::parallel {

void timeline_to_csv(std::ostream& out, const MasterResult& result) {
  out << "round,slave,tenure,nb_drop,nb_local,nb_candidates,init_kind,"
         "initial_value,final_value,score_after,retune,moves,seconds\n";
  for (const auto& log : result.timeline) {
    out << log.round << ',' << log.slave << ',' << log.strategy.tabu_tenure << ','
        << log.strategy.nb_drop << ',' << log.strategy.nb_local << ','
        << log.strategy.nb_candidates << ',' << to_string(log.init_kind) << ','
        << log.initial_value << ',' << log.final_value << ',' << log.score_after
        << ',' << to_string(log.retune) << ',' << log.moves << ',' << log.seconds
        << '\n';
  }
}

void summary_to_csv(std::ostream& out, const ParallelResult& result) {
  out << "key,value\n";
  out << "mode," << to_string(result.mode) << '\n';
  out << "best_value," << result.best_value << '\n';
  out << "total_moves," << result.total_moves << '\n';
  out << "seconds," << result.seconds << '\n';
  out << "reached_target," << (result.reached_target ? 1 : 0) << '\n';
  out << "rounds_completed," << result.master.rounds_completed << '\n';
  out << "strategy_retunes," << result.master.strategy_retunes << '\n';
  out << "global_best_injections," << result.master.global_best_injections << '\n';
  out << "random_restarts," << result.master.random_restarts << '\n';
  out << "relink_improvements," << result.master.relink_improvements << '\n';
  out << "rendezvous_idle_seconds," << result.master.rendezvous_idle_seconds << '\n';
}

void counters_to_csv(std::ostream& out, const MasterResult& result) {
  out << "counter,total,snapshots,mean,min,max\n";
  const auto& stats = result.counter_stats;
  for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
    const auto c = static_cast<obs::Counter>(i);
    const auto& dist = stats.stats(c);
    out << obs::counter_name(c) << ',' << stats.totals()[c] << ','
        << dist.count() << ',' << dist.mean() << ',' << dist.min() << ','
        << dist.max() << '\n';
  }
}

void anytime_to_csv(std::ostream& out, const MasterResult& result) {
  out << "source,seconds,work_units,value\n";
  for (const auto& sample : result.anytime) {
    out << sample.source << ',' << sample.seconds << ',' << sample.work_units
        << ',' << sample.value << '\n';
  }
}

void write_report_files(const std::string& path_prefix, const ParallelResult& result) {
  {
    std::ofstream out(path_prefix + "-timeline.csv");
    PTS_CHECK_MSG(static_cast<bool>(out), "cannot open timeline csv for writing");
    timeline_to_csv(out, result.master);
  }
  {
    std::ofstream out(path_prefix + "-summary.csv");
    PTS_CHECK_MSG(static_cast<bool>(out), "cannot open summary csv for writing");
    summary_to_csv(out, result);
  }
  if (result.master.counter_stats.snapshots() > 0) {
    std::ofstream out(path_prefix + "-counters.csv");
    PTS_CHECK_MSG(static_cast<bool>(out), "cannot open counters csv for writing");
    counters_to_csv(out, result.master);
  }
  if (!result.master.anytime.empty()) {
    std::ofstream out(path_prefix + "-anytime.csv");
    PTS_CHECK_MSG(static_cast<bool>(out), "cannot open anytime csv for writing");
    anytime_to_csv(out, result.master);
  }
  if (obs::metrics().has_histogram_samples()) {
    std::ofstream out(path_prefix + "-latency.csv");
    PTS_CHECK_MSG(static_cast<bool>(out), "cannot open latency csv for writing");
    obs::metrics().write_histogram_csv(out);
  }
}

}  // namespace pts::parallel
