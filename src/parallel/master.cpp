#include "parallel/master.hpp"

#include <algorithm>

#include "bounds/greedy.hpp"
#include "obs/trace.hpp"
#include "tabu/path_relink.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace pts::parallel {

namespace {

/// The master's per-slave record — the paper's data structure entry:
/// strategy St_i, initial solution S_i, B best solutions best_i, score_i.
struct SlaveRecord {
  tabu::Strategy strategy;
  std::optional<mkp::Solution> initial;
  std::vector<mkp::Solution> b_best;
  int score = 0;
  std::size_t rounds_unchanged = 0;
};

}  // namespace

MasterResult run_master(const mkp::Instance& inst,
                        const std::vector<SlaveChannels>& channels,
                        const MasterConfig& config, MasterTrace* trace) {
  PTS_CHECK(config.num_slaves >= 1);
  PTS_CHECK(channels.size() == config.num_slaves);
  PTS_CHECK(config.search_iterations >= 1);
  for (const auto& ch : channels) PTS_CHECK(ch.inbox && ch.outbox);
  // The gather below drains channels[0].outbox only: the protocol requires
  // every slave to report into ONE shared mailbox (see SlaveChannels). A
  // caller that wires per-slave report boxes would hang the rendezvous
  // forever waiting for messages that sit in boxes nobody reads — fail
  // loudly instead.
  for (const auto& ch : channels) {
    PTS_CHECK_MSG(ch.outbox == channels[0].outbox,
                  "all SlaveChannels::outbox must alias one shared report "
                  "mailbox; per-slave report boxes would hang the gather");
  }

  Stopwatch watch;
  const auto deadline = config.time_limit_seconds > 0.0
                            ? Deadline::after_seconds(config.time_limit_seconds)
                            : Deadline::unbounded();

  Rng master_rng = Rng(config.seed).derive(0xFEEDULL);
  StrategyGenerator sgp(config.sgp);
  InitialSolutionGenerator isp(config.isp);

  MasterResult result{mkp::Solution(inst)};

  // Telemetry. The master runs under logical trace tid 0; the per-round
  // check keeps the disabled path at one relaxed load per round.
  const bool telemetry_on = obs::kTelemetryCompiled && obs::telemetry_enabled();
  if (obs::tracer().enabled()) {
    obs::tracer().name_thread(0, "master");
    for (std::size_t i = 0; i < config.num_slaves; ++i) {
      obs::tracer().name_thread(static_cast<std::uint32_t>(i) + 1,
                                "slave-" + std::to_string(i));
    }
  }
  // Work-unit offset per slave so stitched anytime samples count moves
  // monotonically across rounds.
  std::vector<std::uint64_t> moves_before_round(config.num_slaves, 0);

  // Initialization: random strategies, randomized-greedy initial solutions.
  std::vector<SlaveRecord> records(config.num_slaves);
  for (std::size_t i = 0; i < config.num_slaves; ++i) {
    records[i].strategy = random_strategy(master_rng, config.sgp.bounds);
    records[i].score = config.sgp.initial_score;
    records[i].initial = bounds::greedy_randomized(inst, master_rng);
    if (records[i].initial->value() > result.best_value) {
      result.best = *records[i].initial;
      result.best_value = records[i].initial->value();
    }
  }

  for (std::size_t round = 0; round < config.search_iterations; ++round) {
    if (config.cancel.stop_requested()) {
      result.cancelled = true;
      break;
    }
    if (deadline.expired() || result.reached_target) break;
    if (trace) trace->on_round_start(round);

    // Scatter: one assignment per slave. Work balancing: slaves with larger
    // Nb_drop get proportionally fewer moves.
    const double round_start_seconds = watch.elapsed_seconds();
    {
      obs::SpanScope scatter_span("scatter", {{"round", static_cast<double>(round)}});
      for (std::size_t i = 0; i < config.num_slaves; ++i) {
        Assignment assignment{round, *records[i].initial, config.base_params};
        if (config.mix_intensification) {
          assignment.params.intensification =
              i % 2 == 0 ? tabu::IntensificationKind::kSwap
                         : tabu::IntensificationKind::kStrategicOscillation;
        }
        assignment.params.strategy = records[i].strategy;
        assignment.params.max_moves = std::max<std::uint64_t>(
            1, config.work_per_slave_round / records[i].strategy.nb_drop);
        assignment.params.target_value = config.target_value;
        assignment.params.run_to_budget = true;
        assignment.params.cancel = config.cancel;
        const bool sent = channels[i].inbox->send(std::move(assignment));
        PTS_CHECK_MSG(sent, "slave inbox closed while the master is running");
      }
    }
    if (trace) trace->on_assignments_sent(round, config.num_slaves);
    if (obs::tracer().enabled()) {
      std::size_t backlog = 0;
      for (const auto& ch : channels) backlog += ch.inbox->depth();
      obs::tracer().sample("assign_backlog", static_cast<double>(backlog));
    }

    // Gather: the synchronous rendezvous — one message per slave, where a
    // message is either the round's Report or a SlaveFault. Faults count
    // toward the rendezvous (so it always completes) but leave their slot
    // empty; every consumer below must tolerate a missing report.
    std::vector<std::optional<Report>> reports(config.num_slaves);
    std::vector<bool> faulted(config.num_slaves, false);
    std::optional<double> first_report_at;
    std::size_t gathered = 0;
    {
      obs::SpanScope gather_span("gather", {{"round", static_cast<double>(round)}});
      for (std::size_t k = 0; k < config.num_slaves; ++k) {
        auto message = channels[0].outbox->receive(config.cancel);
        if (!message) {
          // Either the cancel token fired mid-wait or the harness closed the
          // report box. The former is an orderly wind-down; the latter is
          // still a wiring bug.
          PTS_CHECK_MSG(config.cancel.stop_requested(),
                        "report mailbox closed prematurely");
          result.cancelled = true;
          break;
        }
        if (!first_report_at) first_report_at = watch.elapsed_seconds();
        if (obs::tracer().enabled()) {
          obs::tracer().sample("report_backlog",
                               static_cast<double>(channels[0].outbox->depth()));
        }
        if (const auto* fault = std::get_if<SlaveFault>(&*message)) {
          PTS_CHECK(fault->slave_id < config.num_slaves);
          faulted[fault->slave_id] = true;
          ++result.slave_faults;
          ++gathered;
          if (obs::tracer().enabled()) {
            obs::tracer().instant("slave_fault",
                                  {{"round", static_cast<double>(round)},
                                   {"slave", static_cast<double>(fault->slave_id)}},
                                  "what", fault->what);
          }
          continue;
        }
        auto report = std::get<Report>(std::move(*message));
        PTS_CHECK(report.slave_id < config.num_slaves);
        reports[report.slave_id] = std::move(report);
        ++gathered;
      }
    }
    if (first_report_at) {
      result.rendezvous_idle_seconds += watch.elapsed_seconds() - *first_report_at;
    }
    if (result.cancelled) break;
    if (trace) trace->on_reports_gathered(round, gathered);

    // Update the global best first so ISP sees this round's discoveries.
    const double best_before_round = result.best_value;
    for (std::size_t i = 0; i < config.num_slaves; ++i) {
      if (!reports[i]) continue;  // faulted this round
      const auto& report = *reports[i];
      result.total_moves += report.moves;
      if (report.reached_target) result.reached_target = true;
      if (!report.elite.empty() && report.elite.front().value() > result.best_value) {
        result.best = report.elite.front();
        result.best_value = report.elite.front().value();
      }
      if (telemetry_on) {
        result.counters.add(report.counters);
        result.counter_stats.observe(report.counters);
        // Re-base the slave's curve: its clock starts at the scatter, its
        // work units continue from the moves it had already spent.
        for (const auto& sample : report.anytime) {
          result.anytime.push_back({sample.source,
                                    round_start_seconds + sample.seconds,
                                    moves_before_round[i] + sample.work_units,
                                    sample.value});
        }
        moves_before_round[i] += report.moves;
      }
    }
    if (telemetry_on && result.best_value > best_before_round) {
      result.anytime.push_back({obs::kGlobalSource, watch.elapsed_seconds(),
                                result.total_moves, result.best_value});
    }

    // Extension: path-relink the global best against each slave's best —
    // solutions combining the structure of two elites often sit on the path.
    const double best_before_relink = result.best_value;
    if (config.relink_elites && result.best_value > 0.0) {
      for (std::size_t i = 0; i < config.num_slaves; ++i) {
        if (!reports[i]) continue;
        const auto& report = *reports[i];
        if (report.elite.empty()) continue;
        const auto& slave_best = report.elite.front();
        if (slave_best == result.best) continue;
        const auto relinked = tabu::path_relink(result.best, slave_best);
        if (relinked.best_value > result.best_value) {
          result.best = relinked.best;
          result.best_value = relinked.best_value;
          ++result.relink_improvements;
          if (config.target_value && result.best_value >= *config.target_value) {
            result.reached_target = true;
          }
        }
      }
    }
    if (telemetry_on && result.best_value > best_before_relink) {
      // Relink wins land after the round's report merge, so they need their
      // own global sample — otherwise the anytime envelope under-reports the
      // best until the next round improves it again.
      result.anytime.push_back({obs::kGlobalSource, watch.elapsed_seconds(),
                                result.total_moves, result.best_value});
    }

    // Per-slave bookkeeping, deterministic order.
    for (std::size_t i = 0; i < config.num_slaves; ++i) {
      if (!reports[i]) {
        // Respawn the faulted slave: the thread itself survived (slave_loop
        // caught the escape), so a respawn is purely master-side — a fresh
        // random strategy and start, score reset, as if newly spawned. No
        // RoundLog entry is written for the faulted round.
        auto& record = records[i];
        record.strategy = random_strategy(master_rng, config.sgp.bounds);
        record.score = config.sgp.initial_score;
        record.initial = bounds::greedy_randomized(inst, master_rng);
        record.b_best.clear();
        record.rounds_unchanged = 0;
        if (faulted[i]) ++result.slave_respawns;
        continue;
      }
      const auto& report = *reports[i];
      auto& record = records[i];
      record.b_best = report.elite;

      RoundLog log;
      log.round = round;
      log.slave = i;
      log.strategy = record.strategy;
      log.initial_value = report.initial_value;
      log.final_value = report.final_value;
      log.moves = report.moves;
      log.seconds = report.seconds;

      // SGP: score and possibly retune (CTS2 only).
      if (config.adapt_strategies) {
        obs::SpanScope sgp_span("sgp", {{"round", static_cast<double>(round)},
                                        {"slave", static_cast<double>(i)}});
        const bool improved = report.final_value > report.initial_value;
        const auto decision = sgp.update(record.strategy, record.score, improved,
                                         record.b_best, inst.num_items(), master_rng);
        if (decision.kind != RetuneKind::kKept) {
          ++result.strategy_retunes;
          if (obs::tracer().enabled()) {
            obs::tracer().instant(
                "sgp_retune",
                {{"round", static_cast<double>(round)},
                 {"slave", static_cast<double>(i)},
                 {"tenure_old", static_cast<double>(record.strategy.tabu_tenure)},
                 {"tenure_new", static_cast<double>(decision.strategy.tabu_tenure)},
                 {"nb_drop_old", static_cast<double>(record.strategy.nb_drop)},
                 {"nb_drop_new", static_cast<double>(decision.strategy.nb_drop)}},
                "kind", to_string(decision.kind));
          }
        }
        record.strategy = decision.strategy;
        record.score = decision.score;
        log.retune = decision.kind;
      }
      log.score_after = record.score;

      // ISP: the next starting solution (CTS1/CTS2); independent threads
      // simply continue from their own best.
      obs::SpanScope isp_span("isp", {{"round", static_cast<double>(round)},
                                      {"slave", static_cast<double>(i)}});
      std::optional<mkp::Solution> own_best;
      if (!record.b_best.empty()) own_best = record.b_best.front();
      mkp::Solution next_initial = mkp::Solution(inst);
      InitKind kind = InitKind::kOwnBest;
      if (config.share_solutions) {
        auto decision = isp.next_initial(own_best, result.best,
                                         record.rounds_unchanged, master_rng);
        next_initial = std::move(decision.initial);
        kind = decision.kind;
        if (kind == InitKind::kGlobalBest) ++result.global_best_injections;
        if (kind == InitKind::kRandom) ++result.random_restarts;
      } else {
        next_initial = own_best ? *own_best : *record.initial;
      }
      if (record.initial && next_initial == *record.initial) {
        ++record.rounds_unchanged;
      } else {
        record.rounds_unchanged = 0;
      }
      record.initial = std::move(next_initial);
      log.init_kind = kind;
      result.timeline.push_back(std::move(log));
    }
    ++result.rounds_completed;
  }

  for (const auto& ch : channels) {
    // A closed inbox here means the harness tore the slave down first (an
    // orderly wind-down races the broadcast); the Stop is redundant for that
    // slave, but the drop is counted, never silently ignored.
    if (!ch.inbox->send(Stop{})) {
      ++result.dropped_messages;
      if (telemetry_on) ++result.counters[obs::Counter::kDroppedMessages];
      if (obs::tracer().enabled()) {
        obs::tracer().instant("dropped_message", {}, "kind", "stop");
      }
    }
  }
  result.seconds = watch.elapsed_seconds();
  return result;
}

}  // namespace pts::parallel
