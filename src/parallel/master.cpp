#include "parallel/master.hpp"

#include <algorithm>

#include "bounds/greedy.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tabu/path_relink.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace pts::parallel {

// The master's per-slave record — the paper's data structure entry (strategy
// St_i, initial solution S_i, B best solutions best_i, score_i) — is
// snapshot::SlaveState so a checkpoint captures it field-for-field.
using SlaveState = snapshot::SlaveState;

namespace {

/// Builds the resumable image of the master's state at a round boundary.
snapshot::MasterCheckpoint make_checkpoint(const mkp::Instance& inst,
                                           const MasterConfig& config,
                                           const MasterResult& result,
                                           const std::vector<SlaveState>& records,
                                           const Rng& master_rng,
                                           std::size_t next_round,
                                           double elapsed_seconds) {
  snapshot::MasterCheckpoint cp(inst);
  cp.instance_fingerprint = snapshot::instance_fingerprint(inst);
  cp.seed = config.seed;
  cp.num_slaves = static_cast<std::uint32_t>(config.num_slaves);
  cp.share_solutions = config.share_solutions;
  cp.adapt_strategies = config.adapt_strategies;
  cp.next_round = next_round;
  cp.best = result.best;
  cp.master_rng_state = master_rng.state();
  cp.slaves = records;
  cp.total_moves = result.total_moves;
  cp.elapsed_seconds = elapsed_seconds;
  cp.rounds_completed = result.rounds_completed;
  cp.strategy_retunes = result.strategy_retunes;
  cp.global_best_injections = result.global_best_injections;
  cp.random_restarts = result.random_restarts;
  cp.relink_improvements = result.relink_improvements;
  cp.slave_faults = result.slave_faults;
  cp.slave_respawns = result.slave_respawns;
  cp.core = config.core_section;
  return cp;
}

}  // namespace

MasterResult run_master(const mkp::Instance& inst,
                        const std::vector<SlaveChannels>& channels,
                        const MasterConfig& config, MasterTrace* trace) {
  PTS_CHECK(config.num_slaves >= 1);
  PTS_CHECK(channels.size() == config.num_slaves);
  PTS_CHECK(config.search_iterations >= 1);
  for (const auto& ch : channels) PTS_CHECK(ch.inbox && ch.outbox);
  // The gather below drains channels[0].outbox only: the protocol requires
  // every slave to report into ONE shared mailbox (see SlaveChannels). A
  // caller that wires per-slave report boxes would hang the rendezvous
  // forever waiting for messages that sit in boxes nobody reads — fail
  // loudly instead.
  for (const auto& ch : channels) {
    PTS_CHECK_MSG(ch.outbox == channels[0].outbox,
                  "all SlaveChannels::outbox must alias one shared report "
                  "mailbox; per-slave report boxes would hang the gather");
  }

  Stopwatch watch;
  const auto deadline = config.time_limit_seconds > 0.0
                            ? Deadline::after_seconds(config.time_limit_seconds)
                            : Deadline::unbounded();

  Rng master_rng = Rng(config.seed).derive(0xFEEDULL);
  StrategyGenerator sgp(config.sgp);
  InitialSolutionGenerator isp(config.isp);

  MasterResult result{mkp::Solution(inst)};

  // Telemetry. The master runs under logical trace tid 0; the per-round
  // check keeps the disabled path at one relaxed load per round.
  const bool telemetry_on = obs::kTelemetryCompiled && obs::telemetry_enabled();
  if (obs::tracer().enabled()) {
    obs::tracer().name_thread(0, "master");
    for (std::size_t i = 0; i < config.num_slaves; ++i) {
      obs::tracer().name_thread(static_cast<std::uint32_t>(i) + 1,
                                "slave-" + std::to_string(i));
    }
  }
  std::vector<SlaveState> records(config.num_slaves);
  std::size_t first_round = 0;
  // Wall-clock and work offsets already earned before this process started
  // (zero on a fresh run); resumed telemetry continues the original curves.
  double time_offset = 0.0;
  if (config.resume != nullptr) {
    // Restore instead of initialize: the checkpoint holds every record, the
    // global best, the aggregates, and — critically — the master RNG's raw
    // state, so the draw sequence continues exactly where the killed run
    // stopped. The caller validated compatibility (snapshot::check_compatible);
    // these CHECKs only guard against wiring bugs.
    const auto& cp = *config.resume;
    PTS_CHECK_MSG(cp.slaves.size() == config.num_slaves,
                  "resume checkpoint slave count does not match the config");
    PTS_CHECK_MSG(cp.seed == config.seed,
                  "resume checkpoint seed does not match the config");
    records = cp.slaves;
    master_rng.set_state(cp.master_rng_state);
    result.best = cp.best;
    result.best_value = cp.best.value();
    result.total_moves = cp.total_moves;
    result.rounds_completed = static_cast<std::size_t>(cp.rounds_completed);
    result.strategy_retunes = static_cast<std::size_t>(cp.strategy_retunes);
    result.global_best_injections =
        static_cast<std::size_t>(cp.global_best_injections);
    result.random_restarts = static_cast<std::size_t>(cp.random_restarts);
    result.relink_improvements =
        static_cast<std::size_t>(cp.relink_improvements);
    result.slave_faults = static_cast<std::size_t>(cp.slave_faults);
    result.slave_respawns = static_cast<std::size_t>(cp.slave_respawns);
    first_round = static_cast<std::size_t>(cp.next_round);
    result.resumed_from_round = first_round;
    time_offset = cp.elapsed_seconds;
    if (telemetry_on) {
      // Re-anchor the global envelope: the resumed curve's max equals the
      // checkpointed best from its very first sample (§9 invariant).
      result.anytime.push_back({obs::kGlobalSource, time_offset,
                                result.total_moves, result.best_value});
    }
    if (obs::tracer().enabled()) {
      obs::tracer().instant("resume",
                            {{"round", static_cast<double>(first_round)},
                             {"best", result.best_value}});
    }
  } else {
    // Initialization: random strategies, randomized-greedy initial solutions.
    // A warm start substitutes harvested state for slave i's draws while its
    // entries last; slaves beyond the warm material fall through to the
    // random path. With no warm start the draw sequence is untouched, so
    // cold runs stay bit-identical to the pre-warm-start code.
    const WarmStart* ws = config.warm_start;
    for (std::size_t i = 0; i < config.num_slaves; ++i) {
      if (ws != nullptr && i < ws->strategies.size()) {
        records[i].strategy = ws->strategies[i];
        records[i].score =
            i < ws->scores.size() ? ws->scores[i] : config.sgp.initial_score;
      } else {
        records[i].strategy = random_strategy(master_rng, config.sgp.bounds);
        records[i].score = config.sgp.initial_score;
      }
      if (ws != nullptr && i < ws->initials.size()) {
        records[i].initial = ws->initials[i];
      } else {
        records[i].initial = bounds::greedy_randomized(inst, master_rng);
      }
      if (records[i].initial->value() > result.best_value) {
        result.best = *records[i].initial;
        result.best_value = records[i].initial->value();
      }
    }
  }

  // A warm-started (or resumed) best can already meet the target; searching
  // would only burn the budget re-finding a value the run starts with.
  if (config.target_value && result.best_value >= *config.target_value) {
    result.reached_target = true;
  }

  const auto active_count = [&records] {
    std::size_t n = 0;
    for (const auto& record : records) n += record.active ? 1 : 0;
    return n;
  };
  std::size_t last_checkpoint_round = first_round;  // nothing written yet
  const auto write_checkpoint = [&](std::size_t next_round) {
    auto cp = make_checkpoint(inst, config, result, records, master_rng,
                              next_round,
                              time_offset + watch.elapsed_seconds());
    const Stopwatch checkpoint_watch;
    const auto status = snapshot::save_checkpoint(config.checkpoint_path, cp);
    if (status.ok()) {
      ++result.checkpoints_written;
      if (telemetry_on) ++result.counters[obs::Counter::kCheckpointsWritten];
      obs::metrics().counter("checkpoint_writes_total").add();
      obs::metrics()
          .histogram("checkpoint_write_seconds")
          .record(checkpoint_watch.elapsed_seconds());
    } else {
      ++result.checkpoint_failures;
    }
    if (obs::tracer().enabled()) {
      obs::tracer().instant("checkpoint",
                            {{"round", static_cast<double>(next_round)},
                             {"ok", status.ok() ? 1.0 : 0.0}});
    }
    last_checkpoint_round = next_round;
  };

  for (std::size_t round = first_round; round < config.search_iterations;
       ++round) {
    if (config.cancel.stop_requested()) {
      result.cancelled = true;
      break;
    }
    if (deadline.expired() || result.reached_target) break;
    if (trace) trace->on_round_start(round);

    // Scatter: one assignment per active slave. Work balancing: slaves with
    // larger Nb_drop get proportionally fewer moves. When the pool has
    // degraded to P-k survivors, each absorbs the retired slaves' share so
    // the round's total work budget stays what the mode comparison assumes.
    const std::size_t assigned = active_count();
    PTS_CHECK_MSG(assigned >= 1, "every slave has been retired");
    const std::uint64_t round_work =
        config.work_per_slave_round * config.num_slaves / assigned;
    const double round_start_seconds = watch.elapsed_seconds();
    {
      obs::SpanScope scatter_span("scatter", {{"round", static_cast<double>(round)}});
      for (std::size_t i = 0; i < config.num_slaves; ++i) {
        if (!records[i].active) continue;
        Assignment assignment{round, *records[i].initial, config.base_params};
        if (config.mix_intensification) {
          assignment.params.intensification =
              i % 2 == 0 ? tabu::IntensificationKind::kSwap
                         : tabu::IntensificationKind::kStrategicOscillation;
        }
        assignment.params.strategy = records[i].strategy;
        assignment.params.max_moves = std::max<std::uint64_t>(
            1, round_work / records[i].strategy.nb_drop);
        assignment.params.target_value = config.target_value;
        assignment.params.run_to_budget = true;
        assignment.params.cancel = config.cancel;
        const bool sent = channels[i].inbox->send(std::move(assignment));
        PTS_CHECK_MSG(sent, "slave inbox closed while the master is running");
      }
    }
    if (trace) trace->on_assignments_sent(round, assigned);
    if (obs::tracer().enabled()) {
      std::size_t backlog = 0;
      for (const auto& ch : channels) backlog += ch.inbox->depth();
      obs::tracer().sample("assign_backlog", static_cast<double>(backlog));
    }

    // Gather: the synchronous rendezvous — one message per assigned slave,
    // where a message is either the round's Report or a SlaveFault. Faults
    // count toward the rendezvous (so it always completes) but leave their
    // slot empty; every consumer below must tolerate a missing report.
    std::vector<std::optional<Report>> reports(config.num_slaves);
    std::vector<bool> faulted(config.num_slaves, false);
    std::optional<double> first_report_at;
    std::size_t gathered = 0;
    {
      obs::SpanScope gather_span("gather", {{"round", static_cast<double>(round)}});
      for (std::size_t k = 0; k < assigned; ++k) {
        auto message = channels[0].outbox->receive(config.cancel);
        if (!message) {
          // Either the cancel token fired mid-wait or the harness closed the
          // report box. The former is an orderly wind-down; the latter is
          // still a wiring bug.
          PTS_CHECK_MSG(config.cancel.stop_requested(),
                        "report mailbox closed prematurely");
          result.cancelled = true;
          break;
        }
        if (!first_report_at) first_report_at = watch.elapsed_seconds();
        if (obs::tracer().enabled()) {
          obs::tracer().sample("report_backlog",
                               static_cast<double>(channels[0].outbox->depth()));
        }
        if (const auto* fault = std::get_if<SlaveFault>(&*message)) {
          PTS_CHECK(fault->slave_id < config.num_slaves);
          faulted[fault->slave_id] = true;
          ++result.slave_faults;
          ++gathered;
          if (obs::tracer().enabled()) {
            obs::tracer().instant("slave_fault",
                                  {{"round", static_cast<double>(round)},
                                   {"slave", static_cast<double>(fault->slave_id)}},
                                  "what", fault->what);
          }
          continue;
        }
        auto report = std::get<Report>(std::move(*message));
        PTS_CHECK(report.slave_id < config.num_slaves);
        reports[report.slave_id] = std::move(report);
        ++gathered;
      }
    }
    if (first_report_at) {
      result.rendezvous_idle_seconds += watch.elapsed_seconds() - *first_report_at;
    }
    if (result.cancelled) break;
    if (trace) trace->on_reports_gathered(round, gathered);

    // Update the global best first so ISP sees this round's discoveries.
    const double best_before_round = result.best_value;
    for (std::size_t i = 0; i < config.num_slaves; ++i) {
      if (!reports[i]) continue;  // faulted this round
      const auto& report = *reports[i];
      result.total_moves += report.moves;
      if (report.reached_target) result.reached_target = true;
      if (!report.elite.empty() && report.elite.front().value() > result.best_value) {
        result.best = report.elite.front();
        result.best_value = report.elite.front().value();
      }
      if (telemetry_on) {
        result.counters.add(report.counters);
        result.counter_stats.observe(report.counters);
        // Re-base the slave's curve: its clock starts at the scatter (plus
        // any wall time a resumed run inherited), its work units continue
        // from the moves it had already spent.
        for (const auto& sample : report.anytime) {
          result.anytime.push_back(
              {sample.source, time_offset + round_start_seconds + sample.seconds,
               records[i].moves_before_round + sample.work_units, sample.value});
        }
        records[i].moves_before_round += report.moves;
      }
    }
    if (telemetry_on && result.best_value > best_before_round) {
      result.anytime.push_back({obs::kGlobalSource,
                                time_offset + watch.elapsed_seconds(),
                                result.total_moves, result.best_value});
    }

    // Extension: path-relink the global best against each slave's best —
    // solutions combining the structure of two elites often sit on the path.
    const double best_before_relink = result.best_value;
    if (config.relink_elites && result.best_value > 0.0) {
      for (std::size_t i = 0; i < config.num_slaves; ++i) {
        if (!reports[i]) continue;
        const auto& report = *reports[i];
        if (report.elite.empty()) continue;
        const auto& slave_best = report.elite.front();
        if (slave_best == result.best) continue;
        const auto relinked = tabu::path_relink(result.best, slave_best);
        if (relinked.best_value > result.best_value) {
          result.best = relinked.best;
          result.best_value = relinked.best_value;
          ++result.relink_improvements;
          if (config.target_value && result.best_value >= *config.target_value) {
            result.reached_target = true;
          }
        }
      }
    }
    if (telemetry_on && result.best_value > best_before_relink) {
      // Relink wins land after the round's report merge, so they need their
      // own global sample — otherwise the anytime envelope under-reports the
      // best until the next round improves it again.
      result.anytime.push_back({obs::kGlobalSource,
                                time_offset + watch.elapsed_seconds(),
                                result.total_moves, result.best_value});
    }

    // Per-slave bookkeeping, deterministic order.
    for (std::size_t i = 0; i < config.num_slaves; ++i) {
      if (!records[i].active) continue;
      if (!reports[i]) {
        // Respawn the faulted slave: the thread itself survived (slave_loop
        // caught the escape), so a respawn is purely master-side — a fresh
        // random strategy and start, score reset, as if newly spawned. No
        // RoundLog entry is written for the faulted round.
        auto& record = records[i];
        record.strategy = random_strategy(master_rng, config.sgp.bounds);
        record.score = config.sgp.initial_score;
        record.initial = bounds::greedy_randomized(inst, master_rng);
        record.b_best.clear();
        record.rounds_unchanged = 0;
        if (faulted[i]) {
          ++result.slave_respawns;
          ++record.consecutive_faults;
        }
        continue;
      }
      const auto& report = *reports[i];
      auto& record = records[i];
      record.consecutive_faults = 0;
      record.b_best = report.elite;

      RoundLog log;
      log.round = round;
      log.slave = i;
      log.strategy = record.strategy;
      log.initial_value = report.initial_value;
      log.final_value = report.final_value;
      log.moves = report.moves;
      log.seconds = report.seconds;

      // SGP: score and possibly retune (CTS2 only).
      if (config.adapt_strategies) {
        obs::SpanScope sgp_span("sgp", {{"round", static_cast<double>(round)},
                                        {"slave", static_cast<double>(i)}});
        const bool improved = report.final_value > report.initial_value;
        const auto decision = sgp.update(record.strategy, record.score, improved,
                                         record.b_best, inst.num_items(), master_rng);
        if (decision.kind != RetuneKind::kKept) {
          ++result.strategy_retunes;
          if (obs::tracer().enabled()) {
            obs::tracer().instant(
                "sgp_retune",
                {{"round", static_cast<double>(round)},
                 {"slave", static_cast<double>(i)},
                 {"tenure_old", static_cast<double>(record.strategy.tabu_tenure)},
                 {"tenure_new", static_cast<double>(decision.strategy.tabu_tenure)},
                 {"nb_drop_old", static_cast<double>(record.strategy.nb_drop)},
                 {"nb_drop_new", static_cast<double>(decision.strategy.nb_drop)}},
                "kind", to_string(decision.kind));
          }
        }
        record.strategy = decision.strategy;
        record.score = decision.score;
        log.retune = decision.kind;
      }
      log.score_after = record.score;

      // ISP: the next starting solution (CTS1/CTS2); independent threads
      // simply continue from their own best.
      obs::SpanScope isp_span("isp", {{"round", static_cast<double>(round)},
                                      {"slave", static_cast<double>(i)}});
      std::optional<mkp::Solution> own_best;
      if (!record.b_best.empty()) own_best = record.b_best.front();
      mkp::Solution next_initial = mkp::Solution(inst);
      InitKind kind = InitKind::kOwnBest;
      if (config.share_solutions) {
        auto decision = isp.next_initial(own_best, result.best,
                                         record.rounds_unchanged, master_rng);
        next_initial = std::move(decision.initial);
        kind = decision.kind;
        if (kind == InitKind::kGlobalBest) ++result.global_best_injections;
        if (kind == InitKind::kRandom) ++result.random_restarts;
      } else {
        next_initial = own_best ? *own_best : *record.initial;
      }
      if (record.initial && next_initial == *record.initial) {
        ++record.rounds_unchanged;
      } else {
        record.rounds_unchanged = 0;
      }
      record.initial = std::move(next_initial);
      log.init_kind = kind;
      result.timeline.push_back(std::move(log));
    }

    // Pool degradation: a slave whose last `degrade_after_faults` rounds all
    // faulted is retired rather than respawned forever — the run continues
    // on the surviving P-k slaves (§9). Its strategy outlives it when it
    // out-scores the weakest survivor. The last slave always stays.
    if (config.degrade_after_faults > 0) {
      for (std::size_t i = 0; i < config.num_slaves; ++i) {
        auto& record = records[i];
        if (!record.active ||
            record.consecutive_faults < config.degrade_after_faults) {
          continue;
        }
        if (active_count() <= 1) break;
        record.active = false;
        ++result.slaves_retired;
        if (telemetry_on) ++result.counters[obs::Counter::kPoolDegraded];
        if (obs::tracer().enabled()) {
          obs::tracer().instant("pool_degraded",
                                {{"round", static_cast<double>(round)},
                                 {"slave", static_cast<double>(i)},
                                 {"survivors",
                                  static_cast<double>(active_count())}});
        }
        SlaveState* weakest = nullptr;
        for (auto& other : records) {
          if (!other.active) continue;
          if (weakest == nullptr || other.score < weakest->score) {
            weakest = &other;
          }
        }
        if (weakest != nullptr && record.score > weakest->score) {
          weakest->strategy = record.strategy;
          weakest->score = record.score;
        }
      }
    }

    ++result.rounds_completed;
    obs::metrics().counter("master_rounds_total").add();
    obs::metrics()
        .histogram("coop_round_seconds")
        .record(watch.elapsed_seconds() - round_start_seconds);
    if (!config.checkpoint_path.empty() &&
        (round + 1 - first_round) %
                std::max<std::size_t>(1, config.checkpoint_every_rounds) ==
            0) {
      write_checkpoint(round + 1);
    }
  }

  // A final checkpoint when the cadence missed the last executed round, so
  // --resume after an orderly exit (target hit, deadline) starts from the
  // true frontier rather than replaying finished work.
  if (!config.checkpoint_path.empty() &&
      result.rounds_completed > last_checkpoint_round && !result.cancelled) {
    // rounds_completed is carried across restarts, so it equals the index of
    // the next unexecuted round.
    write_checkpoint(result.rounds_completed);
  }

  for (const auto& ch : channels) {
    // A closed inbox here means the harness tore the slave down first (an
    // orderly wind-down races the broadcast); the Stop is redundant for that
    // slave, but the drop is counted, never silently ignored.
    if (!ch.inbox->send(Stop{})) {
      ++result.dropped_messages;
      if (telemetry_on) ++result.counters[obs::Counter::kDroppedMessages];
      if (obs::tracer().enabled()) {
        obs::tracer().instant("dropped_message", {}, "kind", "stop");
      }
    }
  }
  // Export the end-of-run slave records so a warm-start store can persist
  // them; `records` has no further reader past this point.
  result.final_slaves = std::move(records);
  // Whole-run wall time: a resumed run reports the original run's elapsed
  // seconds plus its own, matching the carried aggregate counters.
  result.seconds = time_offset + watch.elapsed_seconds();
  return result;
}

}  // namespace pts::parallel
