#include "parallel/comm.hpp"

// Header-only today; the translation unit anchors the library target.
