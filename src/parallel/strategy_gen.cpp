#include "parallel/strategy_gen.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace pts::parallel {

namespace {

std::size_t scale_up(std::size_t value, double factor, std::size_t lo, std::size_t hi) {
  const auto scaled = static_cast<std::size_t>(
      std::ceil(static_cast<double>(value) * factor));
  return std::clamp(std::max(scaled, value + 1), lo, hi);
}

std::size_t scale_down(std::size_t value, double factor, std::size_t lo, std::size_t hi) {
  const auto scaled = static_cast<std::size_t>(
      std::floor(static_cast<double>(value) / factor));
  return std::clamp(std::min(scaled, value > 0 ? value - 1 : value), lo, hi);
}

double mean_pairwise_hamming(std::span<const mkp::Solution> pool) {
  if (pool.size() < 2) return 0.0;
  std::size_t total = 0;
  std::size_t pairs = 0;
  for (std::size_t a = 0; a < pool.size(); ++a) {
    for (std::size_t b = a + 1; b < pool.size(); ++b) {
      total += pool[a].hamming_distance(pool[b]);
      ++pairs;
    }
  }
  return static_cast<double>(total) / static_cast<double>(pairs);
}

}  // namespace

std::string to_string(RetuneKind kind) {
  switch (kind) {
    case RetuneKind::kKept: return "kept";
    case RetuneKind::kDiversified: return "diversified";
    case RetuneKind::kIntensified: return "intensified";
    case RetuneKind::kRandomized: return "randomized";
  }
  return "?";
}

tabu::Strategy random_strategy(Rng& rng, const tabu::StrategyBounds& bounds) {
  tabu::Strategy strategy;
  strategy.tabu_tenure = static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(bounds.min_tenure),
      static_cast<std::int64_t>(bounds.max_tenure)));
  strategy.nb_drop = static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(bounds.min_drop),
      static_cast<std::int64_t>(bounds.max_drop)));
  strategy.nb_local = static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(bounds.min_local),
      static_cast<std::int64_t>(bounds.max_local)));
  // Half the strategies evaluate every candidate (0); the rest sample.
  strategy.nb_candidates =
      rng.bernoulli(0.5)
          ? 0
          : static_cast<std::size_t>(rng.uniform_int(
                static_cast<std::int64_t>(bounds.min_candidates),
                static_cast<std::int64_t>(bounds.max_candidates)));
  return strategy;
}

SgpDecision StrategyGenerator::retune(const tabu::Strategy& current,
                                      std::span<const mkp::Solution> pool,
                                      std::size_t num_items, Rng& rng) const {
  PTS_CHECK(num_items > 0);
  const auto& b = config_.bounds;
  SgpDecision decision;
  decision.score = config_.initial_score;

  if (pool.size() < 2) {
    decision.kind = RetuneKind::kRandomized;
    decision.strategy = random_strategy(rng, b);
    return decision;
  }

  const double spread = mean_pairwise_hamming(pool) / static_cast<double>(num_items);
  const double f = config_.retune_factor;
  if (spread < config_.clustered_below) {
    // The slave's best solutions sit in one small area: push it outward.
    decision.kind = RetuneKind::kDiversified;
    decision.strategy = current;  // untouched fields (nb_candidates) carry over
    decision.strategy.tabu_tenure = scale_up(current.tabu_tenure, f, b.min_tenure, b.max_tenure);
    decision.strategy.nb_drop = scale_up(current.nb_drop, f, b.min_drop, b.max_drop);
    decision.strategy.nb_local = scale_down(current.nb_local, f, b.min_local, b.max_local);
  } else if (spread > config_.spread_above) {
    // The slave roams far apart: pull it inward around good solutions.
    decision.kind = RetuneKind::kIntensified;
    decision.strategy = current;  // untouched fields (nb_candidates) carry over
    decision.strategy.tabu_tenure = scale_down(current.tabu_tenure, f, b.min_tenure, b.max_tenure);
    decision.strategy.nb_drop = scale_down(current.nb_drop, f, b.min_drop, b.max_drop);
    decision.strategy.nb_local = scale_up(current.nb_local, f, b.min_local, b.max_local);
  } else {
    decision.kind = RetuneKind::kRandomized;
    decision.strategy = random_strategy(rng, b);
  }
  return decision;
}

SgpDecision StrategyGenerator::update(const tabu::Strategy& current, int score,
                                      bool improved, std::span<const mkp::Solution> pool,
                                      std::size_t num_items, Rng& rng) const {
  const int next_score = improved ? score + 1 : score - 1;
  if (next_score > 0) {
    return SgpDecision{current, next_score, RetuneKind::kKept};
  }
  return retune(current, pool, num_items, rng);
}

}  // namespace pts::parallel
