#pragma once
// The master process (§4.2, Figure 2):
//
//   read and send problem data to the slaves
//   for each search iteration:
//     SGP + ISP -> per-slave (initial solution, strategy)
//     scatter assignments; gather every slave's B best solutions
//
// Cooperation is controlled by two independent switches so the Table-2 modes
// never diverge structurally: share_solutions (ISP pooling) and
// adapt_strategies (SGP retuning). ITS = both off, CTS1 = share only,
// CTS2 = both on.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mkp/instance.hpp"
#include "parallel/comm.hpp"
#include "parallel/init_gen.hpp"
#include "parallel/snapshot.hpp"
#include "parallel/strategy_gen.hpp"
#include "tabu/strategy.hpp"

namespace pts::parallel {

/// Cross-run seeding material (DESIGN.md §7): per-slave strategies, SGP
/// scores and initial solutions harvested from an earlier run's final
/// records. The master consumes entry i for slave i while entries last and
/// falls back to its usual random draws beyond them — crucially WITHOUT
/// consuming the RNG draws the replaced initialization would have made only
/// when no warm start is supplied at all, so a run with warm_start == nullptr
/// is bit-identical to the pre-warm-start code. All vectors may be shorter
/// than num_slaves (or empty); `initials` entries must reference the same
/// instance the run searches.
struct WarmStart {
  std::vector<tabu::Strategy> strategies;
  std::vector<int> scores;  ///< parallel to `strategies`; missing = initial_score
  std::vector<mkp::Solution> initials;
};

struct MasterConfig {
  std::size_t num_slaves = 8;
  std::size_t search_iterations = 10;  ///< the paper's Nb_search_it

  /// Per-slave, per-round work budget in move*nb_drop units. The master
  /// balances wall time across heterogeneous strategies by assigning
  /// max_moves = work / nb_drop (§4.2: "give a value to Nb_it which is
  /// proportional to Nb_drop conversely").
  std::uint64_t work_per_slave_round = 20'000;

  std::uint64_t seed = 1;
  bool share_solutions = true;   ///< ISP pooling (CTS1, CTS2)
  bool adapt_strategies = true;  ///< SGP retuning (CTS2)

  IspConfig isp;
  SgpConfig sgp;
  tabu::TsParams base_params;  ///< template: intensification kind, thresholds...

  /// When true, slaves alternate between the paper's two intensification
  /// procedures (even slaves swap components, odd slaves run strategic
  /// oscillation) instead of all using base_params.intensification — the
  /// heterogeneity §3.2's "two intensification procedures have been used"
  /// implies.
  bool mix_intensification = false;

  /// Extension (tabu/path_relink.hpp): after each gather, relink the global
  /// best against every slave's best and adopt any improvement found on the
  /// path. Off by default (not part of the paper's algorithm).
  bool relink_elites = false;

  std::optional<double> target_value;  ///< stop all slaves once reached
  double time_limit_seconds = 0.0;     ///< 0 = unbounded rounds

  /// Cooperative stop: checked at the top of every round and during the
  /// gather wait itself, and forwarded to every slave's engine via its
  /// assignment — a fired token unwinds the whole farm within one
  /// inner-loop check per slave plus one mailbox poll slice.
  CancelToken cancel;

  /// Crash safety (DESIGN.md §9). Non-empty: atomically write a
  /// snapshot::MasterCheckpoint here every `checkpoint_every_rounds` rounds
  /// (and after the final round). A write failure is counted, traced and
  /// tolerated — durability must never kill the search it protects.
  std::string checkpoint_path;
  std::size_t checkpoint_every_rounds = 1;

  /// Resume from a previously loaded checkpoint (must outlive the run, and
  /// must pass snapshot::check_compatible against this config — the caller
  /// validates; run_master CHECKs the structural invariants). The run
  /// restores the master RNG mid-stream, so a fault-free resumed run
  /// reproduces the uninterrupted run's final best bit for bit.
  const snapshot::MasterCheckpoint* resume = nullptr;

  /// Core-reduction provenance copied verbatim into every checkpoint this
  /// run writes (empty when the run searches the full instance). The master
  /// itself never looks inside — the runner's core layer owns the mapping;
  /// the master just keeps the snapshot self-describing.
  snapshot::CoreSection core_section;

  /// Pool degradation: after this many back-to-back faulted rounds a slave
  /// is retired — no further assignments; the survivors absorb its work
  /// share and, when it out-scores them, its strategy. 0 disables (the
  /// pre-recovery behavior: reseed and retry forever). The last active
  /// slave is never retired.
  std::size_t degrade_after_faults = 0;

  /// Seed the fresh-init path from an earlier run's state (ignored when
  /// resuming from a checkpoint, which restores the full state anyway).
  /// Must outlive the run. nullptr = the classic cold start.
  const WarmStart* warm_start = nullptr;
};

/// One line of the run's audit log (one slave in one round).
struct RoundLog {
  std::size_t round = 0;
  std::size_t slave = 0;
  tabu::Strategy strategy;        ///< strategy the slave ran this round
  InitKind init_kind = InitKind::kOwnBest;
  double initial_value = 0.0;
  double final_value = 0.0;
  int score_after = 0;
  RetuneKind retune = RetuneKind::kKept;
  std::uint64_t moves = 0;
  double seconds = 0.0;
};

struct MasterResult {
  mkp::Solution best;
  double best_value = 0.0;
  std::vector<RoundLog> timeline;
  std::size_t rounds_completed = 0;
  std::uint64_t total_moves = 0;
  double seconds = 0.0;
  bool reached_target = false;

  /// True when the run stopped because MasterConfig::cancel fired rather
  /// than by exhausting its rounds/time or reaching the target.
  bool cancelled = false;

  std::size_t strategy_retunes = 0;
  std::size_t global_best_injections = 0;
  std::size_t random_restarts = 0;
  std::size_t relink_improvements = 0;  ///< only with relink_elites
  /// Rounds that ended with a SlaveFault instead of a Report (the round
  /// proceeded with the remaining reports), and the master-side respawns
  /// that followed: the faulted slave's record is reseeded with a fresh
  /// random strategy and start, so the thread re-enters the next round as
  /// if newly spawned.
  std::size_t slave_faults = 0;
  std::size_t slave_respawns = 0;
  /// Slaves retired by the degradation policy (never recovers within a run).
  std::size_t slaves_retired = 0;
  /// Checkpoints durably written / write attempts that failed.
  std::size_t checkpoints_written = 0;
  std::size_t checkpoint_failures = 0;
  /// First round this run executed (nonzero only when resumed).
  std::size_t resumed_from_round = 0;
  /// Accumulated gap between the first and last report of each round —
  /// the rendezvous idle cost of the synchronous scheme (ablation A5).
  double rendezvous_idle_seconds = 0.0;
  /// Messages whose send hit a closed endpoint and was explicitly discarded
  /// (the master's Stop broadcast racing an orderly teardown, plus — when
  /// the runner collects them — slave reports dropped on a closed report
  /// box). Mirrored into counters under "dropped_messages"; nonzero outside
  /// a teardown race indicates a wiring bug.
  std::size_t dropped_messages = 0;

  /// Telemetry (obs/): exact merged totals over every (slave, round) report,
  /// the per-snapshot distributions behind them, and the stitched anytime
  /// curve — per-slave samples re-based to the master's wall clock and
  /// cumulative move count, plus the global best-so-far envelope under
  /// source == obs::kGlobalSource. All empty when telemetry is disabled.
  obs::Counters counters;
  obs::CounterStats counter_stats;
  std::vector<obs::AnytimeSample> anytime;

  /// End-of-run per-slave records (strategies, SGP scores, elite pools) —
  /// the raw material a warm-start store persists for future runs. Same
  /// shape as a checkpoint's slave section; empty only for runs that never
  /// built records (SEQ has no master and never produces a MasterResult).
  std::vector<snapshot::SlaveState> final_slaves;
};

/// Observer for the master's control flow (Fig. 2 structural tests).
class MasterTrace {
 public:
  virtual ~MasterTrace() = default;
  virtual void on_round_start(std::size_t /*round*/) {}
  virtual void on_assignments_sent(std::size_t /*round*/, std::size_t /*count*/) {}
  virtual void on_reports_gathered(std::size_t /*round*/, std::size_t /*count*/) {}
};

/// Drives one full run over already-connected slave channels. channels[i]
/// must be wired to a live slave i. Sends Stop to every slave before
/// returning.
MasterResult run_master(const mkp::Instance& inst,
                        const std::vector<SlaveChannels>& channels,
                        const MasterConfig& config, MasterTrace* trace = nullptr);

}  // namespace pts::parallel
