#pragma once
// Crash-safe master checkpoints (DESIGN.md §9).
//
// A checkpoint captures everything the master needs to continue a cooperative
// run after a kill -9: the global best, every slave's record (strategy,
// score, B-best pool, next initial, stagnation counter), the master RNG's raw
// xoshiro state, and the aggregate counters already earned. Slave-side state
// needs no capture: each round's slave RNG derives from (seed, slave, round)
// and the round-local frequency memory is rebuilt per assignment, so
// restoring the master restores the whole run — a resumed run replays the
// exact draw sequence of an uninterrupted one (bit-identical final best).
//
// File layout (little-endian, via parallel/codec.hpp):
//
//   offset 0   u8[4]  magic   'P' 'T' 'S' 'C'
//   offset 4   u8     version kSnapshotVersion
//   offset 5   u32    crc     CRC-32 (util/crc32.hpp) of the body bytes
//   offset 9   u64    size    body byte count
//   offset 17  ...    body    codec-encoded MasterCheckpoint
//
// Writes are atomic: body to `path.tmp`, fsync, rename over `path`, fsync the
// directory — a crash mid-write leaves either the old checkpoint or the new
// one, never a torn file. The loader is total in the wire.cpp sense: short
// headers, bad magic/version, size mismatches, CRC failures and truncated or
// over-counted sections all come back as a Status, never a crash or an
// unbounded allocation; solutions are revalidated against the instance
// (bit/value consistency) exactly as frames from a worker are.

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bounds/reduction.hpp"
#include "mkp/instance.hpp"
#include "mkp/solution.hpp"
#include "tabu/strategy.hpp"
#include "util/status.hpp"

namespace pts::parallel::snapshot {

/// v2 appends the core-reduction section (see CoreSection). v1 files are
/// still accepted — they decode with an empty (disengaged) core section.
inline constexpr std::uint8_t kSnapshotVersion = 2;
inline constexpr std::uint8_t kSnapshotMinVersion = 1;
inline constexpr std::size_t kSnapshotHeaderBytes = 17;

/// Ceiling on one checkpoint body, mirroring wire::kMaxPayloadBytes: a
/// corrupt size field must be rejected before any allocation happens.
inline constexpr std::uint64_t kMaxBodyBytes = 256ull << 20;

/// One slave's master-side record — the paper's data-structure entry
/// (strategy St_i, initial S_i, B best solutions, score_i) plus the
/// recovery-era fields the degradation policy and telemetry stitching need.
struct SlaveState {
  tabu::Strategy strategy;
  int score = 0;
  std::optional<mkp::Solution> initial;
  std::vector<mkp::Solution> b_best;
  std::size_t rounds_unchanged = 0;
  /// Work-unit offset for anytime stitching (moves this slave had already
  /// spent before the next round).
  std::uint64_t moves_before_round = 0;
  /// Back-to-back faulted rounds; feeds the pool-degradation threshold.
  std::size_t consecutive_faults = 0;
  /// False once the master retired this slave (pool degradation): it gets no
  /// further assignments and the survivors absorb its work share.
  bool active = true;
};

/// Provenance of a core-reduced run (DESIGN.md "Core-problem reduction").
/// When ParallelConfig::core engaged, every solution in the checkpoint —
/// best, initials, elite pools — lives in CORE coordinates, and the
/// instance_fingerprint above is the fingerprint of the core instance the
/// master actually searched. This section records the reduction that built
/// that core: the FULL instance's fingerprint plus the per-variable fixing
/// status. A resumed run rederives the reduction from the full instance
/// (build_core_problem is deterministic) and refuses to resume if it does
/// not reproduce this section bit-for-bit — a drifted reduction would remap
/// the checkpointed core bits onto the wrong variables.
struct CoreSection {
  std::uint32_t full_instance_fingerprint = 0;
  std::vector<bounds::FixedValue> status;  ///< one entry per FULL variable

  /// Disengaged sections (no core reduction, or a v1 file) are empty.
  [[nodiscard]] bool engaged() const { return !status.empty(); }

  friend bool operator==(const CoreSection&, const CoreSection&) = default;
};

/// The master's full resumable state at a round boundary.
struct MasterCheckpoint {
  explicit MasterCheckpoint(const mkp::Instance& inst) : best(inst) {}

  // -- Identity: a checkpoint only resumes the run that wrote it. --
  std::uint32_t instance_fingerprint = 0;  ///< CRC-32 of the encoded instance
  std::uint64_t seed = 0;
  std::uint32_t num_slaves = 0;
  bool share_solutions = true;
  bool adapt_strategies = true;

  /// First round the resumed run should execute.
  std::uint64_t next_round = 0;

  // -- Global search state. --
  mkp::Solution best;
  std::array<std::uint64_t, 4> master_rng_state{};
  std::vector<SlaveState> slaves;

  // -- Aggregates carried across the restart so a resumed MasterResult
  //    reports whole-run totals, and offsets for anytime re-basing. --
  std::uint64_t total_moves = 0;
  double elapsed_seconds = 0.0;
  std::uint64_t rounds_completed = 0;
  std::uint64_t strategy_retunes = 0;
  std::uint64_t global_best_injections = 0;
  std::uint64_t random_restarts = 0;
  std::uint64_t relink_improvements = 0;
  std::uint64_t slave_faults = 0;
  std::uint64_t slave_respawns = 0;

  // -- Core-reduction provenance (v2; empty = not core-reduced). --
  CoreSection core;
};

/// Identity hash of an instance: CRC-32 over its wire encoding (name, sizes,
/// profits, weights, capacities, known optimum). Two instances fingerprint
/// equal iff a worker handshake would serialize them identically.
[[nodiscard]] std::uint32_t instance_fingerprint(const mkp::Instance& inst);

/// 64-bit content address over the same canonical wire encoding (FNV-1a).
/// The service's dedup index and warm-start store key on this — the wider
/// width keeps accidental collisions out of cross-tenant state sharing (and
/// collisions are verified by byte comparison anyway, never trusted).
[[nodiscard]] std::uint64_t instance_hash64(const mkp::Instance& inst);

// -- Byte-level round trip (tests and tooling drive these directly). --

[[nodiscard]] std::vector<std::uint8_t> encode_checkpoint(
    const MasterCheckpoint& checkpoint);

/// Total decoder over a full file image (header + body). Solutions are
/// rebuilt against `inst`; a fingerprint mismatch rejects the file as
/// foreign before any solution is trusted.
[[nodiscard]] Expected<MasterCheckpoint> decode_checkpoint(
    std::span<const std::uint8_t> bytes, const mkp::Instance& inst);

// -- File I/O. --

/// Atomic write: `path.tmp` + fsync + rename + directory fsync.
[[nodiscard]] Status save_checkpoint(const std::string& path,
                                     const MasterCheckpoint& checkpoint);

/// Reads and decodes `path`. kUnavailable when the file does not exist (the
/// caller distinguishes "no checkpoint yet" from "corrupt checkpoint");
/// kInvalidArgument for any malformed content.
[[nodiscard]] Expected<MasterCheckpoint> load_checkpoint(
    const std::string& path, const mkp::Instance& inst);

/// Rejects resuming under a different configuration than the one that wrote
/// the checkpoint — seed, slave count or cooperation mode drift would
/// silently break the deterministic replay the snapshot promises.
[[nodiscard]] Status check_compatible(const MasterCheckpoint& checkpoint,
                                      const mkp::Instance& inst,
                                      std::uint64_t seed,
                                      std::size_t num_slaves,
                                      bool share_solutions,
                                      bool adapt_strategies);

}  // namespace pts::parallel::snapshot
