#include "parallel/slave.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>

#include "obs/trace.hpp"
#include "tabu/engine.hpp"
#include "util/check.hpp"

namespace pts::parallel {

Report run_assignment(const mkp::Instance& inst, std::size_t slave_id,
                      std::uint64_t seed, const Assignment& assignment) {
  // Stream id folds (slave, round) into one 64-bit label.
  Rng base(seed);
  Rng rng = base.derive((static_cast<std::uint64_t>(slave_id) << 32) ^
                        static_cast<std::uint64_t>(assignment.round));

  obs::SpanScope span("slave_ts_round",
                      {{"slave", static_cast<double>(slave_id)},
                       {"round", static_cast<double>(assignment.round)}});
  auto ts = tabu::tabu_search(inst, assignment.initial, assignment.params, rng);

  Report report;
  report.slave_id = slave_id;
  report.round = assignment.round;
  report.initial_value = assignment.initial.value();
  report.final_value = ts.best_value;
  report.elite = std::move(ts.elite);
  report.moves = ts.moves;
  report.seconds = ts.seconds;
  report.reached_target = ts.reached_target;
  report.counters = ts.counters;
  report.anytime = std::move(ts.anytime);
  // The engine does not know who ran it; stamp the samples with our id.
  for (auto& sample : report.anytime) {
    sample.source = static_cast<std::int32_t>(slave_id);
  }
  return report;
}

SlaveLoopStats slave_loop(const mkp::Instance& inst, std::size_t slave_id,
                          std::uint64_t seed, Transport& transport,
                          const FaultInjector* fault, CancelToken cancel) {
  SlaveLoopStats stats;
  // Logical trace id: master = 0, slave i = i + 1.
  obs::TidScope tid_scope(static_cast<std::uint32_t>(slave_id) + 1);
  const auto send_counted = [&](FromSlave message) {
    // A false send means the report box closed (or the socket died) under
    // us: the harness is tearing down, our message cannot arrive. Discard
    // explicitly and count it — a silent drop here is exactly the bug class
    // that hangs a rendezvous with no trace to show for it.
    if (!transport.send(std::move(message))) {
      ++stats.dropped_messages;
      if (obs::tracer().enabled()) {
        obs::tracer().instant("dropped_message",
                              {{"slave", static_cast<double>(slave_id)}},
                              "kind", "report");
      }
    }
  };
  while (auto message = transport.receive(cancel)) {
    if (std::holds_alternative<Stop>(*message)) break;
    const auto& assignment = std::get<Assignment>(*message);
    // A throwing round must never silence the rendezvous: convert every
    // escape into a SlaveFault so the master still gets one message for this
    // (slave, round) and can degrade gracefully instead of hanging.
    try {
      if (fault && fault->stall_seconds) {
        const double stall = fault->stall_seconds(slave_id, assignment.round);
        if (stall > 0.0) {
          std::this_thread::sleep_for(std::chrono::duration<double>(stall));
        }
      }
      if (fault && fault->should_throw &&
          fault->should_throw(slave_id, assignment.round)) {
        throw std::runtime_error("injected slave fault");
      }
      send_counted(run_assignment(inst, slave_id, seed, assignment));
    } catch (const std::exception& error) {
      send_counted(SlaveFault{slave_id, assignment.round, error.what()});
    } catch (...) {
      send_counted(SlaveFault{slave_id, assignment.round, "unknown exception"});
    }
  }
  return stats;
}

SlaveLoopStats slave_loop(const mkp::Instance& inst, std::size_t slave_id,
                          std::uint64_t seed, SlaveChannels channels) {
  PTS_CHECK(channels.inbox && channels.outbox);
  MailboxTransport transport(channels.inbox, channels.outbox);
  return slave_loop(inst, slave_id, seed, transport, channels.fault,
                    channels.cancel);
}

}  // namespace pts::parallel
