#include "parallel/slave.hpp"

#include <stdexcept>

#include "obs/trace.hpp"
#include "tabu/engine.hpp"
#include "util/check.hpp"

namespace pts::parallel {

Report run_assignment(const mkp::Instance& inst, std::size_t slave_id,
                      std::uint64_t seed, const Assignment& assignment) {
  // Stream id folds (slave, round) into one 64-bit label.
  Rng base(seed);
  Rng rng = base.derive((static_cast<std::uint64_t>(slave_id) << 32) ^
                        static_cast<std::uint64_t>(assignment.round));

  obs::SpanScope span("slave_ts_round",
                      {{"slave", static_cast<double>(slave_id)},
                       {"round", static_cast<double>(assignment.round)}});
  auto ts = tabu::tabu_search(inst, assignment.initial, assignment.params, rng);

  Report report;
  report.slave_id = slave_id;
  report.round = assignment.round;
  report.initial_value = assignment.initial.value();
  report.final_value = ts.best_value;
  report.elite = std::move(ts.elite);
  report.moves = ts.moves;
  report.seconds = ts.seconds;
  report.reached_target = ts.reached_target;
  report.counters = ts.counters;
  report.anytime = std::move(ts.anytime);
  // The engine does not know who ran it; stamp the samples with our id.
  for (auto& sample : report.anytime) {
    sample.source = static_cast<std::int32_t>(slave_id);
  }
  return report;
}

void slave_loop(const mkp::Instance& inst, std::size_t slave_id, std::uint64_t seed,
                SlaveChannels channels) {
  PTS_CHECK(channels.inbox && channels.outbox);
  // Logical trace id: master = 0, slave i = i + 1.
  obs::TidScope tid_scope(static_cast<std::uint32_t>(slave_id) + 1);
  while (auto message = channels.inbox->receive(channels.cancel)) {
    if (std::holds_alternative<Stop>(*message)) break;
    const auto& assignment = std::get<Assignment>(*message);
    // A throwing round must never silence the rendezvous: convert every
    // escape into a SlaveFault so the master still gets one message for this
    // (slave, round) and can degrade gracefully instead of hanging.
    try {
      if (channels.fault && channels.fault->should_throw &&
          channels.fault->should_throw(slave_id, assignment.round)) {
        throw std::runtime_error("injected slave fault");
      }
      channels.outbox->send(run_assignment(inst, slave_id, seed, assignment));
    } catch (const std::exception& error) {
      channels.outbox->send(SlaveFault{slave_id, assignment.round, error.what()});
    } catch (...) {
      channels.outbox->send(SlaveFault{slave_id, assignment.round, "unknown exception"});
    }
  }
}

}  // namespace pts::parallel
