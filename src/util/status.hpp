#pragma once
// Structured error reporting for the library's outward-facing entry points.
//
// PTS_CHECK stays the right tool for internal invariants — a broken invariant
// means the library itself is wrong and recovery is meaningless. But "the
// caller passed an unknown preset name" or "the job's deadline passed" are
// not bugs; a service serving many callers must hand them back as values, not
// abort the process. Status carries a coarse code plus a human-readable
// message; Expected<T> is the result-or-error sum type the redesigned APIs
// (parallel::solve, the solver service) return.

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

#include "util/check.hpp"

namespace pts {

/// Coarse error taxonomy, deliberately aligned with the canonical RPC codes
/// so a future network front-end can map them 1:1.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,    ///< the request itself is malformed (unknown preset...)
  kCancelled,          ///< cancelled by the caller before completion
  kDeadlineExceeded,   ///< the job's wall-clock deadline passed
  kResourceExhausted,  ///< rejected by backpressure (queue full / shed)
  kUnavailable,        ///< the service is shutting down
  kInternal,           ///< an unexpected failure inside the solver
};

[[nodiscard]] constexpr const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "?";
}

/// A code plus a message. Default-constructed Status is OK.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status invalid_argument(std::string msg) {
    return {StatusCode::kInvalidArgument, std::move(msg)};
  }
  static Status cancelled(std::string msg) {
    return {StatusCode::kCancelled, std::move(msg)};
  }
  static Status deadline_exceeded(std::string msg) {
    return {StatusCode::kDeadlineExceeded, std::move(msg)};
  }
  static Status resource_exhausted(std::string msg) {
    return {StatusCode::kResourceExhausted, std::move(msg)};
  }
  static Status unavailable(std::string msg) {
    return {StatusCode::kUnavailable, std::move(msg)};
  }
  static Status internal(std::string msg) {
    return {StatusCode::kInternal, std::move(msg)};
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "DEADLINE_EXCEEDED: job deadline passed after 0.30s" — what examples
  /// and logs print.
  [[nodiscard]] std::string to_string() const {
    std::string out = pts::to_string(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  bool operator==(const Status& other) const = default;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Result-or-error: holds either a T or a non-OK Status — never both, never
/// neither. Construction from a value or from an error Status is implicit so
/// `return Status::invalid_argument(...)` and `return summary;` both read
/// naturally at return sites.
template <typename T>
class Expected {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): sum-type by design.
  Expected(T value) : data_(std::in_place_index<0>, std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Expected(Status status) : data_(std::in_place_index<1>, std::move(status)) {
    PTS_CHECK_MSG(!std::get<1>(data_).ok(),
                  "an OK Status carries no value; construct Expected from a T");
  }

  [[nodiscard]] bool has_value() const { return data_.index() == 0; }
  explicit operator bool() const { return has_value(); }

  /// The error (or OK when a value is held) — safe to call either way.
  [[nodiscard]] const Status& status() const {
    static const Status kOk{};
    return has_value() ? kOk : std::get<1>(data_);
  }

  [[nodiscard]] T& value() & {
    PTS_CHECK_MSG(has_value(), "Expected::value() on an error");
    return std::get<0>(data_);
  }
  [[nodiscard]] const T& value() const& {
    PTS_CHECK_MSG(has_value(), "Expected::value() on an error");
    return std::get<0>(data_);
  }
  [[nodiscard]] T&& value() && {
    PTS_CHECK_MSG(has_value(), "Expected::value() on an error");
    return std::get<0>(std::move(data_));
  }

  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }

  [[nodiscard]] T value_or(T fallback) const& {
    return has_value() ? std::get<0>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace pts
