#include "util/crc32.hpp"

#include <array>

namespace pts {

namespace {

/// The standard 256-entry table for the reflected polynomial, computed once.
const std::array<std::uint32_t, 256>& crc_table() {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32_continue(std::uint32_t seed,
                             std::span<const std::uint8_t> bytes) {
  const auto& table = crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const std::uint8_t b : bytes) {
    c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  return crc32_continue(0, bytes);
}

}  // namespace pts
