#pragma once
// Plain-text table rendering for the benchmark harness — the benches print
// rows shaped like the paper's Table 1 / Table 2.

#include <cstddef>
#include <string>
#include <vector>

namespace pts {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render with column auto-sizing, a header separator, and 2-space gutters.
  [[nodiscard]] std::string render() const;

  /// Render as CSV (quote-free values assumed).
  [[nodiscard]] std::string render_csv() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  static std::string fmt(double value, int precision = 2);
  static std::string fmt(long long value);
  static std::string fmt(std::size_t value);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pts
