#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace pts {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::span<const double> values, double q) {
  PTS_CHECK(!values.empty());
  PTS_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean_of(std::span<const double> values) {
  RunningStats s;
  for (double v : values) s.add(v);
  return s.mean();
}

double stddev_of(std::span<const double> values) {
  RunningStats s;
  for (double v : values) s.add(v);
  return s.stddev();
}

double deviation_percent(double achieved, double reference) {
  if (reference == 0.0) return 0.0;
  return 100.0 * (reference - achieved) / reference;
}

}  // namespace pts
