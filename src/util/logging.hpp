#pragma once
// Minimal thread-safe leveled logger. Search threads and the master log
// through one serialized sink so interleaved lines stay whole.

#include <cstdio>
#include <optional>
#include <string>

namespace pts {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Default: kWarn (quiet).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses the --log-level spelling ("debug", "info", "warn", "error",
/// "off"); nullopt for anything else.
std::optional<LogLevel> parse_log_level(const std::string& name);
[[nodiscard]] const char* to_string(LogLevel level);

namespace detail {
void log_line(LogLevel level, const std::string& message);
bool log_enabled(LogLevel level);
std::string format_log(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
}  // namespace detail

}  // namespace pts

#define PTS_LOG(level, ...)                                                   \
  do {                                                                        \
    if (::pts::detail::log_enabled(level))                                    \
      ::pts::detail::log_line(level, ::pts::detail::format_log(__VA_ARGS__)); \
  } while (0)

#define PTS_LOG_DEBUG(...) PTS_LOG(::pts::LogLevel::kDebug, __VA_ARGS__)
#define PTS_LOG_INFO(...) PTS_LOG(::pts::LogLevel::kInfo, __VA_ARGS__)
#define PTS_LOG_WARN(...) PTS_LOG(::pts::LogLevel::kWarn, __VA_ARGS__)
#define PTS_LOG_ERROR(...) PTS_LOG(::pts::LogLevel::kError, __VA_ARGS__)
