#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace pts {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PTS_CHECK(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  PTS_CHECK_MSG(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << "  ";
      out << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };

  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TextTable::render_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << ',';
      out << cells[c];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string TextTable::fmt(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  return buffer;
}

std::string TextTable::fmt(long long value) { return std::to_string(value); }

std::string TextTable::fmt(std::size_t value) { return std::to_string(value); }

}  // namespace pts
