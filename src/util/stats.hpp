#pragma once
// Streaming and batch statistics used by benchmark drivers and the master's
// strategy analysis.

#include <cstddef>
#include <span>
#include <vector>

namespace pts {

/// Welford's online mean/variance. Numerically stable; O(1) per observation.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< sample variance (n-1 denominator)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile with linear interpolation; q in [0,1]. Copies & sorts.
double percentile(std::span<const double> values, double q);

double mean_of(std::span<const double> values);
double stddev_of(std::span<const double> values);

/// Relative gap of `achieved` below `reference`, in percent (paper's "Dev. in %").
/// reference must be > 0 for a meaningful result.
double deviation_percent(double achieved, double reference);

}  // namespace pts
