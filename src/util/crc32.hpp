#pragma once
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the integrity check
// guarding on-disk formats (parallel/snapshot, service/journal). The wire
// protocol gets its integrity from a same-machine socketpair plus semantic
// validation; files survive crashes and partial writes, so they carry an
// explicit checksum the loader verifies before trusting any field.

#include <cstddef>
#include <cstdint>
#include <span>

namespace pts {

/// One-shot CRC-32 of `bytes`. crc32(a ++ b) == crc32_continue(crc32(a), b).
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// Streaming form: feed the previous return value back in as `seed`.
[[nodiscard]] std::uint32_t crc32_continue(std::uint32_t seed,
                                           std::span<const std::uint8_t> bytes);

}  // namespace pts
