#pragma once
// Deterministic pseudo-random number generation.
//
// The whole library routes randomness through Rng (xoshiro256**) so that a
// run is reproducible from a single 64-bit seed. Parallel search threads get
// statistically independent streams via Rng::derive(stream_id), which reseeds
// through splitmix64 — the recommended seeding procedure for xoshiro.

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace pts {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
/// Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Unbiased integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    PTS_DCHECK(bound > 0);
    // Lemire's nearly-divisionless method with rejection.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    PTS_DCHECK(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? (*this)() : next_below(span));
  }

  /// Index in [0, n).
  std::size_t index(std::size_t n) { return static_cast<std::size_t>(next_below(n)); }

  /// Real in [0, 1).
  double uniform01() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Real in [lo, hi).
  double uniform_real(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  bool bernoulli(double p) { return uniform01() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  template <typename T>
  void shuffle(std::vector<T>& items) {
    shuffle(std::span<T>(items));
  }

  /// Independent child stream; deterministic in (this stream's seed path, id).
  Rng derive(std::uint64_t stream_id) const {
    std::uint64_t sm = state_[0] ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1));
    Rng child(0);
    for (auto& word : child.state_) word = splitmix64(sm);
    return child;
  }

  /// Raw xoshiro state, for checkpointing: a restored stream continues the
  /// exact draw sequence the snapshot interrupted (bit-identical resume).
  [[nodiscard]] std::array<std::uint64_t, 4> state() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }

  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (std::size_t i = 0; i < 4; ++i) state_[i] = s[i];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// A random permutation of {0, ..., n-1}.
std::vector<std::size_t> random_permutation(std::size_t n, Rng& rng);

}  // namespace pts
