#include "util/cli.hpp"

#include <cstdlib>

#include "util/check.hpp"

namespace pts {

CliArgs CliArgs::parse(int argc, const char* const* argv) {
  CliArgs args;
  if (argc > 0) args.program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      args.positional_.push_back(std::move(token));
      continue;
    }
    token.erase(0, 2);
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      args.options_[token.substr(0, eq)] = token.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.options_[token] = argv[++i];
    } else {
      args.options_[token] = "true";
    }
  }
  return args;
}

bool CliArgs::has(const std::string& key) const { return options_.count(key) > 0; }

std::string CliArgs::get_string(const std::string& key, const std::string& fallback) const {
  auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& key, std::int64_t fallback) const {
  auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace pts
