#include "util/logging.hpp"

#include <atomic>
#include <cstdarg>
#include <mutex>
#include <vector>

namespace pts {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_sink_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

std::optional<LogLevel> parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn" || name == "warning") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off" || name == "none") return LogLevel::kOff;
  return std::nullopt;
}

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

namespace detail {

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= g_level.load(std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& message) {
  std::scoped_lock lock(g_sink_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), message.c_str());
}

std::string format_log(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed <= 0) {
    va_end(args_copy);
    return {};
  }
  std::vector<char> buffer(static_cast<std::size_t>(needed) + 1);
  std::vsnprintf(buffer.data(), buffer.size(), fmt, args_copy);
  va_end(args_copy);
  return std::string(buffer.data(), static_cast<std::size_t>(needed));
}

}  // namespace detail
}  // namespace pts
