#include "util/bitvec.hpp"

#include <bit>

#include "util/simd.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PTS_HAVE_AVX2_BITSCAN 1
#include <immintrin.h>
#else
#define PTS_HAVE_AVX2_BITSCAN 0
#endif
#if defined(__aarch64__)
#define PTS_HAVE_NEON_BITSCAN 1
#include <arm_neon.h>
#else
#define PTS_HAVE_NEON_BITSCAN 0
#endif

namespace pts {

namespace {

// Word-skip helpers for the masked scans: given that word `k` was already
// examined (and was all-skippable), return the first index in (k, nwords)
// whose word is interesting — nonzero for next_one, not-all-ones for
// next_zero — or nwords. The vector variants skip 4 (AVX2) or 2 (NEON)
// words per compare and land on the same index as the scalar loop: they
// only ever FAST-FORWARD over groups proven entirely skippable, then let a
// scalar loop pinpoint the word inside the final group.

std::size_t skip_zero_words_scalar(const std::uint64_t* words, std::size_t k,
                                   std::size_t nwords) {
  while (++k < nwords) {
    if (words[k] != 0) break;
  }
  return k;
}

std::size_t skip_ones_words_scalar(const std::uint64_t* words, std::size_t k,
                                   std::size_t nwords) {
  while (++k < nwords) {
    if (~words[k] != 0) break;
  }
  return k;
}

#if PTS_HAVE_AVX2_BITSCAN

__attribute__((target("avx2"))) std::size_t skip_zero_words_avx2(
    const std::uint64_t* words, std::size_t k, std::size_t nwords) {
  ++k;
  for (; k + 4 <= nwords; k += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + k));
    if (!_mm256_testz_si256(v, v)) break;  // some word in the group is nonzero
  }
  for (; k < nwords; ++k) {
    if (words[k] != 0) break;
  }
  return k;
}

__attribute__((target("avx2"))) std::size_t skip_ones_words_avx2(
    const std::uint64_t* words, std::size_t k, std::size_t nwords) {
  const __m256i ones = _mm256_set1_epi64x(-1);
  ++k;
  for (; k + 4 <= nwords; k += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + k));
    // Group is skippable only when every word is all-ones.
    if (_mm256_movemask_epi8(_mm256_cmpeq_epi64(v, ones)) !=
        static_cast<int>(0xffffffffU)) {
      break;
    }
  }
  for (; k < nwords; ++k) {
    if (~words[k] != 0) break;
  }
  return k;
}

#endif  // PTS_HAVE_AVX2_BITSCAN

#if PTS_HAVE_NEON_BITSCAN

std::size_t skip_zero_words_neon(const std::uint64_t* words, std::size_t k,
                                 std::size_t nwords) {
  ++k;
  for (; k + 2 <= nwords; k += 2) {
    const uint64x2_t v = vld1q_u64(words + k);
    if (vmaxvq_u32(vreinterpretq_u32_u64(v)) != 0) break;
  }
  for (; k < nwords; ++k) {
    if (words[k] != 0) break;
  }
  return k;
}

std::size_t skip_ones_words_neon(const std::uint64_t* words, std::size_t k,
                                 std::size_t nwords) {
  ++k;
  for (; k + 2 <= nwords; k += 2) {
    const uint64x2_t v = vld1q_u64(words + k);
    if (vminvq_u32(vreinterpretq_u32_u64(v)) != 0xffffffffU) break;
  }
  for (; k < nwords; ++k) {
    if (~words[k] != 0) break;
  }
  return k;
}

#endif  // PTS_HAVE_NEON_BITSCAN

std::size_t skip_zero_words(const std::uint64_t* words, std::size_t k,
                            std::size_t nwords) {
  switch (simd::active()) {
#if PTS_HAVE_AVX2_BITSCAN
    case simd::Kind::kAvx2:
      return skip_zero_words_avx2(words, k, nwords);
#endif
#if PTS_HAVE_NEON_BITSCAN
    case simd::Kind::kNeon:
      return skip_zero_words_neon(words, k, nwords);
#endif
    default:
      return skip_zero_words_scalar(words, k, nwords);
  }
}

std::size_t skip_ones_words(const std::uint64_t* words, std::size_t k,
                            std::size_t nwords) {
  switch (simd::active()) {
#if PTS_HAVE_AVX2_BITSCAN
    case simd::Kind::kAvx2:
      return skip_ones_words_avx2(words, k, nwords);
#endif
#if PTS_HAVE_NEON_BITSCAN
    case simd::Kind::kNeon:
      return skip_ones_words_neon(words, k, nwords);
#endif
    default:
      return skip_ones_words_scalar(words, k, nwords);
  }
}

}  // namespace

std::size_t BitVec::popcount() const {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

std::size_t BitVec::next_one(std::size_t from) const {
  if (from >= nbits_) return nbits_;
  std::size_t k = from >> 6;
  // Mask off bits below `from` in the first word; whole-word skipping past
  // it is vectorized (4 words per compare under AVX2) but lands on exactly
  // the word the scalar scan would.
  std::uint64_t w = words_[k] & (~0ULL << (from & 63));
  while (true) {
    if (w != 0) {
      const std::size_t bit = (k << 6) + static_cast<std::size_t>(std::countr_zero(w));
      return bit < nbits_ ? bit : nbits_;
    }
    k = skip_zero_words(words_.data(), k, words_.size());
    if (k == words_.size()) return nbits_;
    w = words_[k];
  }
}

std::size_t BitVec::next_zero(std::size_t from) const {
  if (from >= nbits_) return nbits_;
  std::size_t k = from >> 6;
  std::uint64_t w = ~words_[k] & (~0ULL << (from & 63));
  while (true) {
    if (w != 0) {
      const std::size_t bit = (k << 6) + static_cast<std::size_t>(std::countr_zero(w));
      return bit < nbits_ ? bit : nbits_;
    }
    k = skip_ones_words(words_.data(), k, words_.size());
    if (k == words_.size()) return nbits_;
    w = ~words_[k];
  }
}

std::size_t BitVec::hamming_distance(const BitVec& other) const {
  PTS_CHECK(nbits_ == other.nbits_);
  std::size_t total = 0;
  for (std::size_t k = 0; k < words_.size(); ++k) {
    total += static_cast<std::size_t>(std::popcount(words_[k] ^ other.words_[k]));
  }
  return total;
}

std::uint64_t BitVec::hash() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint64_t w : words_) {
    h ^= w;
    h *= 0x100000001b3ULL;
  }
  h ^= nbits_;
  h *= 0x100000001b3ULL;
  return h;
}

}  // namespace pts
