#include "util/bitvec.hpp"

#include <bit>

namespace pts {

std::size_t BitVec::popcount() const {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

std::size_t BitVec::hamming_distance(const BitVec& other) const {
  PTS_CHECK(nbits_ == other.nbits_);
  std::size_t total = 0;
  for (std::size_t k = 0; k < words_.size(); ++k) {
    total += static_cast<std::size_t>(std::popcount(words_[k] ^ other.words_[k]));
  }
  return total;
}

std::uint64_t BitVec::hash() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint64_t w : words_) {
    h ^= w;
    h *= 0x100000001b3ULL;
  }
  h ^= nbits_;
  h *= 0x100000001b3ULL;
  return h;
}

}  // namespace pts
