#include "util/bitvec.hpp"

#include <bit>

namespace pts {

std::size_t BitVec::popcount() const {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

std::size_t BitVec::next_one(std::size_t from) const {
  if (from >= nbits_) return nbits_;
  std::size_t k = from >> 6;
  // Mask off bits below `from` in the first word, then scan whole words.
  std::uint64_t w = words_[k] & (~0ULL << (from & 63));
  while (true) {
    if (w != 0) {
      const std::size_t bit = (k << 6) + static_cast<std::size_t>(std::countr_zero(w));
      return bit < nbits_ ? bit : nbits_;
    }
    if (++k == words_.size()) return nbits_;
    w = words_[k];
  }
}

std::size_t BitVec::next_zero(std::size_t from) const {
  if (from >= nbits_) return nbits_;
  std::size_t k = from >> 6;
  std::uint64_t w = ~words_[k] & (~0ULL << (from & 63));
  while (true) {
    if (w != 0) {
      const std::size_t bit = (k << 6) + static_cast<std::size_t>(std::countr_zero(w));
      return bit < nbits_ ? bit : nbits_;
    }
    if (++k == words_.size()) return nbits_;
    w = ~words_[k];
  }
}

std::size_t BitVec::hamming_distance(const BitVec& other) const {
  PTS_CHECK(nbits_ == other.nbits_);
  std::size_t total = 0;
  for (std::size_t k = 0; k < words_.size(); ++k) {
    total += static_cast<std::size_t>(std::popcount(words_[k] ^ other.words_[k]));
  }
  return total;
}

std::uint64_t BitVec::hash() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint64_t w : words_) {
    h ^= w;
    h *= 0x100000001b3ULL;
  }
  h ^= nbits_;
  h *= 0x100000001b3ULL;
  return h;
}

}  // namespace pts
