#pragma once
// Cooperative cancellation for long-running solves.
//
// A CancelSource owns the stop state (an external cancel flag plus an
// optional wall-clock deadline); CancelTokens are cheap shared views of it
// that the engine checks once per inner-loop move and every mailbox wait
// checks while blocked. A default-constructed token can never stop — the
// zero-cost path every pre-existing call site keeps.
//
// Blocked waiters don't have to poll the flag: a wait can register its
// condition variable (with the mutex guarding its predicate) on the token,
// and request_cancel() notifies every registered waiter — cancellation
// wakes an idle mailbox wait immediately instead of on the next poll slice.
// Only deadline expiry still needs a timed wait, because a deadline has no
// notifier.
//
// This is std::stop_token's shape, but with a deadline folded in (the two
// stop reasons a solver job needs are "the caller gave up" and "the SLA
// passed") and with the source copyable so a job record can own it.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "util/timer.hpp"

namespace pts {

class CancelSource;

/// Shared, thread-safe view of a CancelSource. Copies observe the same state.
class CancelToken {
 public:
  /// A token that never requests a stop (and costs one null check to poll).
  CancelToken() = default;

  /// True once the owning source's request_cancel() ran.
  [[nodiscard]] bool cancel_requested() const {
    return state_ && state_->cancelled.load(std::memory_order_relaxed);
  }

  /// True once the source's deadline (if any) passed.
  [[nodiscard]] bool deadline_expired() const {
    return state_ && state_->deadline.expired();
  }

  /// The poll the engine's inner loop and the mailbox waits use: cancel OR
  /// deadline.
  [[nodiscard]] bool stop_requested() const {
    return state_ && (state_->cancelled.load(std::memory_order_relaxed) ||
                      state_->deadline.expired());
  }

  /// False for the default token — lets waits skip the timed-poll slicing
  /// when no stop can ever arrive.
  [[nodiscard]] bool can_stop() const { return state_ != nullptr; }

  /// True when the source carries a wall-clock deadline. A waiter whose
  /// token has no deadline can block indefinitely and rely purely on
  /// request_cancel()'s notification; one with a deadline must keep a timed
  /// wait to observe expiry.
  [[nodiscard]] bool has_deadline() const {
    return state_ && state_->deadline.is_bounded();
  }

  /// Seconds until the deadline (infinity when unbounded / default token).
  [[nodiscard]] double deadline_remaining_seconds() const {
    if (!has_deadline()) return std::numeric_limits<double>::infinity();
    return state_->deadline.remaining_seconds();
  }

  /// Registers `cv` — whose wait predicate is guarded by `mutex` — to be
  /// notified by request_cancel(). The notifier locks `mutex` before
  /// notifying, so a waiter that checked cancel_requested() under that mutex
  /// and then blocked cannot miss the wake (no lost-wakeup window). No-op on
  /// a token that cannot stop. Prefer the RAII CancelWaiter below.
  void add_cancel_waiter(std::condition_variable* cv, std::mutex* mutex) const {
    if (!state_) return;
    std::scoped_lock lock(state_->waiters_mutex);
    state_->waiters.push_back({cv, mutex});
  }

  /// Removes a registration. Blocks until any in-flight notification of
  /// `cv` has finished, so the caller may destroy the cv afterwards.
  void remove_cancel_waiter(std::condition_variable* cv) const {
    if (!state_) return;
    std::scoped_lock lock(state_->waiters_mutex);
    auto& waiters = state_->waiters;
    waiters.erase(std::remove_if(waiters.begin(), waiters.end(),
                                 [cv](const auto& w) { return w.cv == cv; }),
                  waiters.end());
  }

 private:
  friend class CancelSource;
  struct Waiter {
    std::condition_variable* cv;
    std::mutex* mutex;
  };
  struct State {
    std::atomic<bool> cancelled{false};
    Deadline deadline;
    // Waiter registry, mutated through const token views (registration does
    // not change the observable stop state).
    mutable std::mutex waiters_mutex;
    mutable std::vector<Waiter> waiters;
  };
  explicit CancelToken(std::shared_ptr<const State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<const State> state_;
};

/// Owns the stop state; hand out token() to everything that should observe
/// it. Copies of a source share the same state.
class CancelSource {
 public:
  CancelSource() : state_(std::make_shared<CancelToken::State>()) {}
  explicit CancelSource(Deadline deadline) : CancelSource() {
    state_->deadline = deadline;
  }

  void request_cancel() {
    state_->cancelled.store(true, std::memory_order_relaxed);
    // Wake every registered waiter. Holding waiters_mutex across the loop
    // means remove_cancel_waiter() cannot return (and the cv cannot be
    // destroyed) mid-notify. Briefly taking each waiter's own mutex orders
    // this notify after the waiter's predicate check: the waiter either saw
    // the flag, or is inside wait() and receives the notification.
    std::scoped_lock registry_lock(state_->waiters_mutex);
    for (const auto& waiter : state_->waiters) {
      { std::scoped_lock waiter_lock(*waiter.mutex); }
      waiter.cv->notify_all();
    }
  }

  [[nodiscard]] CancelToken token() const { return CancelToken(state_); }

 private:
  std::shared_ptr<CancelToken::State> state_;
};

/// RAII registration of a blocked wait on a token: construct before taking
/// the wait's lock, destroy after releasing it.
class CancelWaiter {
 public:
  CancelWaiter(const CancelToken& token, std::condition_variable& cv,
               std::mutex& mutex)
      : token_(token), cv_(&cv) {
    token_.add_cancel_waiter(cv_, &mutex);
  }
  ~CancelWaiter() { token_.remove_cancel_waiter(cv_); }
  CancelWaiter(const CancelWaiter&) = delete;
  CancelWaiter& operator=(const CancelWaiter&) = delete;

 private:
  CancelToken token_;
  std::condition_variable* cv_;
};

}  // namespace pts
