#pragma once
// Cooperative cancellation for long-running solves.
//
// A CancelSource owns the stop state (an external cancel flag plus an
// optional wall-clock deadline); CancelTokens are cheap shared views of it
// that the engine checks once per inner-loop move and every mailbox wait
// checks while blocked. A default-constructed token can never stop — the
// zero-cost path every pre-existing call site keeps.
//
// This is std::stop_token's shape, but with a deadline folded in (the two
// stop reasons a solver job needs are "the caller gave up" and "the SLA
// passed") and with the source copyable so a job record can own it.

#include <atomic>
#include <memory>

#include "util/timer.hpp"

namespace pts {

class CancelSource;

/// Shared, thread-safe view of a CancelSource. Copies observe the same state.
class CancelToken {
 public:
  /// A token that never requests a stop (and costs one null check to poll).
  CancelToken() = default;

  /// True once the owning source's request_cancel() ran.
  [[nodiscard]] bool cancel_requested() const {
    return state_ && state_->cancelled.load(std::memory_order_relaxed);
  }

  /// True once the source's deadline (if any) passed.
  [[nodiscard]] bool deadline_expired() const {
    return state_ && state_->deadline.expired();
  }

  /// The poll the engine's inner loop and the mailbox waits use: cancel OR
  /// deadline.
  [[nodiscard]] bool stop_requested() const {
    return state_ && (state_->cancelled.load(std::memory_order_relaxed) ||
                      state_->deadline.expired());
  }

  /// False for the default token — lets waits skip the timed-poll slicing
  /// when no stop can ever arrive.
  [[nodiscard]] bool can_stop() const { return state_ != nullptr; }

 private:
  friend class CancelSource;
  struct State {
    std::atomic<bool> cancelled{false};
    Deadline deadline;
  };
  explicit CancelToken(std::shared_ptr<const State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<const State> state_;
};

/// Owns the stop state; hand out token() to everything that should observe
/// it. Copies of a source share the same state.
class CancelSource {
 public:
  CancelSource() : state_(std::make_shared<CancelToken::State>()) {}
  explicit CancelSource(Deadline deadline) : CancelSource() {
    state_->deadline = deadline;
  }

  void request_cancel() {
    state_->cancelled.store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] CancelToken token() const { return CancelToken(state_); }

 private:
  std::shared_ptr<CancelToken::State> state_;
};

}  // namespace pts
