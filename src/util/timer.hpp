#pragma once
// Wall-clock measurement helpers used by the search engine (time-budgeted
// stopping) and the benchmark harness.

#include <chrono>
#include <cstdint>
#include <limits>

namespace pts {

/// Monotonic stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] std::int64_t elapsed_ms() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A point in the future against which "are we out of time?" is checked.
/// A default-constructed Deadline never expires.
class Deadline {
 public:
  Deadline() = default;

  static Deadline after_seconds(double seconds) {
    Deadline d;
    d.bounded_ = true;
    d.end_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double>(seconds));
    return d;
  }

  static Deadline unbounded() { return Deadline{}; }

  [[nodiscard]] bool expired() const { return bounded_ && Clock::now() >= end_; }
  [[nodiscard]] bool is_bounded() const { return bounded_; }

  [[nodiscard]] double remaining_seconds() const {
    if (!bounded_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(end_ - Clock::now()).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  bool bounded_ = false;
  Clock::time_point end_{};
};

}  // namespace pts
