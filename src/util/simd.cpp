#include "util/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace pts::simd {

namespace {

bool cpu_has_avx2() noexcept {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Kind probe_best() noexcept {
#if defined(__aarch64__)
  return Kind::kNeon;  // NEON is architecturally baseline on AArch64
#else
  return cpu_has_avx2() ? Kind::kAvx2 : Kind::kScalar;
#endif
}

bool supported(Kind kind) noexcept {
  switch (kind) {
    case Kind::kScalar:
      return true;
    case Kind::kAvx2:
      return cpu_has_avx2();
    case Kind::kNeon:
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

Kind initial_kind() noexcept {
  if (const char* env = std::getenv("PTS_SIMD")) {
    if (std::strcmp(env, "scalar") == 0) return Kind::kScalar;
    if (std::strcmp(env, "avx2") == 0 && supported(Kind::kAvx2)) return Kind::kAvx2;
    if (std::strcmp(env, "neon") == 0 && supported(Kind::kNeon)) return Kind::kNeon;
    if (std::strcmp(env, "auto") == 0) return probe_best();
    // Unknown or unsupported request: fall through to the build default
    // rather than abort — kernels must stay runnable everywhere.
  }
#if defined(PTS_NATIVE_SIMD_DEFAULT) && PTS_NATIVE_SIMD_DEFAULT
  return probe_best();
#else
  return Kind::kScalar;
#endif
}

std::atomic<Kind>& active_slot() noexcept {
  static std::atomic<Kind> slot{initial_kind()};
  return slot;
}

}  // namespace

const char* to_string(Kind kind) noexcept {
  switch (kind) {
    case Kind::kScalar:
      return "scalar";
    case Kind::kAvx2:
      return "avx2";
    case Kind::kNeon:
      return "neon";
  }
  return "unknown";
}

Kind best_supported() noexcept { return probe_best(); }

Kind active() noexcept { return active_slot().load(std::memory_order_relaxed); }

bool set_active(Kind kind) noexcept {
  if (!supported(kind)) return false;
  active_slot().store(kind, std::memory_order_relaxed);
  return true;
}

}  // namespace pts::simd
