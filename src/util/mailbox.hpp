#pragma once
// Message-passing primitives standing in for the PVM layer of the paper's
// 16-Alpha farm. The master/slave protocol of Section 4 maps onto typed
// mailboxes: values are *moved* through a mutex-protected queue, so no
// mutable state is ever shared between search threads (CP.3 / CP.mess).

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/cancel.hpp"

namespace pts {

/// Unbounded MPMC mailbox. close() wakes all blocked receivers; receive()
/// returns nullopt once the box is closed and drained.
template <typename T>
class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Returns false if the mailbox was already closed (message dropped).
  bool send(T message) {
    {
      std::scoped_lock lock(mutex_);
      if (closed_) return false;
      queue_.push_back(std::move(message));
    }
    available_.notify_one();
    return true;
  }

  /// Blocks until a message arrives or the box is closed and empty.
  std::optional<T> receive() {
    std::unique_lock lock(mutex_);
    available_.wait(lock, [this] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    T message = std::move(queue_.front());
    queue_.pop_front();
    return message;
  }

  /// Blocks until a message arrives, the box is closed and empty, or `token`
  /// requests a stop — the cancellable rendezvous wait. Returns nullopt on
  /// close-and-drained or stop; callers that need to tell the two apart ask
  /// the token. A token that can never stop degrades to the plain wait.
  ///
  /// request_cancel() notifies our condition variable through the token's
  /// waiter registry, so an idle wait sleeps indefinitely instead of polling
  /// and still wakes within the notification latency. Only a token carrying
  /// a deadline keeps a timed wait — deadline expiry has no notifier — and
  /// that wait is sized to the deadline's remaining time, not a fixed slice.
  std::optional<T> receive(const CancelToken& token) {
    if (!token.can_stop()) return receive();
    // Register before taking the lock; unregisters after releasing it.
    CancelWaiter waiter(token, available_, mutex_);
    std::unique_lock lock(mutex_);
    const auto ready = [&] {
      return !queue_.empty() || closed_ || token.cancel_requested();
    };
    for (;;) {
      if (!queue_.empty()) {
        T message = std::move(queue_.front());
        queue_.pop_front();
        return message;
      }
      if (closed_ || token.stop_requested()) return std::nullopt;
      if (token.has_deadline()) {
        // Sleep until the deadline (re-checked each lap; bounded laps keep
        // the wait robust against clock quirks), or until send/close/cancel
        // notifies earlier.
        const double remaining =
            std::clamp(token.deadline_remaining_seconds(), 1e-4, 60.0);
        available_.wait_for(lock, std::chrono::duration<double>(remaining), ready);
      } else {
        available_.wait(lock, ready);
      }
    }
  }

  /// Non-blocking receive.
  std::optional<T> try_receive() {
    std::scoped_lock lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T message = std::move(queue_.front());
    queue_.pop_front();
    return message;
  }

  void close() {
    {
      std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    available_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::scoped_lock lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lock(mutex_);
    return queue_.size();
  }

  /// Queue depth for telemetry sampling (obs::Tracer 'C' events). Same value
  /// as size(); the name states the intent — a point-in-time backlog reading
  /// that is stale the moment the lock drops, fine for a trace, wrong for
  /// synchronization.
  [[nodiscard]] std::size_t depth() const { return size(); }

 private:
  mutable std::mutex mutex_;
  std::condition_variable available_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace pts
