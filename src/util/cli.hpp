#pragma once
// Tiny --key=value / --flag argument parser shared by the examples and the
// plain-driver benches. No external dependency; unknown flags are an error so
// typos surface immediately.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pts {

class CliArgs {
 public:
  /// Parses argv. Accepts --key=value, --key value, and bare --flag.
  /// Positional (non --) arguments are collected in order.
  static CliArgs parse(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace pts
