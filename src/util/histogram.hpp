#pragma once
// Log-bucketed latency histogram (DESIGN.md §6): fixed-size, mergeable, and
// cheap enough to live on every latency-shaped path in the system (job
// submit→dispatch→done, cooperation rounds, frame RTTs, checkpoint writes).
//
// Buckets are log-scaled: each octave (factor-of-two range) is split into
// kSubBuckets equal-width slices, so any recorded value lands in a bucket
// whose bounds are within a factor of (kSubBuckets + 1) / kSubBuckets = 9/8
// of each other — percentile estimates carry at most 12.5% relative error
// (the first slice of an octave is the widest; interior slices narrow toward
// 2^(1/kSubBuckets)) while the whole histogram is a fixed ~4 KiB array. Merging two histograms is
// element-wise addition of counts, which makes the type exactly as
// aggregatable as a counter: per-worker histograms sum into a run-wide one,
// per-run histograms into a fleet-wide one (the hybrid-flow-shop speedup
// accounting needs exactly this).
//
// Exact count/min/max travel alongside the buckets, so percentile results
// are always clamped into the true observed range. Values <= 0 (and NaN)
// land in a dedicated underflow bucket and report as 0.0 — a negative
// latency is a clock artifact, not data.

#include <array>
#include <cstddef>
#include <cstdint>

namespace pts {

class LogHistogram {
 public:
  /// Sub-buckets per octave: 8 equal slices → ≤ 9/8 relative bucket width.
  static constexpr int kSubBuckets = 8;
  /// Smallest resolved magnitude ~2^-40 ≈ 9e-13 (sub-picosecond when the
  /// unit is seconds); anything smaller clamps into the first real bucket.
  static constexpr int kMinExponent = -40;
  /// Largest resolved magnitude ~2^24 ≈ 1.7e7 (about 194 days in seconds);
  /// anything larger clamps into the last bucket.
  static constexpr int kMaxExponent = 24;
  /// Bucket 0 is the underflow bucket (v <= 0 or NaN).
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>(kMaxExponent - kMinExponent) * kSubBuckets + 1;

  void record(double value);

  /// Element-wise addition: exact for counts/min/max, and associative for
  /// practical purposes (the sum is a double accumulation).
  void merge(const LogHistogram& other);

  void reset();

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// Value at quantile q in [0, 1] (clamped): the geometric midpoint of the
  /// bucket holding the rank-ceil(q*count) observation, clamped into
  /// [min(), max()]. 0 when empty. Within one bucket width — a factor
  /// (kSubBuckets + 1) / kSubBuckets — of the exact order statistic by
  /// construction.
  [[nodiscard]] double percentile(double q) const;

  [[nodiscard]] std::uint64_t bucket_count(std::size_t index) const {
    return buckets_[index];
  }

  /// Bucket index a value would land in (exposed for the bound tests).
  [[nodiscard]] static std::size_t bucket_index(double value);
  /// Inclusive lower / exclusive upper value bounds of a bucket; bucket 0
  /// reports [0, smallest-resolved).
  [[nodiscard]] static double bucket_lower_bound(std::size_t index);
  [[nodiscard]] static double bucket_upper_bound(std::size_t index);

  friend bool operator==(const LogHistogram& a, const LogHistogram& b) {
    return a.buckets_ == b.buckets_ && a.count_ == b.count_ &&
           a.min_ == b.min_ && a.max_ == b.max_ && a.sum_ == b.sum_;
  }

 private:
  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace pts
