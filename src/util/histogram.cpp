#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace pts {
namespace {

constexpr std::size_t kLastBucket = LogHistogram::kBucketCount - 1;

}  // namespace

std::size_t LogHistogram::bucket_index(double value) {
  if (!(value > 0.0)) return 0;  // <= 0 and NaN: underflow bucket
  int exponent = 0;
  // frexp: value = fraction * 2^exponent with fraction in [0.5, 1).
  const double fraction = std::frexp(value, &exponent);
  if (std::isinf(value)) return kLastBucket;
  // Map [0.5, 1) onto [0, kSubBuckets) linearly — equal-width slices of the
  // octave, the HdrHistogram layout.
  auto sub = static_cast<int>((fraction - 0.5) * 2.0 * kSubBuckets);
  sub = std::clamp(sub, 0, kSubBuckets - 1);
  // frexp's exponent for values in [2^(e-1), 2^e) is e; shift so the
  // smallest resolved octave lands at relative 0.
  const long relative =
      (static_cast<long>(exponent) - 1 - kMinExponent) * kSubBuckets + sub;
  if (relative < 0) return 1;  // tiny positive: clamp into first real bucket
  const auto index = static_cast<std::size_t>(relative) + 1;
  return std::min(index, kLastBucket);
}

double LogHistogram::bucket_lower_bound(std::size_t index) {
  if (index == 0) return 0.0;
  const auto relative = static_cast<long>(std::min(index, kLastBucket)) - 1;
  const auto exponent =
      static_cast<int>(relative / kSubBuckets) + kMinExponent + 1;
  const auto sub = static_cast<int>(relative % kSubBuckets);
  return std::ldexp(0.5 + static_cast<double>(sub) / (2.0 * kSubBuckets),
                    exponent);
}

double LogHistogram::bucket_upper_bound(std::size_t index) {
  if (index == 0) return bucket_lower_bound(1);
  if (index >= kLastBucket) return std::ldexp(1.0, kMaxExponent);
  return bucket_lower_bound(index + 1);
}

void LogHistogram::record(double value) {
  const auto index = bucket_index(value);
  ++buckets_[index];
  const double clean = std::isnan(value) ? 0.0 : value;
  if (count_ == 0) {
    min_ = clean;
    max_ = clean;
  } else {
    min_ = std::min(min_, clean);
    max_ = std::max(max_, clean);
  }
  ++count_;
  sum_ += clean;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBucketCount; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void LogHistogram::reset() { *this = LogHistogram{}; }

double LogHistogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the order statistic we are after, 1-based: ceil(q * count),
  // with q=0 mapping to the first observation.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      if (i == 0) return std::clamp(0.0, min_, max_);
      // Geometric midpoint of the bucket: at most a factor 2^(1/2k) from
      // either edge, so within one bucket width of the true order statistic.
      const double lo = bucket_lower_bound(i);
      const double hi = bucket_upper_bound(i);
      return std::clamp(std::sqrt(lo * hi), min_, max_);
    }
  }
  return max_;
}

}  // namespace pts
