#pragma once
// Runtime SIMD dispatch for the hot kernels (DESIGN.md "Data layout & move
// kernels", "Runtime SIMD dispatch").
//
// The vector kernels (tabu/kernels_simd.cpp, util/bitvec.cpp word scans) are
// always COMPILED when the target architecture can express them — AVX2 via
// per-function target attributes on x86-64, NEON unconditionally on AArch64 —
// but only EXECUTED when (a) the CPU supports them and (b) the active kind
// says so. The active kind is resolved once at startup:
//
//   * PTS_SIMD=scalar|avx2|neon|auto in the environment always wins;
//   * otherwise -DPTS_ENABLE_NATIVE=ON builds default to best_supported()
//     (the build already opted into non-portable codegen via -march=native);
//   * otherwise the default is kScalar, so portable builds keep byte-stable
//     trajectories even if a vector kernel were to drift by an ulp.
//
// Every vector kernel is required to be BIT-COMPATIBLE with its scalar
// counterpart (same accumulation tree, no FMA contraction), so switching
// kinds never changes a fixed-seed trajectory; tests/tabu assert this.
// set_active() exists for those tests and for benchmark A/B columns, not for
// steering production runs mid-flight — it is a process-wide switch.

#include <cstddef>
#include <cstdint>

namespace pts::simd {

enum class Kind : std::uint8_t { kScalar = 0, kAvx2 = 1, kNeon = 2 };

/// Doubles per padded column group; Instance pads the column-major mirror
/// stride to a multiple of this so vector loads never read past a column.
inline constexpr std::size_t kLaneWidth = 4;

[[nodiscard]] const char* to_string(Kind kind) noexcept;

/// Best kind this binary AND this CPU can execute (compile-time availability
/// of the intrinsics TU plus a runtime CPUID/feature probe).
[[nodiscard]] Kind best_supported() noexcept;

/// The kind kernels dispatch on right now.
[[nodiscard]] Kind active() noexcept;

/// Switch the process-wide dispatch. Returns false (and leaves the active
/// kind unchanged) when `kind` is not supported here; kScalar always works.
bool set_active(Kind kind) noexcept;

}  // namespace pts::simd
