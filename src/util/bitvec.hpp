#pragma once
// Compact bit vector used for 0-1 solution storage, Hamming distances and
// solution hashing. Word-parallel operations keep the master's pool-spread
// analysis (pairwise Hamming distances over B-best pools) cheap.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace pts {

class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t nbits)
      : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const { return nbits_; }
  [[nodiscard]] bool empty() const { return nbits_ == 0; }

  [[nodiscard]] bool test(std::size_t i) const {
    PTS_DCHECK(i < nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void set(std::size_t i) {
    PTS_DCHECK(i < nbits_);
    words_[i >> 6] |= (1ULL << (i & 63));
  }

  void reset(std::size_t i) {
    PTS_DCHECK(i < nbits_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }

  void assign(std::size_t i, bool value) { value ? set(i) : reset(i); }

  void flip(std::size_t i) {
    PTS_DCHECK(i < nbits_);
    words_[i >> 6] ^= (1ULL << (i & 63));
  }

  void clear_all() {
    for (auto& w : words_) w = 0;
  }

  [[nodiscard]] std::size_t popcount() const;

  /// Index of the first set bit at position >= from, or size() if none.
  /// Word-level scan: skipping a fully-clear 64-bit word costs one compare.
  [[nodiscard]] std::size_t next_one(std::size_t from) const;

  /// Index of the first clear bit at position >= from, or size() if none.
  /// Lets candidate loops iterate the complement of a dense selection mask
  /// without testing every bit individually.
  [[nodiscard]] std::size_t next_zero(std::size_t from) const;

  /// Number of positions where the two vectors differ. Sizes must match.
  [[nodiscard]] std::size_t hamming_distance(const BitVec& other) const;

  /// 64-bit content hash (FNV-1a over words); equal vectors hash equal.
  [[nodiscard]] std::uint64_t hash() const;

  bool operator==(const BitVec& other) const = default;

  [[nodiscard]] const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace pts
