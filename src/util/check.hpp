#pragma once
// Lightweight precondition / invariant checking.
//
// PTS_CHECK is always on: it guards conditions whose violation means the
// library was misused or an internal invariant broke; recovery is not
// meaningful, so we print and abort (keeps the library exception-free on
// hot paths while still failing loudly in tests and benches).
//
// PTS_DCHECK compiles away in NDEBUG builds and is allowed on hot paths.

#include <cstdio>
#include <cstdlib>

namespace pts::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "PTS_CHECK failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg ? msg : "");
  std::abort();
}

}  // namespace pts::detail

#define PTS_CHECK(cond)                                                 \
  do {                                                                  \
    if (!(cond)) ::pts::detail::check_failed(#cond, __FILE__, __LINE__, nullptr); \
  } while (0)

#define PTS_CHECK_MSG(cond, msg)                                        \
  do {                                                                  \
    if (!(cond)) ::pts::detail::check_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define PTS_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define PTS_DCHECK(cond) PTS_CHECK(cond)
#endif
