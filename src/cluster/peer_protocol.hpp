#pragma once
// Peer control protocol of the solver cluster (DESIGN.md §11): the frames a
// coordinator exchanges with a worker node over their persistent peer
// socket. Job traffic (submissions, acks, results) rides the v3 client
// range (net/protocol.hpp) on the SAME connection; this header covers only
// what clustering adds on top — membership (hello/welcome), liveness
// (ping/pong with a load sample) and journal replication (record batches
// plus applied-through acks).
//
// Total decoders. Every decoder follows the wire discipline: truncated
// payloads, absurd counts, unknown enum bytes and over-long strings come
// back as a Status — never a crash, never an unbounded allocation. Peer
// frames cross a machine boundary, so neither side trusts the other's
// bytes; tests/cluster/test_peer_protocol.cpp fuzzes every frame.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "mkp/instance.hpp"
#include "service/job.hpp"
#include "util/status.hpp"

namespace pts::cluster {

/// Ceiling on records per kPeerReplicate frame: a long catch-up streams in
/// bounded batches instead of one outsized frame.
inline constexpr std::size_t kMaxReplicateRecordsPerFrame = 256;

/// coordinator -> worker: the join handshake, sent once per connection
/// before anything else. A worker refuses a foreign cluster name with a
/// Goodbye; the epoch is bumped per coordinator incarnation so a worker can
/// tell a restarted (promoted) coordinator from a reconnect of the old one.
struct PeerHello {
  std::string cluster_name;
  std::uint64_t coordinator_epoch = 0;
};

/// worker -> coordinator: the handshake answer. `last_applied_seq` is the
/// replication catch-up cursor — the coordinator resends every journal
/// record with a later sequence; a fresh (or restarted) worker reports 0 and
/// receives the full live image.
struct PeerWelcome {
  std::string node_name;
  std::uint64_t last_applied_seq = 0;
  std::uint32_t num_workers = 0;  ///< the node's pool width (capacity hint)
};

/// coordinator -> worker: liveness probe. The coordinator declares a node
/// dead after `heartbeat_misses` intervals without a matching pong (or any
/// other inbound frame) and fails its jobs over.
struct PeerPing {
  std::uint64_t seq = 0;
};

/// worker -> coordinator: probe echo plus the load sample that drives
/// least-loaded sharding and the replication cursor for ack piggybacking.
struct PeerPong {
  std::uint64_t seq = 0;
  std::uint32_t running_jobs = 0;
  std::uint32_t queued_jobs = 0;
  std::uint64_t last_applied_seq = 0;
};

/// One replicated job-journal record. Mirrors the service journal's record
/// vocabulary (service/journal.hpp): a kSubmitted carries everything needed
/// to re-run the job, kResolved strikes it, kDedup links a follower to the
/// primary job whose solve it shares. The worker applies these to a replica
/// journal file in the standard PTSJ format, so a promoted node can boot a
/// coordinator straight off its replica via journal::recover_jobs.
struct ReplicateRecord {
  enum class Kind : std::uint8_t { kSubmitted = 1, kResolved = 2, kDedup = 3 };
  std::uint64_t seq = 0;  ///< monotone replication sequence (1-based)
  Kind kind = Kind::kResolved;
  service::JobId job_id = 0;
  // -- kSubmitted only. --
  std::optional<mkp::Instance> instance;
  service::JobOptions options;
  service::TenantId tenant;
  service::WarmStartPolicy warm_start = service::WarmStartPolicy::kDisabled;
  // -- kDedup only. --
  service::JobId dedup_primary = 0;
};

/// coordinator -> worker: a batch of journal records in ascending sequence
/// order. Fire-and-forget on the send side; the worker answers with a
/// kPeerReplicateAck once the batch is applied (and fsynced) to its replica.
struct PeerReplicate {
  std::vector<ReplicateRecord> records;
};

/// worker -> coordinator: the replica has applied (and fsynced) every
/// record up to and including this sequence.
struct PeerReplicateAck {
  std::uint64_t last_applied_seq = 0;
};

// -- Encoders. Each returns a complete frame, header included. --

[[nodiscard]] std::vector<std::uint8_t> encode_peer_hello(const PeerHello& m);
[[nodiscard]] std::vector<std::uint8_t> encode_peer_welcome(const PeerWelcome& m);
[[nodiscard]] std::vector<std::uint8_t> encode_peer_ping(const PeerPing& m);
[[nodiscard]] std::vector<std::uint8_t> encode_peer_pong(const PeerPong& m);
[[nodiscard]] std::vector<std::uint8_t> encode_peer_replicate(
    const PeerReplicate& m);
[[nodiscard]] std::vector<std::uint8_t> encode_peer_replicate_ack(
    const PeerReplicateAck& m);

// -- Payload decoders (payload only — the header is consumed by the frame
//    reader). All total. --

[[nodiscard]] Expected<PeerHello> decode_peer_hello(
    std::span<const std::uint8_t> payload);
[[nodiscard]] Expected<PeerWelcome> decode_peer_welcome(
    std::span<const std::uint8_t> payload);
[[nodiscard]] Expected<PeerPing> decode_peer_ping(
    std::span<const std::uint8_t> payload);
[[nodiscard]] Expected<PeerPong> decode_peer_pong(
    std::span<const std::uint8_t> payload);
[[nodiscard]] Expected<PeerReplicate> decode_peer_replicate(
    std::span<const std::uint8_t> payload);
[[nodiscard]] Expected<PeerReplicateAck> decode_peer_replicate_ack(
    std::span<const std::uint8_t> payload);

}  // namespace pts::cluster
