#pragma once
// Cluster coordinator (DESIGN.md §11): the node that owns client-facing job
// identity and shards the work across worker nodes. It implements
// net::JobGateway, so the SAME net::Server that fronts a single
// SolverService in pts_serve fronts a whole cluster in pts_cluster — clients
// keep the exact pts_client protocol and cannot tell the difference.
//
// Ownership and identity. Every accepted submission gets a coordinator-side
// JobId and a promise the coordinator ALWAYS resolves — through node death,
// resubmission, cancel, deadline and shutdown. Identical submissions
// (instance content hash + solve-shape options, the PR 8 dedup key) coalesce
// into one ClusterJob with many waiters: ONE remote solve, every waiter's
// future resolved from its result. A request with allow_dedup=false gets a
// private key and never coalesces.
//
// Failover. Peer liveness is heartbeat-based (PeerPing every interval; a
// node that misses `heartbeat_misses` intervals is declared dead — kill -9,
// partition and stall-past-budget all look identical from here). A dead
// node's in-flight ClusterJobs return to the pending queue and are
// redispatched to a surviving node after a jittered exponential backoff,
// at-most-once per failure (`attempts` is bumped per failover, never per
// waiter; a coalesced job resubmits as ONE remote solve no matter how many
// waiters ride it). A job that exhausts `max_resubmits` resolves every
// waiter kUnavailable. The engine is deterministic, so a resubmitted job
// reproduces the trajectory the dead node was computing — failover costs
// wall-clock, never result quality.
//
// Replication. The coordinator journals every waiter to its own PTSJ job
// journal (crash safety for itself) and mirrors the same records — numbered
// by a monotone sequence — to every worker node over the peer sockets
// (kPeerReplicate). Workers apply them to replica journals in the same
// format, so ANY node's replica can boot a replacement coordinator: point a
// new Coordinator's journal_path at the replica and take_recovered() hands
// back the still-open jobs. A rejoining worker reports its applied-through
// cursor in PeerWelcome and receives exactly the records it missed (a
// truncated replica reports 0 and receives the full live image).
//
// Shutdown resolves the remaining waiters kUnavailable WITHOUT striking
// their journal records — the same contract as SolverService::shutdown() —
// so a restarted (or promoted) coordinator recovers them.

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/peer_protocol.hpp"
#include "net/server.hpp"
#include "parallel/transport.hpp"
#include "service/journal.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace pts::cluster {

struct PeerAddress {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct CoordinatorConfig {
  std::string cluster_name = "pts";
  /// The worker-node endpoints. Fixed membership for now: nodes may die and
  /// rejoin, but the roster is set at start.
  std::vector<PeerAddress> peers;
  /// Incarnation number, bumped by whoever promotes a replacement
  /// coordinator; workers use it to tell a successor from a reconnect.
  std::uint64_t epoch = 1;
  double heartbeat_interval_seconds = 0.1;
  /// Dead after this many silent intervals. The product must comfortably
  /// exceed any PTS_CHAOS_NODE_STALL_MS a test runs with — slow is not dead.
  int heartbeat_misses = 5;
  /// Failovers per ClusterJob before its waiters resolve kUnavailable.
  int max_resubmits = 3;
  /// Resubmission backoff: initial * 2^k, jittered to [0.5, 1.0]x, capped.
  double resubmit_backoff_seconds = 0.05;
  double max_backoff_seconds = 2.0;
  double connect_timeout_seconds = 0.5;
  /// Non-empty: the coordinator's own job journal. Point it at a worker's
  /// replica file to promote that replica into a live coordinator.
  std::string journal_path;
};

/// Monotone counters (tests and the failover bench read these).
struct CoordinatorStats {
  std::uint64_t submitted = 0;
  std::uint64_t dedup_hits = 0;       ///< waiters attached to an existing job
  std::uint64_t dispatched = 0;       ///< remote submissions sent (incl. retries)
  std::uint64_t failovers = 0;        ///< jobs pulled off a dead node
  std::uint64_t exhausted = 0;        ///< jobs that ran out of resubmits
  std::uint64_t nodes_lost = 0;
  std::uint64_t nodes_connected = 0;  ///< successful handshakes (incl. rejoins)
  std::uint64_t records_replicated = 0;
  std::uint64_t resolved = 0;         ///< waiter futures resolved, any status
};

class Coordinator final : public net::JobGateway {
 public:
  /// Validates the config, replays journal_path (the promotion path), opens
  /// the journal fresh and starts the tick thread. Peers connect
  /// asynchronously — poll alive_peers() to wait for the mesh.
  [[nodiscard]] static Expected<std::unique_ptr<Coordinator>> start(
      CoordinatorConfig config);
  ~Coordinator();  ///< stop()

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  // -- net::JobGateway. --
  [[nodiscard]] Expected<service::JobHandle> submit(
      service::SubmitRequest request) override;
  bool cancel(service::JobId id) override;

  /// Jobs replayed from journal_path at start, already re-submitted through
  /// the normal path (so they re-coalesce and re-journal). Single-shot.
  struct Recovered {
    service::JobId id = 0;
    std::future<service::JobResult> result;
  };
  [[nodiscard]] std::vector<Recovered> take_recovered();

  [[nodiscard]] std::size_t alive_peers() const;
  [[nodiscard]] CoordinatorStats stats() const;

  /// Resolves every outstanding waiter kUnavailable (journal records left
  /// open — recovery picks them up), closes peer links, joins all threads.
  void stop();

 private:
  struct Waiter;
  struct ClusterJob;
  struct Peer;

  explicit Coordinator(CoordinatorConfig config);

  [[nodiscard]] double now_seconds() const { return clock_.elapsed_seconds(); }
  [[nodiscard]] double jittered_backoff_locked(double base, int attempts);

  /// The coalescing key: content hash + solve-shape options + tenant (or a
  /// private nonce when dedup is off).
  [[nodiscard]] std::string make_key_locked(const service::SubmitRequest& request,
                                            std::uint64_t content_hash);

  Expected<service::JobHandle> submit_locked(service::SubmitRequest request);
  void log_append_locked(ReplicateRecord record);
  void compact_log_locked();
  void resolve_waiter_locked(Waiter& waiter, service::JobResult result,
                             bool strike_journal);
  /// Resolves every waiter of `job` with `status` (no solution) and erases
  /// the job. `strike_journal` false only on the shutdown path.
  void fail_job_locked(const std::string& key, const Status& status,
                       bool strike_journal);

  void tick_loop();
  void connect_peers();  ///< dials outside the lock; installs under it
  void heartbeat_locked();
  void replicate_locked();
  void dispatch_locked();
  void sweep_deadlines_locked();
  void reader_loop(Peer& peer);
  void on_peer_down_locked(Peer& peer);
  void handle_result_locked(Peer& peer, std::uint64_t request_id,
                            std::vector<std::uint8_t> payload);
  /// Sends one frame on the peer socket (write mutex). Failure is left for
  /// the reader/heartbeat to notice — sends are fire-and-forget here.
  void send_to_peer_locked(Peer& peer, const std::vector<std::uint8_t>& frame);

  CoordinatorConfig config_;
  Stopwatch clock_;  ///< coordinator-relative monotonic time
  CancelSource stop_source_;
  std::atomic<bool> stopping_{false};

  mutable std::mutex mutex_;
  Rng rng_{0x636f6f7264ull};  // backoff jitter; guarded by mutex_

  service::JobId next_id_ = 1;
  std::uint64_t next_seq_ = 1;  ///< replication sequence
  std::map<std::string, std::unique_ptr<ClusterJob>> jobs_;  // by dedup key
  std::map<service::JobId, std::string> waiter_index_;       // waiter -> key
  std::uint64_t dedup_nonce_ = 1;  ///< private keys for allow_dedup=false

  std::deque<ReplicateRecord> log_;  ///< replication log (compacted in place)
  std::unique_ptr<service::journal::JobJournal> journal_;
  std::vector<Recovered> recovered_;

  std::vector<std::unique_ptr<Peer>> peers_;

  CoordinatorStats stats_;

  std::thread tick_;  // started last, joined by stop()
};

}  // namespace pts::cluster
