#include "cluster/worker_node.hpp"

#include <csignal>

#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "cluster/peer_protocol.hpp"
#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace pts::cluster {

namespace {

std::uint32_t env_u32(const char* name, std::uint32_t fallback = 0) {
  const char* value = std::getenv(name);
  if (!value || !*value) return fallback;
  return static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
}

}  // namespace

WorkerNode::WorkerNode(WorkerNodeConfig config)
    : config_(std::move(config)),
      chaos_kill_ppm_(env_u32("PTS_CHAOS_NODE_KILL_PPM")),
      chaos_stall_ms_(env_u32("PTS_CHAOS_NODE_STALL_MS")),
      chaos_partition_ppm_(env_u32("PTS_CHAOS_NODE_PARTITION_PPM")),
      chaos_partition_ms_(env_u32("PTS_CHAOS_NODE_PARTITION_MS", 500)) {
  if (chaos_kill_ppm_ || chaos_stall_ms_ || chaos_partition_ppm_) {
    PTS_LOG_WARN(
        "cluster: node chaos enabled (kill_ppm=%u stall_ms=%u "
        "partition_ppm=%u partition_ms=%u)",
        chaos_kill_ppm_, chaos_stall_ms_, chaos_partition_ppm_,
        chaos_partition_ms_);
  }
}

Expected<std::unique_ptr<WorkerNode>> WorkerNode::start(
    WorkerNodeConfig config) {
  std::unique_ptr<WorkerNode> node(new WorkerNode(std::move(config)));
  node->service_ =
      std::make_unique<service::SolverService>(node->config_.service);
  if (!node->config_.replica_journal_path.empty()) {
    // Truncate-on-start resets the cursor to 0: the coordinator resends its
    // full live image, which the replica (a standard PTSJ file) absorbs as
    // a from-scratch compacted log.
    auto replica = service::journal::JobJournal::open_truncate(
        node->config_.replica_journal_path);
    if (!replica) {
      PTS_LOG_WARN("cluster: replica journal disabled: %s",
                   replica.status().message().c_str());
    } else {
      node->replica_ = std::move(*replica);
    }
  }
  net::ServerConfig server_config = node->config_.server;
  server_config.peer_handler = node.get();
  auto server = net::Server::start(*node->service_, std::move(server_config));
  if (!server) return server.status();
  node->server_ = std::move(*server);
  return node;
}

WorkerNode::~WorkerNode() { stop(); }

void WorkerNode::stop() {
  // Server first (its reader threads call back into this object), then the
  // service (resolves every outstanding future).
  if (server_) server_->stop();
  if (service_) service_->shutdown();
}

bool WorkerNode::chaos_gate() {
  if (chaos_kill_ppm_ == 0 && chaos_stall_ms_ == 0 &&
      chaos_partition_ppm_ == 0) {
    return false;
  }
  bool partitioned = false;
  {
    std::scoped_lock lock(chaos_mutex_);
    if (chaos_kill_ppm_ != 0 &&
        chaos_rng_.next_below(1'000'000) < chaos_kill_ppm_) {
      // The kill -9 drill: no destructors, no journal strikes, no goodbye —
      // exactly what the coordinator's failover path must absorb.
      PTS_LOG_WARN("cluster: chaos killing node (SIGKILL)");
      std::raise(SIGKILL);
    }
    if (chaos_partition_ppm_ != 0 && !partition_until_.is_bounded() &&
        chaos_rng_.next_below(1'000'000) < chaos_partition_ppm_) {
      partition_until_ =
          Deadline::after_seconds(chaos_partition_ms_ / 1000.0);
      PTS_LOG_WARN("cluster: chaos opening a %ums partition window",
                   chaos_partition_ms_);
    }
    if (partition_until_.is_bounded()) {
      if (partition_until_.expired()) {
        partition_until_ = Deadline();  // window closed
      } else {
        partitioned = true;
      }
    }
  }
  if (chaos_stall_ms_ != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(chaos_stall_ms_));
  }
  return partitioned;
}

Expected<std::vector<std::vector<std::uint8_t>>> WorkerNode::on_peer_frame(
    parallel::wire::MessageType type, std::span<const std::uint8_t> payload) {
  using parallel::wire::MessageType;
  if (chaos_gate()) return std::vector<std::vector<std::uint8_t>>{};

  std::vector<std::vector<std::uint8_t>> replies;
  switch (type) {
    case MessageType::kPeerHello: {
      auto hello = decode_peer_hello(payload);
      if (!hello) return hello.status();
      if (hello->cluster_name != config_.cluster_name) {
        return Status::invalid_argument(
            "cluster: hello from foreign cluster '" + hello->cluster_name +
            "' (this node serves '" + config_.cluster_name + "')");
      }
      {
        std::scoped_lock lock(replica_mutex_);
        if (hello->coordinator_epoch < served_epoch_) {
          return Status::invalid_argument(
              "cluster: hello from stale coordinator epoch " +
              std::to_string(hello->coordinator_epoch) +
              " (this node already serves epoch " +
              std::to_string(served_epoch_) + ")");
        }
        if (hello->coordinator_epoch > served_epoch_) {
          // A new coordinator incarnation numbers its replication log from 1,
          // so the cursor earned under the old one is meaningless — reporting
          // it would make the successor skip that many records and stall
          // replication for good. Start over; the successor resends its full
          // live image.
          served_epoch_ = hello->coordinator_epoch;
          if (!config_.replica_journal_path.empty()) {
            auto replica = service::journal::JobJournal::open_truncate(
                config_.replica_journal_path);
            if (!replica) {
              PTS_LOG_WARN("cluster: replica journal disabled: %s",
                           replica.status().message().c_str());
              replica_.reset();
            } else {
              replica_ = std::move(*replica);
            }
          }
          last_applied_seq_.store(0, std::memory_order_release);
        }
      }
      PeerWelcome welcome;
      welcome.node_name = config_.node_name;
      welcome.last_applied_seq = last_applied_seq();
      welcome.num_workers =
          static_cast<std::uint32_t>(config_.service.num_workers);
      replies.push_back(encode_peer_welcome(welcome));
      break;
    }
    case MessageType::kPeerPing: {
      auto ping = decode_peer_ping(payload);
      if (!ping) return ping.status();
      PeerPong pong;
      pong.seq = ping->seq;
      pong.running_jobs = static_cast<std::uint32_t>(service_->running_jobs());
      pong.queued_jobs = static_cast<std::uint32_t>(service_->queued_jobs());
      pong.last_applied_seq = last_applied_seq();
      replies.push_back(encode_peer_pong(pong));
      break;
    }
    case MessageType::kPeerReplicate: {
      auto batch = decode_peer_replicate(payload);
      if (!batch) return batch.status();
      {
        std::scoped_lock lock(replica_mutex_);
        for (const auto& record : batch->records) {
          if (record.seq <= last_applied_seq_.load(std::memory_order_relaxed)) {
            continue;  // replay of something already applied — idempotent skip
          }
          // The cursor advances ONLY past durably appended records: with no
          // replica (or a failing one) it stays put, and the ack below
          // truthfully reports how far this node's replica actually reaches
          // instead of claiming durability that does not exist.
          if (!replica_) break;
          Status appended;
          switch (record.kind) {
            case ReplicateRecord::Kind::kSubmitted:
              appended = replica_->append_submitted(
                  record.job_id, *record.instance, record.options,
                  record.tenant, record.warm_start);
              break;
            case ReplicateRecord::Kind::kResolved:
              appended = replica_->append_resolved(record.job_id);
              break;
            case ReplicateRecord::Kind::kDedup:
              appended = replica_->append_dedup(record.job_id,
                                                record.dedup_primary);
              break;
          }
          if (!appended.ok()) {
            PTS_LOG_WARN(
                "cluster: replica append failed (cursor frozen at %llu): %s",
                static_cast<unsigned long long>(
                    last_applied_seq_.load(std::memory_order_relaxed)),
                appended.message().c_str());
            break;
          }
          last_applied_seq_.store(record.seq, std::memory_order_release);
          obs::metrics().counter("cluster_records_applied_total").add();
        }
      }
      PeerReplicateAck ack;
      ack.last_applied_seq = last_applied_seq();
      replies.push_back(encode_peer_replicate_ack(ack));
      break;
    }
    default:
      // kPeerWelcome / kPeerPong / kPeerReplicateAck flow coordinator-ward;
      // receiving one here is a confused (or malicious) peer.
      return Status::invalid_argument(
          "cluster: unexpected peer frame type at a worker node");
  }
  return replies;
}

}  // namespace pts::cluster
