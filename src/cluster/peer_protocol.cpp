#include "cluster/peer_protocol.hpp"

#include "parallel/codec.hpp"
#include "parallel/wire.hpp"
#include "service/journal.hpp"
#include "util/check.hpp"

namespace pts::cluster {

namespace {

using parallel::codec::Reader;
using parallel::codec::Writer;
using parallel::wire::MessageType;

Status truncated(const char* what) {
  return Status::invalid_argument(std::string("cluster: truncated or corrupt ") +
                                  what + " payload");
}

std::vector<std::uint8_t> finish_frame(MessageType type, Writer payload_writer) {
  auto payload = payload_writer.take();
  PTS_CHECK_MSG(payload.size() <= parallel::wire::kMaxPayloadBytes,
                "outgoing peer frame exceeds kMaxPayloadBytes");
  Writer frame;
  frame.u16(parallel::wire::kMagic);
  frame.u8(parallel::wire::kVersion);
  frame.u8(static_cast<std::uint8_t>(type));
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  auto out = frame.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void put_record(Writer& w, const ReplicateRecord& record) {
  w.u64(record.seq);
  w.u8(static_cast<std::uint8_t>(record.kind));
  w.u64(record.job_id);
  switch (record.kind) {
    case ReplicateRecord::Kind::kSubmitted:
      PTS_CHECK_MSG(record.instance.has_value(),
                    "a kSubmitted replicate record needs its instance");
      parallel::wire::put_instance(w, *record.instance);
      service::journal::put_job_options(w, record.options);
      w.str(record.tenant);
      w.u8(static_cast<std::uint8_t>(record.warm_start));
      break;
    case ReplicateRecord::Kind::kDedup:
      w.u64(record.dedup_primary);
      break;
    case ReplicateRecord::Kind::kResolved:
      break;
  }
}

[[nodiscard]] Expected<ReplicateRecord> get_record(Reader& r) {
  ReplicateRecord record;
  record.seq = r.u64();
  const auto kind = r.u8();
  record.job_id = r.u64();
  if (!r.ok() || kind < static_cast<std::uint8_t>(ReplicateRecord::Kind::kSubmitted) ||
      kind > static_cast<std::uint8_t>(ReplicateRecord::Kind::kDedup)) {
    return truncated("replicate record");
  }
  record.kind = static_cast<ReplicateRecord::Kind>(kind);
  switch (record.kind) {
    case ReplicateRecord::Kind::kSubmitted: {
      auto instance = parallel::wire::get_instance(r);
      if (!instance) return instance.status();
      record.instance = std::move(*instance);
      auto options = service::journal::get_job_options(r);
      if (!options) return options.status();
      record.options = std::move(*options);
      record.tenant = r.str(/*max_len=*/256);
      const auto warm = r.u8();
      if (!r.ok() ||
          warm > static_cast<std::uint8_t>(service::WarmStartPolicy::kSimilar)) {
        return truncated("replicate record");
      }
      record.warm_start = static_cast<service::WarmStartPolicy>(warm);
      break;
    }
    case ReplicateRecord::Kind::kDedup:
      record.dedup_primary = r.u64();
      if (!r.ok()) return truncated("replicate record");
      break;
    case ReplicateRecord::Kind::kResolved:
      break;
  }
  return record;
}

}  // namespace

std::vector<std::uint8_t> encode_peer_hello(const PeerHello& m) {
  Writer w;
  w.str(m.cluster_name);
  w.u64(m.coordinator_epoch);
  return finish_frame(MessageType::kPeerHello, std::move(w));
}

Expected<PeerHello> decode_peer_hello(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  PeerHello m;
  m.cluster_name = r.str(/*max_len=*/256);
  m.coordinator_epoch = r.u64();
  if (!r.done()) return truncated("peer-hello");
  return m;
}

std::vector<std::uint8_t> encode_peer_welcome(const PeerWelcome& m) {
  Writer w;
  w.str(m.node_name);
  w.u64(m.last_applied_seq);
  w.u32(m.num_workers);
  return finish_frame(MessageType::kPeerWelcome, std::move(w));
}

Expected<PeerWelcome> decode_peer_welcome(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  PeerWelcome m;
  m.node_name = r.str(/*max_len=*/256);
  m.last_applied_seq = r.u64();
  m.num_workers = r.u32();
  if (!r.done()) return truncated("peer-welcome");
  return m;
}

std::vector<std::uint8_t> encode_peer_ping(const PeerPing& m) {
  Writer w;
  w.u64(m.seq);
  return finish_frame(MessageType::kPeerPing, std::move(w));
}

Expected<PeerPing> decode_peer_ping(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  PeerPing m;
  m.seq = r.u64();
  if (!r.done()) return truncated("peer-ping");
  return m;
}

std::vector<std::uint8_t> encode_peer_pong(const PeerPong& m) {
  Writer w;
  w.u64(m.seq);
  w.u32(m.running_jobs);
  w.u32(m.queued_jobs);
  w.u64(m.last_applied_seq);
  return finish_frame(MessageType::kPeerPong, std::move(w));
}

Expected<PeerPong> decode_peer_pong(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  PeerPong m;
  m.seq = r.u64();
  m.running_jobs = r.u32();
  m.queued_jobs = r.u32();
  m.last_applied_seq = r.u64();
  if (!r.done()) return truncated("peer-pong");
  return m;
}

std::vector<std::uint8_t> encode_peer_replicate(const PeerReplicate& m) {
  PTS_CHECK_MSG(m.records.size() <= kMaxReplicateRecordsPerFrame,
                "replicate batch exceeds the per-frame record ceiling");
  Writer w;
  w.u32(static_cast<std::uint32_t>(m.records.size()));
  for (const auto& record : m.records) put_record(w, record);
  return finish_frame(MessageType::kPeerReplicate, std::move(w));
}

Expected<PeerReplicate> decode_peer_replicate(
    std::span<const std::uint8_t> payload) {
  Reader r(payload);
  const auto count = r.u32();
  // 17 bytes is the smallest record (seq + kind + job id); the explicit cap
  // keeps one frame's decode allocation bounded independent of the payload
  // ceiling.
  if (!r.ok() || count > kMaxReplicateRecordsPerFrame ||
      !r.plausible_count(count, 17)) {
    return truncated("peer-replicate");
  }
  PeerReplicate m;
  m.records.reserve(count);
  for (std::uint32_t k = 0; k < count; ++k) {
    auto record = get_record(r);
    if (!record) return record.status();
    m.records.push_back(std::move(*record));
  }
  if (!r.done()) return truncated("peer-replicate");
  return m;
}

std::vector<std::uint8_t> encode_peer_replicate_ack(const PeerReplicateAck& m) {
  Writer w;
  w.u64(m.last_applied_seq);
  return finish_frame(MessageType::kPeerReplicateAck, std::move(w));
}

Expected<PeerReplicateAck> decode_peer_replicate_ack(
    std::span<const std::uint8_t> payload) {
  Reader r(payload);
  PeerReplicateAck m;
  m.last_applied_seq = r.u64();
  if (!r.done()) return truncated("peer-replicate-ack");
  return m;
}

}  // namespace pts::cluster
