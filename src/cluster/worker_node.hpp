#pragma once
// One worker node of the solver cluster (DESIGN.md §11): a SolverService
// with its own pool, fronted by a net::Server that speaks BOTH protocol
// ranges on the same port — the client range for job traffic (the
// coordinator forwards submissions with the exact frames pts_client uses)
// and the peer range for membership, liveness and journal replication
// (answered here via net::PeerHandler).
//
// Replica journal. Every kPeerReplicate batch is applied to a local replica
// of the coordinator's job journal, written in the STANDARD PTSJ format
// (service/journal.hpp): a promoted node can boot a coordinator straight
// off its replica with journal::recover_jobs — no translation step. The
// applied-through cursor (`last_applied_seq`) rides back on every ack and
// pong, and is what a rejoining node reports in its PeerWelcome so the
// coordinator resends only what it missed. The replica is truncated on
// restart (cursor back to 0), which makes the coordinator resend its full
// live image — correct by idempotence, simple by construction.
//
// The cursor is only valid WITHIN one coordinator incarnation: a promoted
// coordinator numbers its replication log from 1 again, so a hello carrying
// a higher `coordinator_epoch` than the last one served truncates the
// replica and resets the cursor to 0 (the successor sends its full live
// image); a hello from a LOWER epoch — a stale coordinator that lost its
// crown — is refused outright. And the cursor only advances for records
// DURABLY appended: a node without a replica journal (no path configured,
// or the open failed) acks cursor 0 forever, so the coordinator's
// `acked_seq` for it truthfully reads "this node holds no replica".
//
// Node-level chaos. Four env knobs extend the PTS_CHAOS_* family to whole-
// node failure, evaluated per inbound peer frame (tests/cluster/ and
// bench/soak_cluster drive them):
//
//   PTS_CHAOS_NODE_KILL_PPM       raise(SIGKILL) — the kill -9 failover drill
//   PTS_CHAOS_NODE_STALL_MS       sleep this long before answering (a slow,
//                                 not dead, node — must NOT be failed over
//                                 while inside the heartbeat budget)
//   PTS_CHAOS_NODE_PARTITION_PPM  open a partition window: peer frames are
//                                 swallowed unanswered until it closes
//   PTS_CHAOS_NODE_PARTITION_MS   the window's width (default 500)

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "net/server.hpp"
#include "service/solver_service.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace pts::cluster {

struct WorkerNodeConfig {
  std::string node_name = "worker";
  /// Peer hellos naming a different cluster are refused (protocol error):
  /// two clusters sharing a host must not cross-replicate.
  std::string cluster_name = "pts";
  /// Non-empty: maintain the replica journal here (truncated on start).
  std::string replica_journal_path;
  /// The node's own solver service (pool width, its own journal, tenants...).
  service::ServiceConfig service;
  /// The node's front door. `peer_handler` is overwritten (the node installs
  /// itself); everything else — bind address, port, worker_path, idle
  /// timeout — passes through.
  net::ServerConfig server;
};

class WorkerNode final : public net::PeerHandler {
 public:
  [[nodiscard]] static Expected<std::unique_ptr<WorkerNode>> start(
      WorkerNodeConfig config);
  ~WorkerNode();  ///< stop()

  WorkerNode(const WorkerNode&) = delete;
  WorkerNode& operator=(const WorkerNode&) = delete;

  [[nodiscard]] std::uint16_t port() const { return server_->port(); }
  [[nodiscard]] std::uint64_t last_applied_seq() const {
    return last_applied_seq_.load(std::memory_order_acquire);
  }
  [[nodiscard]] service::SolverService& service() { return *service_; }
  [[nodiscard]] net::Server& server() { return *server_; }

  /// Graceful wind-down: drain the front door, then stop everything.
  bool drain(double timeout_seconds) { return server_->drain(timeout_seconds); }
  void stop();

  // -- net::PeerHandler (called from the server's reader threads). --
  [[nodiscard]] Expected<std::vector<std::vector<std::uint8_t>>> on_peer_frame(
      parallel::wire::MessageType type,
      std::span<const std::uint8_t> payload) override;

 private:
  explicit WorkerNode(WorkerNodeConfig config);

  /// Applies the node-chaos knobs; true = swallow the frame unanswered
  /// (partition window). May not return at all (kill knob).
  bool chaos_gate();

  WorkerNodeConfig config_;
  std::unique_ptr<service::SolverService> service_;
  std::unique_ptr<net::Server> server_;

  std::mutex replica_mutex_;
  /// Null when replica_journal_path is empty (or the open failed).
  std::unique_ptr<service::journal::JobJournal> replica_;
  std::atomic<std::uint64_t> last_applied_seq_{0};
  /// Highest coordinator_epoch ever served; guarded by replica_mutex_.
  std::uint64_t served_epoch_ = 0;

  // -- Chaos state (knobs latched at start). --
  std::uint32_t chaos_kill_ppm_ = 0;
  std::uint32_t chaos_stall_ms_ = 0;
  std::uint32_t chaos_partition_ppm_ = 0;
  std::uint32_t chaos_partition_ms_ = 500;
  std::mutex chaos_mutex_;
  Rng chaos_rng_{0x636c7573746572ull};  // guarded by chaos_mutex_
  Deadline partition_until_;            // guarded by chaos_mutex_
};

}  // namespace pts::cluster
