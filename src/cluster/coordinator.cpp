#include "cluster/coordinator.hpp"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "net/client.hpp"
#include "net/protocol.hpp"
#include "obs/metrics.hpp"
#include "parallel/codec.hpp"
#include "parallel/snapshot.hpp"
#include "util/logging.hpp"

namespace pts::cluster {

namespace {

/// One batch ceiling per tick per peer keeps tick latency bounded even
/// mid-catch-up; the next tick sends the next batch 20ms later.
constexpr int kMaxReplicateBatchesPerTick = 4;
constexpr auto kTickPeriod = std::chrono::milliseconds(20);

}  // namespace

/// One client-side stake in a ClusterJob: its own coordinator JobId, its own
/// deadline, its own promise. Waiters outlive failovers — the job record
/// they hang off survives resubmission untouched.
struct Coordinator::Waiter {
  service::JobId id = 0;
  service::TenantId tenant;
  Deadline deadline;  ///< unbounded when the request had none
  bool attached_dedup = false;  ///< joined an existing job (not the first waiter)
  std::promise<service::JobResult> promise;
};

/// One coalesced unit of remote work: at most ONE in-flight remote
/// submission at any time, no matter how many waiters or how many failovers.
struct Coordinator::ClusterJob {
  std::string key;
  service::JobId primary_id = 0;
  service::SubmitRequest canonical;  ///< deadline cleared (coordinator enforces)
  std::uint64_t content_hash = 0;
  std::vector<std::unique_ptr<Waiter>> waiters;

  bool inflight = false;
  std::size_t peer_index = 0;
  std::uint64_t request_id = 0;  ///< on that peer's connection
  bool acked = false;
  std::uint64_t remote_hash = 0;  ///< idempotency anchor from the first ack
  int attempts = 0;               ///< failover count, NOT waiter count
  double not_before = 0.0;        ///< redispatch backoff gate (now_seconds)
  bool cancel_sent = false;       ///< all waiters left; remote told to stop
  std::vector<obs::AnytimeSample> anytime;  ///< streamed chunks so far
};

struct Coordinator::Peer {
  enum class State { kDown, kConnecting, kAlive };

  std::size_t index = 0;
  PeerAddress addr;
  std::string name;

  State state = State::kDown;  // guarded by mutex_
  parallel::FrameSocket socket;
  std::mutex write_mutex;
  std::thread reader;
  std::atomic<bool> reader_exited{false};
  std::atomic<double> last_heard{0.0};

  std::uint64_t ping_seq = 0;
  double last_ping = 0.0;
  std::uint32_t running_jobs = 0;
  std::uint32_t queued_jobs = 0;
  std::uint32_t num_workers = 1;
  std::uint64_t sent_seq = 0;   ///< replication records streamed so far
  std::uint64_t acked_seq = 0;  ///< replica's applied-through cursor
  std::uint64_t next_request_id = 1;
  std::map<std::uint64_t, std::string> inflight;  ///< request id -> job key

  double reconnect_not_before = 0.0;
  int reconnect_attempts = 0;
  bool down_handled = true;  ///< on_peer_down ran for the current incarnation
};

Coordinator::Coordinator(CoordinatorConfig config)
    : config_(std::move(config)) {}

Expected<std::unique_ptr<Coordinator>> Coordinator::start(
    CoordinatorConfig config) {
  if (config.peers.empty()) {
    return Status::invalid_argument("cluster: a coordinator needs peers");
  }
  if (config.heartbeat_interval_seconds <= 0 || config.heartbeat_misses <= 0) {
    return Status::invalid_argument("cluster: bad heartbeat configuration");
  }

  // Replay BEFORE open_truncate: recovery reads the previous incarnation's
  // (or a promoted replica's) log, then the resubmit below re-journals the
  // survivors into the fresh file — compaction on every restart.
  std::vector<service::journal::RecoveredJob> replayed;
  if (!config.journal_path.empty()) {
    auto recovered = service::journal::recover_jobs(config.journal_path);
    if (!recovered) {
      PTS_LOG_WARN("cluster: journal replay failed (starting fresh): %s",
                   recovered.status().message().c_str());
    } else {
      replayed = std::move(*recovered);
    }
  }

  std::unique_ptr<Coordinator> c(new Coordinator(std::move(config)));
  if (!c->config_.journal_path.empty()) {
    auto journal =
        service::journal::JobJournal::open_truncate(c->config_.journal_path);
    if (!journal) {
      PTS_LOG_WARN("cluster: journaling disabled: %s",
                   journal.status().message().c_str());
    } else {
      c->journal_ = std::move(*journal);
    }
  }
  for (std::size_t i = 0; i < c->config_.peers.size(); ++i) {
    auto peer = std::make_unique<Peer>();
    peer->index = i;
    peer->addr = c->config_.peers[i];
    c->peers_.push_back(std::move(peer));
  }

  {
    std::scoped_lock lock(c->mutex_);
    for (auto& job : replayed) {
      service::SubmitRequest request;
      request.instance = std::make_shared<mkp::Instance>(std::move(job.instance));
      request.tenant = job.tenant;
      request.priority = job.options.priority;
      request.warm_start = job.warm_start;
      request.options = std::move(job.options);
      auto handle = c->submit_locked(std::move(request));
      if (handle) {
        c->recovered_.push_back({handle->id, std::move(handle->result)});
      }
    }
    if (!c->recovered_.empty()) {
      PTS_LOG_INFO("cluster: recovered %zu unresolved job(s) from %s",
                   c->recovered_.size(), c->config_.journal_path.c_str());
    }
  }

  c->tick_ = std::thread([raw = c.get()] { raw->tick_loop(); });
  return c;
}

Coordinator::~Coordinator() { stop(); }

void Coordinator::stop() {
  if (stopping_.exchange(true)) return;
  stop_source_.request_cancel();
  if (tick_.joinable()) tick_.join();
  {
    std::scoped_lock lock(mutex_);
    for (auto& peer : peers_) {
      if (peer->socket.valid()) ::shutdown(peer->socket.fd(), SHUT_RDWR);
    }
  }
  for (auto& peer : peers_) {
    if (peer->reader.joinable()) peer->reader.join();
  }
  // Resolve whatever is left kUnavailable WITHOUT striking the journal: a
  // restarted (or promoted) coordinator replays exactly these jobs.
  std::scoped_lock lock(mutex_);
  while (!jobs_.empty()) {
    fail_job_locked(jobs_.begin()->first,
                    Status::unavailable("cluster: coordinator shutting down"),
                    /*strike_journal=*/false);
  }
}

std::size_t Coordinator::alive_peers() const {
  std::scoped_lock lock(mutex_);
  std::size_t alive = 0;
  for (const auto& peer : peers_) {
    if (peer->state == Peer::State::kAlive) ++alive;
  }
  return alive;
}

CoordinatorStats Coordinator::stats() const {
  std::scoped_lock lock(mutex_);
  return stats_;
}

std::vector<Coordinator::Recovered> Coordinator::take_recovered() {
  std::scoped_lock lock(mutex_);
  return std::exchange(recovered_, {});
}

double Coordinator::jittered_backoff_locked(double base, int attempts) {
  double factor = base;
  for (int k = 1; k < attempts; ++k) factor *= 2.0;
  factor = std::min(factor, config_.max_backoff_seconds);
  return factor * (0.5 + static_cast<double>(rng_.next_below(1000)) / 2000.0);
}

std::string Coordinator::make_key_locked(const service::SubmitRequest& request,
                                         std::uint64_t content_hash) {
  // Mirrors the service's dedup key: instance content + solve-shaped options
  // (per-waiter urgency — priority, deadline — and machine-local paths must
  // not fragment coalescing), plus the tenant. allow_dedup=false requests
  // get a private nonce: they never coalesce with anything.
  parallel::codec::Writer w;
  w.u64(content_hash);
  service::JobOptions shape = request.options;
  shape.priority = 0;
  shape.deadline_seconds.reset();
  shape.proc.worker_path.clear();
  service::journal::put_job_options(w, shape);
  w.str(request.tenant);
  w.u8(static_cast<std::uint8_t>(request.warm_start));
  if (!request.allow_dedup) w.u64(dedup_nonce_++);
  auto bytes = w.take();
  return std::string(bytes.begin(), bytes.end());
}

void Coordinator::log_append_locked(ReplicateRecord record) {
  record.seq = next_seq_++;
  log_.push_back(std::move(record));
  if (log_.size() > 512) compact_log_locked();
}

void Coordinator::compact_log_locked() {
  // Drop every record belonging to a resolved job id (both sides of the
  // pair), keeping surviving records' sequence numbers untouched: a replica
  // cursor simply skips the gaps, and what the gaps held was a no-op for it.
  std::map<service::JobId, bool> resolved;
  for (const auto& record : log_) {
    if (record.kind == ReplicateRecord::Kind::kResolved) {
      resolved[record.job_id] = true;
    }
  }
  if (resolved.empty()) return;
  std::deque<ReplicateRecord> live;
  for (auto& record : log_) {
    if (!resolved.contains(record.job_id)) live.push_back(std::move(record));
  }
  log_ = std::move(live);
}

Expected<service::JobHandle> Coordinator::submit(
    service::SubmitRequest request) {
  std::scoped_lock lock(mutex_);
  return submit_locked(std::move(request));
}

Expected<service::JobHandle> Coordinator::submit_locked(
    service::SubmitRequest request) {
  if (stopping_.load(std::memory_order_acquire)) {
    return Status::unavailable("cluster: coordinator is shutting down");
  }
  if (!request.instance) {
    return Status::invalid_argument("cluster: submit requires an instance");
  }
  const std::uint64_t content_hash =
      parallel::snapshot::instance_hash64(*request.instance);
  std::string key = make_key_locked(request, content_hash);

  auto waiter = std::make_unique<Waiter>();
  waiter->id = next_id_++;
  waiter->tenant = request.tenant;
  if (request.deadline_seconds) {
    waiter->deadline = Deadline::after_seconds(*request.deadline_seconds);
  }

  service::JobHandle handle;
  handle.id = waiter->id;
  handle.tenant = waiter->tenant;
  handle.content_hash = content_hash;
  handle.result = waiter->promise.get_future();
  ++stats_.submitted;
  obs::metrics().counter("cluster_submissions_total").add();

  // Journal the waiter (priority folded into the options so recovery keeps
  // it), mirror the record to the replication log.
  service::JobOptions journal_options = request.options;
  journal_options.priority = request.priority;

  auto it = jobs_.find(key);
  if (it != jobs_.end()) {
    // Coalesce: one more waiter on the in-flight (or pending) solve.
    ClusterJob& job = *it->second;
    waiter->attached_dedup = true;
    handle.deduplicated = true;
    ++stats_.dedup_hits;
    if (journal_) {
      // A follower needs its own kSubmitted so a promoted coordinator can
      // re-run it standalone, plus the kDedup provenance link. kSubmitted
      // goes FIRST: replay only honors a kDedup link whose follower is
      // already open (the replication log uses the same order).
      (void)journal_->append_submitted(waiter->id, *request.instance,
                                       journal_options, request.tenant,
                                       request.warm_start);
      (void)journal_->append_dedup(waiter->id, job.primary_id);
    }
    ReplicateRecord submitted;
    submitted.kind = ReplicateRecord::Kind::kSubmitted;
    submitted.job_id = waiter->id;
    submitted.instance = *request.instance;
    submitted.options = journal_options;
    submitted.tenant = request.tenant;
    submitted.warm_start = request.warm_start;
    log_append_locked(std::move(submitted));
    ReplicateRecord dedup;
    dedup.kind = ReplicateRecord::Kind::kDedup;
    dedup.job_id = waiter->id;
    dedup.dedup_primary = job.primary_id;
    log_append_locked(std::move(dedup));

    waiter_index_.emplace(waiter->id, key);
    job.waiters.push_back(std::move(waiter));
    return handle;
  }

  auto job = std::make_unique<ClusterJob>();
  job->key = key;
  job->primary_id = waiter->id;
  job->content_hash = content_hash;
  job->canonical = std::move(request);
  // The coordinator enforces per-waiter deadlines itself; the remote solve
  // runs its time budget for everyone.
  job->canonical.deadline_seconds.reset();
  if (journal_) {
    (void)journal_->append_submitted(waiter->id, *job->canonical.instance,
                                     journal_options, job->canonical.tenant,
                                     job->canonical.warm_start);
  }
  ReplicateRecord submitted;
  submitted.kind = ReplicateRecord::Kind::kSubmitted;
  submitted.job_id = waiter->id;
  submitted.instance = *job->canonical.instance;
  submitted.options = journal_options;
  submitted.tenant = job->canonical.tenant;
  submitted.warm_start = job->canonical.warm_start;
  log_append_locked(std::move(submitted));

  waiter_index_.emplace(waiter->id, key);
  job->waiters.push_back(std::move(waiter));
  jobs_.emplace(std::move(key), std::move(job));
  return handle;
}

bool Coordinator::cancel(service::JobId id) {
  std::scoped_lock lock(mutex_);
  auto index = waiter_index_.find(id);
  if (index == waiter_index_.end()) return false;
  auto job_it = jobs_.find(index->second);
  if (job_it == jobs_.end()) return false;
  ClusterJob& job = *job_it->second;

  auto waiter_it =
      std::find_if(job.waiters.begin(), job.waiters.end(),
                   [id](const auto& w) { return w->id == id; });
  if (waiter_it == job.waiters.end()) return false;

  service::JobResult result;
  result.status = Status::cancelled("cluster: cancelled by the caller");
  result.instance = job.canonical.instance;
  result.content_hash = job.content_hash;
  resolve_waiter_locked(**waiter_it, std::move(result), /*strike_journal=*/true);
  job.waiters.erase(waiter_it);

  if (job.waiters.empty()) {
    // Last stake gone: stop the remote solve (best-effort) or drop the
    // pending record outright.
    if (job.inflight) {
      if (!job.cancel_sent && job.acked) {
        send_to_peer_locked(*peers_[job.peer_index],
                            net::encode_cancel_job({job.request_id}));
        job.cancel_sent = true;
      }
      // The job record stays until the remote result (kCancelled) arrives —
      // it anchors the request id.
    } else {
      jobs_.erase(job_it);
    }
  }
  return true;
}

void Coordinator::resolve_waiter_locked(Waiter& waiter,
                                        service::JobResult result,
                                        bool strike_journal) {
  result.id = waiter.id;
  result.tenant = waiter.tenant;
  if (waiter.attached_dedup) result.deduplicated = true;
  waiter.promise.set_value(std::move(result));
  ++stats_.resolved;
  waiter_index_.erase(waiter.id);
  if (strike_journal) {
    if (journal_) (void)journal_->append_resolved(waiter.id);
    ReplicateRecord record;
    record.kind = ReplicateRecord::Kind::kResolved;
    record.job_id = waiter.id;
    log_append_locked(std::move(record));
  }
}

void Coordinator::fail_job_locked(const std::string& key, const Status& status,
                                  bool strike_journal) {
  auto it = jobs_.find(key);
  if (it == jobs_.end()) return;
  ClusterJob& job = *it->second;
  for (auto& waiter : job.waiters) {
    service::JobResult result;
    result.status = status;
    result.instance = job.canonical.instance;
    result.content_hash = job.content_hash;
    resolve_waiter_locked(*waiter, std::move(result), strike_journal);
  }
  jobs_.erase(it);
}

void Coordinator::send_to_peer_locked(Peer& peer,
                                      const std::vector<std::uint8_t>& frame) {
  std::scoped_lock wlock(peer.write_mutex);
  if (!peer.socket.valid()) return;
  (void)peer.socket.send_frame(frame);  // reader/heartbeat notices failures
}

void Coordinator::tick_loop() {
  const CancelToken stop = stop_source_.token();
  while (!stop.cancel_requested()) {
    connect_peers();
    {
      std::scoped_lock lock(mutex_);
      heartbeat_locked();
      replicate_locked();
      dispatch_locked();
      sweep_deadlines_locked();
    }
    std::this_thread::sleep_for(kTickPeriod);
  }
}

void Coordinator::connect_peers() {
  const double now = now_seconds();
  std::vector<Peer*> ready;
  {
    std::scoped_lock lock(mutex_);
    for (auto& peer : peers_) {
      if (peer->state != Peer::State::kDown) continue;
      if (now < peer->reconnect_not_before) continue;
      // A previous reader must be fully out before the socket is replaced;
      // reader_exited is its very last store, so this join cannot block on
      // the mutex this thread holds.
      if (peer->reader.joinable() &&
          !peer->reader_exited.load(std::memory_order_acquire)) {
        continue;
      }
      if (peer->reader.joinable()) peer->reader.join();
      peer->state = Peer::State::kConnecting;
      ready.push_back(peer.get());
    }
  }

  for (Peer* peer : ready) {
    auto socket = net::dial(peer->addr.host, peer->addr.port,
                            config_.connect_timeout_seconds);
    bool joined = false;
    PeerWelcome welcome;
    if (socket) {
      PeerHello hello;
      hello.cluster_name = config_.cluster_name;
      hello.coordinator_epoch = config_.epoch;
      if (socket->send_frame(encode_peer_hello(hello)).ok()) {
        auto frame =
            socket->read_frame(config_.connect_timeout_seconds, stop_source_.token());
        if (frame &&
            frame->type == parallel::wire::MessageType::kPeerWelcome) {
          if (auto decoded = decode_peer_welcome(frame->payload); decoded) {
            welcome = std::move(*decoded);
            joined = true;
          }
        }
      }
    }

    std::scoped_lock lock(mutex_);
    if (stopping_.load(std::memory_order_acquire)) return;
    if (!joined) {
      peer->state = Peer::State::kDown;
      ++peer->reconnect_attempts;
      peer->reconnect_not_before =
          now_seconds() + jittered_backoff_locked(config_.resubmit_backoff_seconds,
                                                  peer->reconnect_attempts);
      continue;
    }
    peer->socket = std::move(*socket);
    peer->name = welcome.node_name;
    peer->num_workers = std::max<std::uint32_t>(1, welcome.num_workers);
    // The welcome's cursor drives catch-up: replicate_locked resends every
    // record past it (a truncated replica reports 0 → the full live image).
    peer->sent_seq = welcome.last_applied_seq;
    peer->acked_seq = welcome.last_applied_seq;
    peer->running_jobs = 0;
    peer->queued_jobs = 0;
    peer->last_heard.store(now_seconds(), std::memory_order_release);
    peer->last_ping = 0.0;
    peer->reconnect_attempts = 0;
    peer->down_handled = false;
    peer->reader_exited.store(false, std::memory_order_release);
    peer->state = Peer::State::kAlive;
    ++stats_.nodes_connected;
    obs::metrics().counter("cluster_peer_connects_total").add();
    PTS_LOG_INFO("cluster: peer %zu ('%s' %s:%u) joined, applied_seq=%llu",
                 peer->index, peer->name.c_str(), peer->addr.host.c_str(),
                 static_cast<unsigned>(peer->addr.port),
                 static_cast<unsigned long long>(welcome.last_applied_seq));
    peer->reader = std::thread([this, peer] { reader_loop(*peer); });
  }
}

void Coordinator::heartbeat_locked() {
  const double now = now_seconds();
  const double budget =
      config_.heartbeat_interval_seconds * config_.heartbeat_misses;
  for (auto& peer : peers_) {
    if (peer->state != Peer::State::kAlive) continue;
    if (now - peer->last_heard.load(std::memory_order_acquire) > budget) {
      PTS_LOG_WARN("cluster: peer %zu ('%s') missed %d heartbeats — failing over",
                   peer->index, peer->name.c_str(), config_.heartbeat_misses);
      on_peer_down_locked(*peer);
      continue;
    }
    if (now - peer->last_ping >= config_.heartbeat_interval_seconds) {
      peer->last_ping = now;
      send_to_peer_locked(*peer, encode_peer_ping({++peer->ping_seq}));
    }
  }
}

void Coordinator::replicate_locked() {
  const std::uint64_t latest = next_seq_ - 1;
  for (auto& peer : peers_) {
    if (peer->state != Peer::State::kAlive) continue;
    for (int batch_no = 0;
         peer->sent_seq < latest && batch_no < kMaxReplicateBatchesPerTick;
         ++batch_no) {
      PeerReplicate batch;
      std::uint64_t high = peer->sent_seq;
      for (const auto& record : log_) {
        if (record.seq <= peer->sent_seq) continue;
        batch.records.push_back(record);
        high = record.seq;
        if (batch.records.size() >= kMaxReplicateRecordsPerFrame) break;
      }
      if (batch.records.empty()) {
        // Everything past the cursor was compacted away (resolved pairs):
        // advance the cursor — those records are no-ops for the replica.
        peer->sent_seq = latest;
        break;
      }
      stats_.records_replicated += batch.records.size();
      peer->sent_seq = high;
      send_to_peer_locked(*peer, encode_peer_replicate(batch));
    }
  }
}

void Coordinator::dispatch_locked() {
  const double now = now_seconds();
  for (auto& [key, job_ptr] : jobs_) {
    ClusterJob& job = *job_ptr;
    if (job.inflight || job.waiters.empty() || now < job.not_before) continue;

    // Least-loaded alive peer: the node's own sample plus what we have sent
    // it that it may not have reported yet.
    Peer* best = nullptr;
    double best_load = 0.0;
    for (auto& peer : peers_) {
      if (peer->state != Peer::State::kAlive) continue;
      const double load =
          static_cast<double>(peer->running_jobs + peer->queued_jobs +
                              peer->inflight.size()) /
          static_cast<double>(peer->num_workers);
      if (!best || load < best_load) {
        best = peer.get();
        best_load = load;
      }
    }
    if (!best) return;  // no alive node — jobs stay pending

    net::SubmitJob m{best->next_request_id++,
                     job.canonical.tenant,
                     job.canonical.priority,
                     /*deadline_seconds=*/std::nullopt,
                     job.canonical.warm_start,
                     job.canonical.allow_dedup,
                     job.canonical.options,
                     *job.canonical.instance};
    job.inflight = true;
    job.acked = false;
    job.peer_index = best->index;
    job.request_id = m.request_id;
    best->inflight.emplace(m.request_id, key);
    ++stats_.dispatched;
    obs::metrics().counter("cluster_dispatches_total").add();
    send_to_peer_locked(*best, net::encode_submit_job(m));
  }
}

void Coordinator::sweep_deadlines_locked() {
  std::vector<std::string> empty_pending;
  for (auto& [key, job_ptr] : jobs_) {
    ClusterJob& job = *job_ptr;
    for (auto it = job.waiters.begin(); it != job.waiters.end();) {
      if ((*it)->deadline.expired()) {
        service::JobResult result;
        result.status =
            Status::deadline_exceeded("cluster: deadline passed before the result");
        result.instance = job.canonical.instance;
        result.content_hash = job.content_hash;
        resolve_waiter_locked(**it, std::move(result), /*strike_journal=*/true);
        it = job.waiters.erase(it);
      } else {
        ++it;
      }
    }
    if (job.waiters.empty()) {
      if (job.inflight) {
        if (!job.cancel_sent && job.acked) {
          send_to_peer_locked(*peers_[job.peer_index],
                              net::encode_cancel_job({job.request_id}));
          job.cancel_sent = true;
        }
      } else {
        empty_pending.push_back(key);
      }
    }
  }
  for (const auto& key : empty_pending) jobs_.erase(key);
}

void Coordinator::on_peer_down_locked(Peer& peer) {
  if (peer.down_handled) return;
  if (stopping_.load(std::memory_order_acquire)) return;  // stop() owns cleanup
  peer.down_handled = true;
  peer.state = Peer::State::kDown;
  if (peer.socket.valid()) ::shutdown(peer.socket.fd(), SHUT_RDWR);
  ++stats_.nodes_lost;
  obs::metrics().counter("cluster_peer_losses_total").add();

  const double now = now_seconds();
  for (const auto& [request_id, key] : peer.inflight) {
    auto it = jobs_.find(key);
    if (it == jobs_.end()) continue;
    ClusterJob& job = *it->second;
    job.inflight = false;
    job.acked = false;
    job.cancel_sent = false;
    // The survivor re-streams the whole curve from zero; keeping the dead
    // node's prefix would hand waiters a non-monotone curve with the
    // pre-failure samples duplicated.
    job.anytime.clear();
    if (job.waiters.empty()) {
      // Everybody cancelled while it ran; the node that was running it is
      // gone, so there is nothing left to stop or report.
      jobs_.erase(it);
      continue;
    }
    ++job.attempts;
    if (job.attempts > config_.max_resubmits) {
      ++stats_.exhausted;
      fail_job_locked(key,
                      Status::unavailable(
                          "cluster: job lost to node failure too many times"),
                      /*strike_journal=*/true);
      continue;
    }
    job.not_before =
        now + jittered_backoff_locked(config_.resubmit_backoff_seconds,
                                      job.attempts);
    ++stats_.failovers;
    obs::metrics().counter("cluster_failovers_total").add();
  }
  peer.inflight.clear();

  ++peer.reconnect_attempts;
  peer.reconnect_not_before =
      now + jittered_backoff_locked(config_.resubmit_backoff_seconds,
                                    peer.reconnect_attempts);
}

void Coordinator::handle_result_locked(Peer& peer, std::uint64_t request_id,
                                       std::vector<std::uint8_t> payload) {
  auto inflight = peer.inflight.find(request_id);
  if (inflight == peer.inflight.end()) return;  // failover already re-owned it
  const std::string key = inflight->second;
  peer.inflight.erase(inflight);
  auto it = jobs_.find(key);
  if (it == jobs_.end()) return;
  ClusterJob& job = *it->second;

  auto decoded = net::decode_job_result(payload, *job.canonical.instance);
  if (!decoded) {
    // A corrupt result frame: treat like a lost solve — the usual retry
    // machinery decides whether to give up. The retry re-streams the curve,
    // so drop the samples collected from this attempt.
    job.inflight = false;
    job.acked = false;
    job.anytime.clear();
    ++job.attempts;
    if (job.attempts > config_.max_resubmits) {
      ++stats_.exhausted;
      fail_job_locked(key, decoded.status(), /*strike_journal=*/true);
    } else {
      job.not_before =
          now_seconds() + jittered_backoff_locked(
                              config_.resubmit_backoff_seconds, job.attempts);
    }
    return;
  }
  net::JobResultFrame m = std::move(*decoded);

  service::JobResult base;
  base.origin = m.origin;
  base.status = std::move(m.status);
  base.instance = job.canonical.instance;
  base.best = std::move(m.best);
  base.best_value = m.best_value;
  base.total_moves = m.total_moves;
  base.reached_target = m.reached_target;
  base.slave_faults = m.slave_faults;
  base.queue_seconds = m.queue_seconds;
  base.run_seconds = m.run_seconds;
  base.start_sequence = m.start_sequence;
  base.content_hash = m.content_hash;
  base.deduplicated = m.deduplicated;
  base.warm_started = m.warm_started;
  base.anytime = std::move(job.anytime);

  for (auto& waiter : job.waiters) {
    resolve_waiter_locked(*waiter, base, /*strike_journal=*/true);
  }
  jobs_.erase(it);
}

void Coordinator::reader_loop(Peer& peer) {
  const CancelToken stop = stop_source_.token();
  for (;;) {
    auto frame = peer.socket.read_frame(0.1, stop);
    if (!frame) {
      if (frame.status().code() == StatusCode::kDeadlineExceeded) {
        if (stop.cancel_requested()) break;
        continue;  // liveness is the heartbeat's job, not this timeout's
      }
      break;  // kUnavailable (node died), kCancelled (stop), or garbage
    }
    peer.last_heard.store(now_seconds(), std::memory_order_release);

    using parallel::wire::MessageType;
    switch (frame->type) {
      case MessageType::kPeerPong: {
        auto pong = decode_peer_pong(frame->payload);
        if (!pong) break;
        std::scoped_lock lock(mutex_);
        peer.running_jobs = pong->running_jobs;
        peer.queued_jobs = pong->queued_jobs;
        peer.acked_seq = std::max(peer.acked_seq, pong->last_applied_seq);
        break;
      }
      case MessageType::kPeerReplicateAck: {
        auto ack = decode_peer_replicate_ack(frame->payload);
        if (!ack) break;
        std::scoped_lock lock(mutex_);
        peer.acked_seq = std::max(peer.acked_seq, ack->last_applied_seq);
        break;
      }
      case MessageType::kSubmitAck: {
        auto ack = net::decode_submit_ack(frame->payload);
        if (!ack) break;
        std::scoped_lock lock(mutex_);
        auto inflight = peer.inflight.find(ack->request_id);
        if (inflight == peer.inflight.end()) break;
        auto it = jobs_.find(inflight->second);
        if (it == jobs_.end()) break;
        ClusterJob& job = *it->second;
        if (!ack->status.ok()) {
          // The node refused the submission (backpressure, draining):
          // surface the verdict to every waiter rather than retrying into
          // the same wall.
          const std::string key = inflight->second;
          peer.inflight.erase(inflight);
          fail_job_locked(key, ack->status, /*strike_journal=*/true);
          break;
        }
        job.acked = true;
        if (job.remote_hash == 0) {
          job.remote_hash = ack->content_hash;
        } else if (job.remote_hash != ack->content_hash) {
          PTS_LOG_ERROR(
              "cluster: resubmission of job %llu acked hash %016llx, "
              "expected %016llx",
              static_cast<unsigned long long>(job.primary_id),
              static_cast<unsigned long long>(ack->content_hash),
              static_cast<unsigned long long>(job.remote_hash));
        }
        // A cancel that raced the dispatch: everyone left before the ack.
        if (job.waiters.empty() && !job.cancel_sent) {
          send_to_peer_locked(peer, net::encode_cancel_job({job.request_id}));
          job.cancel_sent = true;
        }
        break;
      }
      case MessageType::kJobEvent: {
        auto event = net::decode_job_event(frame->payload);
        if (!event) break;
        std::scoped_lock lock(mutex_);
        auto inflight = peer.inflight.find(event->request_id);
        if (inflight == peer.inflight.end()) break;
        auto it = jobs_.find(inflight->second);
        if (it == jobs_.end()) break;
        auto& anytime = it->second->anytime;
        anytime.insert(anytime.end(), event->anytime.begin(),
                       event->anytime.end());
        break;
      }
      case MessageType::kJobResult: {
        std::scoped_lock lock(mutex_);
        // Peek the request id to route; decode happens against the job's
        // own instance inside.
        parallel::codec::Reader r(frame->payload);
        const std::uint64_t request_id = r.u64();
        if (!r.ok()) break;
        handle_result_locked(peer, request_id, std::move(frame->payload));
        break;
      }
      case MessageType::kGoodbye:
        break;  // the node is draining; EOF follows and failover handles it
      default:
        break;  // tolerate unknown-but-well-framed traffic from a newer node
    }
  }
  {
    std::scoped_lock lock(mutex_);
    on_peer_down_locked(peer);
  }
  peer.reader_exited.store(true, std::memory_order_release);
}

}  // namespace pts::cluster
