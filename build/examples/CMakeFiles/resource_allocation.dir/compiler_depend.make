# Empty compiler generated dependencies file for resource_allocation.
# This may be replaced when dependencies are built.
