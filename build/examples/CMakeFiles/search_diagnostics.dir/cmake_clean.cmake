file(REMOVE_RECURSE
  "CMakeFiles/search_diagnostics.dir/search_diagnostics.cpp.o"
  "CMakeFiles/search_diagnostics.dir/search_diagnostics.cpp.o.d"
  "search_diagnostics"
  "search_diagnostics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_diagnostics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
