# Empty compiler generated dependencies file for search_diagnostics.
# This may be replaced when dependencies are built.
