# Empty dependencies file for orlib_solver.
# This may be replaced when dependencies are built.
