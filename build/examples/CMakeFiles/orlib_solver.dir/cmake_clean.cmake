file(REMOVE_RECURSE
  "CMakeFiles/orlib_solver.dir/orlib_solver.cpp.o"
  "CMakeFiles/orlib_solver.dir/orlib_solver.cpp.o.d"
  "orlib_solver"
  "orlib_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orlib_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
