file(REMOVE_RECURSE
  "CMakeFiles/capital_budgeting.dir/capital_budgeting.cpp.o"
  "CMakeFiles/capital_budgeting.dir/capital_budgeting.cpp.o.d"
  "capital_budgeting"
  "capital_budgeting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capital_budgeting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
