# Empty compiler generated dependencies file for capital_budgeting.
# This may be replaced when dependencies are built.
