# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke_bench_table1_gk "/root/repo/build/bench/bench_table1_gk" "--quick")
set_tests_properties(smoke_bench_table1_gk PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;20;pts_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_table2_modes "/root/repo/build/bench/bench_table2_modes" "--quick")
set_tests_properties(smoke_bench_table2_modes PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;21;pts_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fp57 "/root/repo/build/bench/bench_fp57" "--quick")
set_tests_properties(smoke_bench_fp57 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;22;pts_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_ablate_tenure "/root/repo/build/bench/bench_ablate_tenure" "--quick")
set_tests_properties(smoke_bench_ablate_tenure PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;23;pts_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_ablate_nbdrop "/root/repo/build/bench/bench_ablate_nbdrop" "--quick")
set_tests_properties(smoke_bench_ablate_nbdrop PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;24;pts_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_ablate_intensify "/root/repo/build/bench/bench_ablate_intensify" "--quick")
set_tests_properties(smoke_bench_ablate_intensify PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;25;pts_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_ablate_dynamic "/root/repo/build/bench/bench_ablate_dynamic" "--quick")
set_tests_properties(smoke_bench_ablate_dynamic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;26;pts_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_scale_threads "/root/repo/build/bench/bench_scale_threads" "--quick")
set_tests_properties(smoke_bench_scale_threads PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;27;pts_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_ablate_alpha "/root/repo/build/bench/bench_ablate_alpha" "--quick")
set_tests_properties(smoke_bench_ablate_alpha PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;28;pts_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_reduction "/root/repo/build/bench/bench_reduction" "--quick")
set_tests_properties(smoke_bench_reduction PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;29;pts_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_anytime "/root/repo/build/bench/bench_anytime" "--quick")
set_tests_properties(smoke_bench_anytime PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;30;pts_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_cets_compare "/root/repo/build/bench/bench_cets_compare" "--quick")
set_tests_properties(smoke_bench_cets_compare PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;31;pts_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_tightness "/root/repo/build/bench/bench_tightness" "--quick")
set_tests_properties(smoke_bench_tightness PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;32;pts_add_bench;/root/repo/bench/CMakeLists.txt;0;")
