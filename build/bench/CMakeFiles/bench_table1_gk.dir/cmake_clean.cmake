file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_gk.dir/bench_table1_gk.cpp.o"
  "CMakeFiles/bench_table1_gk.dir/bench_table1_gk.cpp.o.d"
  "bench_table1_gk"
  "bench_table1_gk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_gk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
