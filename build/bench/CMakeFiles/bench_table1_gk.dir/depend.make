# Empty dependencies file for bench_table1_gk.
# This may be replaced when dependencies are built.
