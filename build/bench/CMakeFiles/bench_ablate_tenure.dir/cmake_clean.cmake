file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_tenure.dir/bench_ablate_tenure.cpp.o"
  "CMakeFiles/bench_ablate_tenure.dir/bench_ablate_tenure.cpp.o.d"
  "bench_ablate_tenure"
  "bench_ablate_tenure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_tenure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
