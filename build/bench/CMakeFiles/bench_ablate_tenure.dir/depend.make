# Empty dependencies file for bench_ablate_tenure.
# This may be replaced when dependencies are built.
