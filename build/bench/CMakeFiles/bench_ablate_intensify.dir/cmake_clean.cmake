file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_intensify.dir/bench_ablate_intensify.cpp.o"
  "CMakeFiles/bench_ablate_intensify.dir/bench_ablate_intensify.cpp.o.d"
  "bench_ablate_intensify"
  "bench_ablate_intensify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_intensify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
