# Empty dependencies file for bench_ablate_intensify.
# This may be replaced when dependencies are built.
