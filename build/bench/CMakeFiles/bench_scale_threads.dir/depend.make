# Empty dependencies file for bench_scale_threads.
# This may be replaced when dependencies are built.
