file(REMOVE_RECURSE
  "CMakeFiles/bench_scale_threads.dir/bench_scale_threads.cpp.o"
  "CMakeFiles/bench_scale_threads.dir/bench_scale_threads.cpp.o.d"
  "bench_scale_threads"
  "bench_scale_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scale_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
