file(REMOVE_RECURSE
  "CMakeFiles/bench_fp57.dir/bench_fp57.cpp.o"
  "CMakeFiles/bench_fp57.dir/bench_fp57.cpp.o.d"
  "bench_fp57"
  "bench_fp57.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fp57.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
