# Empty dependencies file for bench_fp57.
# This may be replaced when dependencies are built.
