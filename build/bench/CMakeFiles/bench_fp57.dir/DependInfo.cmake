
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fp57.cpp" "bench/CMakeFiles/bench_fp57.dir/bench_fp57.cpp.o" "gcc" "bench/CMakeFiles/bench_fp57.dir/bench_fp57.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/pts_bench_support.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/pts_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/pts_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/tabu/CMakeFiles/pts_tabu.dir/DependInfo.cmake"
  "/root/repo/build/src/exact/CMakeFiles/pts_exact.dir/DependInfo.cmake"
  "/root/repo/build/src/bounds/CMakeFiles/pts_bounds.dir/DependInfo.cmake"
  "/root/repo/build/src/mkp/CMakeFiles/pts_mkp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
