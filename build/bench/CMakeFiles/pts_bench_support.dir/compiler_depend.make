# Empty compiler generated dependencies file for pts_bench_support.
# This may be replaced when dependencies are built.
