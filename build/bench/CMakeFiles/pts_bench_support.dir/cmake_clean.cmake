file(REMOVE_RECURSE
  "../lib/libpts_bench_support.a"
  "../lib/libpts_bench_support.pdb"
  "CMakeFiles/pts_bench_support.dir/common.cpp.o"
  "CMakeFiles/pts_bench_support.dir/common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pts_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
