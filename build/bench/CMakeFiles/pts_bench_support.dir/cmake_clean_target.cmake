file(REMOVE_RECURSE
  "../lib/libpts_bench_support.a"
)
