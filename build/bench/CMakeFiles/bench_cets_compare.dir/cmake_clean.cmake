file(REMOVE_RECURSE
  "CMakeFiles/bench_cets_compare.dir/bench_cets_compare.cpp.o"
  "CMakeFiles/bench_cets_compare.dir/bench_cets_compare.cpp.o.d"
  "bench_cets_compare"
  "bench_cets_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cets_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
