# Empty dependencies file for bench_cets_compare.
# This may be replaced when dependencies are built.
