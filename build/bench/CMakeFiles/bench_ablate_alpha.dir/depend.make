# Empty dependencies file for bench_ablate_alpha.
# This may be replaced when dependencies are built.
