file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_alpha.dir/bench_ablate_alpha.cpp.o"
  "CMakeFiles/bench_ablate_alpha.dir/bench_ablate_alpha.cpp.o.d"
  "bench_ablate_alpha"
  "bench_ablate_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
