file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_dynamic.dir/bench_ablate_dynamic.cpp.o"
  "CMakeFiles/bench_ablate_dynamic.dir/bench_ablate_dynamic.cpp.o.d"
  "bench_ablate_dynamic"
  "bench_ablate_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
