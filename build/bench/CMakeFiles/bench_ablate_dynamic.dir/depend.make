# Empty dependencies file for bench_ablate_dynamic.
# This may be replaced when dependencies are built.
