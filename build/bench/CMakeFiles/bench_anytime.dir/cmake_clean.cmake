file(REMOVE_RECURSE
  "CMakeFiles/bench_anytime.dir/bench_anytime.cpp.o"
  "CMakeFiles/bench_anytime.dir/bench_anytime.cpp.o.d"
  "bench_anytime"
  "bench_anytime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_anytime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
