# Empty dependencies file for bench_anytime.
# This may be replaced when dependencies are built.
