# Empty compiler generated dependencies file for bench_ablate_nbdrop.
# This may be replaced when dependencies are built.
