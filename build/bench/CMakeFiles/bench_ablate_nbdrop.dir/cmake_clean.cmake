file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_nbdrop.dir/bench_ablate_nbdrop.cpp.o"
  "CMakeFiles/bench_ablate_nbdrop.dir/bench_ablate_nbdrop.cpp.o.d"
  "bench_ablate_nbdrop"
  "bench_ablate_nbdrop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_nbdrop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
