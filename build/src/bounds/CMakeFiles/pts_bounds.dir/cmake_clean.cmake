file(REMOVE_RECURSE
  "CMakeFiles/pts_bounds.dir/dantzig.cpp.o"
  "CMakeFiles/pts_bounds.dir/dantzig.cpp.o.d"
  "CMakeFiles/pts_bounds.dir/greedy.cpp.o"
  "CMakeFiles/pts_bounds.dir/greedy.cpp.o.d"
  "CMakeFiles/pts_bounds.dir/lagrangian.cpp.o"
  "CMakeFiles/pts_bounds.dir/lagrangian.cpp.o.d"
  "CMakeFiles/pts_bounds.dir/linalg.cpp.o"
  "CMakeFiles/pts_bounds.dir/linalg.cpp.o.d"
  "CMakeFiles/pts_bounds.dir/reduction.cpp.o"
  "CMakeFiles/pts_bounds.dir/reduction.cpp.o.d"
  "CMakeFiles/pts_bounds.dir/simplex.cpp.o"
  "CMakeFiles/pts_bounds.dir/simplex.cpp.o.d"
  "CMakeFiles/pts_bounds.dir/surrogate.cpp.o"
  "CMakeFiles/pts_bounds.dir/surrogate.cpp.o.d"
  "libpts_bounds.a"
  "libpts_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pts_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
