
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bounds/dantzig.cpp" "src/bounds/CMakeFiles/pts_bounds.dir/dantzig.cpp.o" "gcc" "src/bounds/CMakeFiles/pts_bounds.dir/dantzig.cpp.o.d"
  "/root/repo/src/bounds/greedy.cpp" "src/bounds/CMakeFiles/pts_bounds.dir/greedy.cpp.o" "gcc" "src/bounds/CMakeFiles/pts_bounds.dir/greedy.cpp.o.d"
  "/root/repo/src/bounds/lagrangian.cpp" "src/bounds/CMakeFiles/pts_bounds.dir/lagrangian.cpp.o" "gcc" "src/bounds/CMakeFiles/pts_bounds.dir/lagrangian.cpp.o.d"
  "/root/repo/src/bounds/linalg.cpp" "src/bounds/CMakeFiles/pts_bounds.dir/linalg.cpp.o" "gcc" "src/bounds/CMakeFiles/pts_bounds.dir/linalg.cpp.o.d"
  "/root/repo/src/bounds/reduction.cpp" "src/bounds/CMakeFiles/pts_bounds.dir/reduction.cpp.o" "gcc" "src/bounds/CMakeFiles/pts_bounds.dir/reduction.cpp.o.d"
  "/root/repo/src/bounds/simplex.cpp" "src/bounds/CMakeFiles/pts_bounds.dir/simplex.cpp.o" "gcc" "src/bounds/CMakeFiles/pts_bounds.dir/simplex.cpp.o.d"
  "/root/repo/src/bounds/surrogate.cpp" "src/bounds/CMakeFiles/pts_bounds.dir/surrogate.cpp.o" "gcc" "src/bounds/CMakeFiles/pts_bounds.dir/surrogate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mkp/CMakeFiles/pts_mkp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
