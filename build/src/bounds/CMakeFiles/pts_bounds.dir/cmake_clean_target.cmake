file(REMOVE_RECURSE
  "libpts_bounds.a"
)
