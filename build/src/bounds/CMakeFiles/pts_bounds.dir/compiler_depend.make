# Empty compiler generated dependencies file for pts_bounds.
# This may be replaced when dependencies are built.
