# Empty dependencies file for pts_bounds.
# This may be replaced when dependencies are built.
