file(REMOVE_RECURSE
  "libpts_exact.a"
)
