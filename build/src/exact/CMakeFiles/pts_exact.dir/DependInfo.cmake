
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exact/branch_and_bound.cpp" "src/exact/CMakeFiles/pts_exact.dir/branch_and_bound.cpp.o" "gcc" "src/exact/CMakeFiles/pts_exact.dir/branch_and_bound.cpp.o.d"
  "/root/repo/src/exact/brute_force.cpp" "src/exact/CMakeFiles/pts_exact.dir/brute_force.cpp.o" "gcc" "src/exact/CMakeFiles/pts_exact.dir/brute_force.cpp.o.d"
  "/root/repo/src/exact/dp_single.cpp" "src/exact/CMakeFiles/pts_exact.dir/dp_single.cpp.o" "gcc" "src/exact/CMakeFiles/pts_exact.dir/dp_single.cpp.o.d"
  "/root/repo/src/exact/reduce_and_solve.cpp" "src/exact/CMakeFiles/pts_exact.dir/reduce_and_solve.cpp.o" "gcc" "src/exact/CMakeFiles/pts_exact.dir/reduce_and_solve.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mkp/CMakeFiles/pts_mkp.dir/DependInfo.cmake"
  "/root/repo/build/src/bounds/CMakeFiles/pts_bounds.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
