file(REMOVE_RECURSE
  "CMakeFiles/pts_exact.dir/branch_and_bound.cpp.o"
  "CMakeFiles/pts_exact.dir/branch_and_bound.cpp.o.d"
  "CMakeFiles/pts_exact.dir/brute_force.cpp.o"
  "CMakeFiles/pts_exact.dir/brute_force.cpp.o.d"
  "CMakeFiles/pts_exact.dir/dp_single.cpp.o"
  "CMakeFiles/pts_exact.dir/dp_single.cpp.o.d"
  "CMakeFiles/pts_exact.dir/reduce_and_solve.cpp.o"
  "CMakeFiles/pts_exact.dir/reduce_and_solve.cpp.o.d"
  "libpts_exact.a"
  "libpts_exact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pts_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
