# Empty compiler generated dependencies file for pts_exact.
# This may be replaced when dependencies are built.
