# Empty dependencies file for pts_tabu.
# This may be replaced when dependencies are built.
