file(REMOVE_RECURSE
  "libpts_tabu.a"
)
