file(REMOVE_RECURSE
  "CMakeFiles/pts_tabu.dir/cets.cpp.o"
  "CMakeFiles/pts_tabu.dir/cets.cpp.o.d"
  "CMakeFiles/pts_tabu.dir/diversify.cpp.o"
  "CMakeFiles/pts_tabu.dir/diversify.cpp.o.d"
  "CMakeFiles/pts_tabu.dir/elite_pool.cpp.o"
  "CMakeFiles/pts_tabu.dir/elite_pool.cpp.o.d"
  "CMakeFiles/pts_tabu.dir/engine.cpp.o"
  "CMakeFiles/pts_tabu.dir/engine.cpp.o.d"
  "CMakeFiles/pts_tabu.dir/history.cpp.o"
  "CMakeFiles/pts_tabu.dir/history.cpp.o.d"
  "CMakeFiles/pts_tabu.dir/intensify.cpp.o"
  "CMakeFiles/pts_tabu.dir/intensify.cpp.o.d"
  "CMakeFiles/pts_tabu.dir/moves.cpp.o"
  "CMakeFiles/pts_tabu.dir/moves.cpp.o.d"
  "CMakeFiles/pts_tabu.dir/path_relink.cpp.o"
  "CMakeFiles/pts_tabu.dir/path_relink.cpp.o.d"
  "CMakeFiles/pts_tabu.dir/reactive.cpp.o"
  "CMakeFiles/pts_tabu.dir/reactive.cpp.o.d"
  "CMakeFiles/pts_tabu.dir/rem.cpp.o"
  "CMakeFiles/pts_tabu.dir/rem.cpp.o.d"
  "CMakeFiles/pts_tabu.dir/tabu_list.cpp.o"
  "CMakeFiles/pts_tabu.dir/tabu_list.cpp.o.d"
  "CMakeFiles/pts_tabu.dir/trajectory.cpp.o"
  "CMakeFiles/pts_tabu.dir/trajectory.cpp.o.d"
  "libpts_tabu.a"
  "libpts_tabu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pts_tabu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
