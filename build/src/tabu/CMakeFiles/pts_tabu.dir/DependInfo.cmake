
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tabu/cets.cpp" "src/tabu/CMakeFiles/pts_tabu.dir/cets.cpp.o" "gcc" "src/tabu/CMakeFiles/pts_tabu.dir/cets.cpp.o.d"
  "/root/repo/src/tabu/diversify.cpp" "src/tabu/CMakeFiles/pts_tabu.dir/diversify.cpp.o" "gcc" "src/tabu/CMakeFiles/pts_tabu.dir/diversify.cpp.o.d"
  "/root/repo/src/tabu/elite_pool.cpp" "src/tabu/CMakeFiles/pts_tabu.dir/elite_pool.cpp.o" "gcc" "src/tabu/CMakeFiles/pts_tabu.dir/elite_pool.cpp.o.d"
  "/root/repo/src/tabu/engine.cpp" "src/tabu/CMakeFiles/pts_tabu.dir/engine.cpp.o" "gcc" "src/tabu/CMakeFiles/pts_tabu.dir/engine.cpp.o.d"
  "/root/repo/src/tabu/history.cpp" "src/tabu/CMakeFiles/pts_tabu.dir/history.cpp.o" "gcc" "src/tabu/CMakeFiles/pts_tabu.dir/history.cpp.o.d"
  "/root/repo/src/tabu/intensify.cpp" "src/tabu/CMakeFiles/pts_tabu.dir/intensify.cpp.o" "gcc" "src/tabu/CMakeFiles/pts_tabu.dir/intensify.cpp.o.d"
  "/root/repo/src/tabu/moves.cpp" "src/tabu/CMakeFiles/pts_tabu.dir/moves.cpp.o" "gcc" "src/tabu/CMakeFiles/pts_tabu.dir/moves.cpp.o.d"
  "/root/repo/src/tabu/path_relink.cpp" "src/tabu/CMakeFiles/pts_tabu.dir/path_relink.cpp.o" "gcc" "src/tabu/CMakeFiles/pts_tabu.dir/path_relink.cpp.o.d"
  "/root/repo/src/tabu/reactive.cpp" "src/tabu/CMakeFiles/pts_tabu.dir/reactive.cpp.o" "gcc" "src/tabu/CMakeFiles/pts_tabu.dir/reactive.cpp.o.d"
  "/root/repo/src/tabu/rem.cpp" "src/tabu/CMakeFiles/pts_tabu.dir/rem.cpp.o" "gcc" "src/tabu/CMakeFiles/pts_tabu.dir/rem.cpp.o.d"
  "/root/repo/src/tabu/tabu_list.cpp" "src/tabu/CMakeFiles/pts_tabu.dir/tabu_list.cpp.o" "gcc" "src/tabu/CMakeFiles/pts_tabu.dir/tabu_list.cpp.o.d"
  "/root/repo/src/tabu/trajectory.cpp" "src/tabu/CMakeFiles/pts_tabu.dir/trajectory.cpp.o" "gcc" "src/tabu/CMakeFiles/pts_tabu.dir/trajectory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mkp/CMakeFiles/pts_mkp.dir/DependInfo.cmake"
  "/root/repo/build/src/bounds/CMakeFiles/pts_bounds.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
