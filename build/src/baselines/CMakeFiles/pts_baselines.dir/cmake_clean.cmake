file(REMOVE_RECURSE
  "CMakeFiles/pts_baselines.dir/grasp.cpp.o"
  "CMakeFiles/pts_baselines.dir/grasp.cpp.o.d"
  "CMakeFiles/pts_baselines.dir/simulated_annealing.cpp.o"
  "CMakeFiles/pts_baselines.dir/simulated_annealing.cpp.o.d"
  "libpts_baselines.a"
  "libpts_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pts_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
