# Empty compiler generated dependencies file for pts_baselines.
# This may be replaced when dependencies are built.
