file(REMOVE_RECURSE
  "libpts_baselines.a"
)
