file(REMOVE_RECURSE
  "CMakeFiles/pts_mkp.dir/analysis.cpp.o"
  "CMakeFiles/pts_mkp.dir/analysis.cpp.o.d"
  "CMakeFiles/pts_mkp.dir/catalog.cpp.o"
  "CMakeFiles/pts_mkp.dir/catalog.cpp.o.d"
  "CMakeFiles/pts_mkp.dir/generator.cpp.o"
  "CMakeFiles/pts_mkp.dir/generator.cpp.o.d"
  "CMakeFiles/pts_mkp.dir/instance.cpp.o"
  "CMakeFiles/pts_mkp.dir/instance.cpp.o.d"
  "CMakeFiles/pts_mkp.dir/parser.cpp.o"
  "CMakeFiles/pts_mkp.dir/parser.cpp.o.d"
  "CMakeFiles/pts_mkp.dir/solution.cpp.o"
  "CMakeFiles/pts_mkp.dir/solution.cpp.o.d"
  "CMakeFiles/pts_mkp.dir/solution_io.cpp.o"
  "CMakeFiles/pts_mkp.dir/solution_io.cpp.o.d"
  "CMakeFiles/pts_mkp.dir/suites.cpp.o"
  "CMakeFiles/pts_mkp.dir/suites.cpp.o.d"
  "libpts_mkp.a"
  "libpts_mkp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pts_mkp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
