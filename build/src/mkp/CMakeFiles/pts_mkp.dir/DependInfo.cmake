
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mkp/analysis.cpp" "src/mkp/CMakeFiles/pts_mkp.dir/analysis.cpp.o" "gcc" "src/mkp/CMakeFiles/pts_mkp.dir/analysis.cpp.o.d"
  "/root/repo/src/mkp/catalog.cpp" "src/mkp/CMakeFiles/pts_mkp.dir/catalog.cpp.o" "gcc" "src/mkp/CMakeFiles/pts_mkp.dir/catalog.cpp.o.d"
  "/root/repo/src/mkp/generator.cpp" "src/mkp/CMakeFiles/pts_mkp.dir/generator.cpp.o" "gcc" "src/mkp/CMakeFiles/pts_mkp.dir/generator.cpp.o.d"
  "/root/repo/src/mkp/instance.cpp" "src/mkp/CMakeFiles/pts_mkp.dir/instance.cpp.o" "gcc" "src/mkp/CMakeFiles/pts_mkp.dir/instance.cpp.o.d"
  "/root/repo/src/mkp/parser.cpp" "src/mkp/CMakeFiles/pts_mkp.dir/parser.cpp.o" "gcc" "src/mkp/CMakeFiles/pts_mkp.dir/parser.cpp.o.d"
  "/root/repo/src/mkp/solution.cpp" "src/mkp/CMakeFiles/pts_mkp.dir/solution.cpp.o" "gcc" "src/mkp/CMakeFiles/pts_mkp.dir/solution.cpp.o.d"
  "/root/repo/src/mkp/solution_io.cpp" "src/mkp/CMakeFiles/pts_mkp.dir/solution_io.cpp.o" "gcc" "src/mkp/CMakeFiles/pts_mkp.dir/solution_io.cpp.o.d"
  "/root/repo/src/mkp/suites.cpp" "src/mkp/CMakeFiles/pts_mkp.dir/suites.cpp.o" "gcc" "src/mkp/CMakeFiles/pts_mkp.dir/suites.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
