file(REMOVE_RECURSE
  "libpts_mkp.a"
)
