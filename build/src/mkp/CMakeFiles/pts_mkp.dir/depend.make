# Empty dependencies file for pts_mkp.
# This may be replaced when dependencies are built.
