
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parallel/async_swarm.cpp" "src/parallel/CMakeFiles/pts_parallel.dir/async_swarm.cpp.o" "gcc" "src/parallel/CMakeFiles/pts_parallel.dir/async_swarm.cpp.o.d"
  "/root/repo/src/parallel/autotune.cpp" "src/parallel/CMakeFiles/pts_parallel.dir/autotune.cpp.o" "gcc" "src/parallel/CMakeFiles/pts_parallel.dir/autotune.cpp.o.d"
  "/root/repo/src/parallel/comm.cpp" "src/parallel/CMakeFiles/pts_parallel.dir/comm.cpp.o" "gcc" "src/parallel/CMakeFiles/pts_parallel.dir/comm.cpp.o.d"
  "/root/repo/src/parallel/init_gen.cpp" "src/parallel/CMakeFiles/pts_parallel.dir/init_gen.cpp.o" "gcc" "src/parallel/CMakeFiles/pts_parallel.dir/init_gen.cpp.o.d"
  "/root/repo/src/parallel/master.cpp" "src/parallel/CMakeFiles/pts_parallel.dir/master.cpp.o" "gcc" "src/parallel/CMakeFiles/pts_parallel.dir/master.cpp.o.d"
  "/root/repo/src/parallel/presets.cpp" "src/parallel/CMakeFiles/pts_parallel.dir/presets.cpp.o" "gcc" "src/parallel/CMakeFiles/pts_parallel.dir/presets.cpp.o.d"
  "/root/repo/src/parallel/report_io.cpp" "src/parallel/CMakeFiles/pts_parallel.dir/report_io.cpp.o" "gcc" "src/parallel/CMakeFiles/pts_parallel.dir/report_io.cpp.o.d"
  "/root/repo/src/parallel/runner.cpp" "src/parallel/CMakeFiles/pts_parallel.dir/runner.cpp.o" "gcc" "src/parallel/CMakeFiles/pts_parallel.dir/runner.cpp.o.d"
  "/root/repo/src/parallel/slave.cpp" "src/parallel/CMakeFiles/pts_parallel.dir/slave.cpp.o" "gcc" "src/parallel/CMakeFiles/pts_parallel.dir/slave.cpp.o.d"
  "/root/repo/src/parallel/solve.cpp" "src/parallel/CMakeFiles/pts_parallel.dir/solve.cpp.o" "gcc" "src/parallel/CMakeFiles/pts_parallel.dir/solve.cpp.o.d"
  "/root/repo/src/parallel/strategy_gen.cpp" "src/parallel/CMakeFiles/pts_parallel.dir/strategy_gen.cpp.o" "gcc" "src/parallel/CMakeFiles/pts_parallel.dir/strategy_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tabu/CMakeFiles/pts_tabu.dir/DependInfo.cmake"
  "/root/repo/build/src/mkp/CMakeFiles/pts_mkp.dir/DependInfo.cmake"
  "/root/repo/build/src/bounds/CMakeFiles/pts_bounds.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
