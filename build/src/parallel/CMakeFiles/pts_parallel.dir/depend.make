# Empty dependencies file for pts_parallel.
# This may be replaced when dependencies are built.
