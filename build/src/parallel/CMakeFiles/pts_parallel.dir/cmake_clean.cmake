file(REMOVE_RECURSE
  "CMakeFiles/pts_parallel.dir/async_swarm.cpp.o"
  "CMakeFiles/pts_parallel.dir/async_swarm.cpp.o.d"
  "CMakeFiles/pts_parallel.dir/autotune.cpp.o"
  "CMakeFiles/pts_parallel.dir/autotune.cpp.o.d"
  "CMakeFiles/pts_parallel.dir/comm.cpp.o"
  "CMakeFiles/pts_parallel.dir/comm.cpp.o.d"
  "CMakeFiles/pts_parallel.dir/init_gen.cpp.o"
  "CMakeFiles/pts_parallel.dir/init_gen.cpp.o.d"
  "CMakeFiles/pts_parallel.dir/master.cpp.o"
  "CMakeFiles/pts_parallel.dir/master.cpp.o.d"
  "CMakeFiles/pts_parallel.dir/presets.cpp.o"
  "CMakeFiles/pts_parallel.dir/presets.cpp.o.d"
  "CMakeFiles/pts_parallel.dir/report_io.cpp.o"
  "CMakeFiles/pts_parallel.dir/report_io.cpp.o.d"
  "CMakeFiles/pts_parallel.dir/runner.cpp.o"
  "CMakeFiles/pts_parallel.dir/runner.cpp.o.d"
  "CMakeFiles/pts_parallel.dir/slave.cpp.o"
  "CMakeFiles/pts_parallel.dir/slave.cpp.o.d"
  "CMakeFiles/pts_parallel.dir/solve.cpp.o"
  "CMakeFiles/pts_parallel.dir/solve.cpp.o.d"
  "CMakeFiles/pts_parallel.dir/strategy_gen.cpp.o"
  "CMakeFiles/pts_parallel.dir/strategy_gen.cpp.o.d"
  "libpts_parallel.a"
  "libpts_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pts_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
