file(REMOVE_RECURSE
  "libpts_parallel.a"
)
