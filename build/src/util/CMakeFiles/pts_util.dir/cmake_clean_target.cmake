file(REMOVE_RECURSE
  "libpts_util.a"
)
