file(REMOVE_RECURSE
  "CMakeFiles/pts_util.dir/bitvec.cpp.o"
  "CMakeFiles/pts_util.dir/bitvec.cpp.o.d"
  "CMakeFiles/pts_util.dir/cli.cpp.o"
  "CMakeFiles/pts_util.dir/cli.cpp.o.d"
  "CMakeFiles/pts_util.dir/logging.cpp.o"
  "CMakeFiles/pts_util.dir/logging.cpp.o.d"
  "CMakeFiles/pts_util.dir/rng.cpp.o"
  "CMakeFiles/pts_util.dir/rng.cpp.o.d"
  "CMakeFiles/pts_util.dir/stats.cpp.o"
  "CMakeFiles/pts_util.dir/stats.cpp.o.d"
  "CMakeFiles/pts_util.dir/table.cpp.o"
  "CMakeFiles/pts_util.dir/table.cpp.o.d"
  "libpts_util.a"
  "libpts_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pts_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
