# Empty dependencies file for pts_util.
# This may be replaced when dependencies are built.
