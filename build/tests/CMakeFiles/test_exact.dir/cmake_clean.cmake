file(REMOVE_RECURSE
  "CMakeFiles/test_exact.dir/exact/test_bnb.cpp.o"
  "CMakeFiles/test_exact.dir/exact/test_bnb.cpp.o.d"
  "CMakeFiles/test_exact.dir/exact/test_brute_force.cpp.o"
  "CMakeFiles/test_exact.dir/exact/test_brute_force.cpp.o.d"
  "CMakeFiles/test_exact.dir/exact/test_dp.cpp.o"
  "CMakeFiles/test_exact.dir/exact/test_dp.cpp.o.d"
  "CMakeFiles/test_exact.dir/exact/test_reduce_and_solve.cpp.o"
  "CMakeFiles/test_exact.dir/exact/test_reduce_and_solve.cpp.o.d"
  "test_exact"
  "test_exact.pdb"
  "test_exact[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
