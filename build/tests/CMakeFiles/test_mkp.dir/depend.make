# Empty dependencies file for test_mkp.
# This may be replaced when dependencies are built.
