file(REMOVE_RECURSE
  "CMakeFiles/test_mkp.dir/mkp/test_analysis.cpp.o"
  "CMakeFiles/test_mkp.dir/mkp/test_analysis.cpp.o.d"
  "CMakeFiles/test_mkp.dir/mkp/test_catalog.cpp.o"
  "CMakeFiles/test_mkp.dir/mkp/test_catalog.cpp.o.d"
  "CMakeFiles/test_mkp.dir/mkp/test_generator.cpp.o"
  "CMakeFiles/test_mkp.dir/mkp/test_generator.cpp.o.d"
  "CMakeFiles/test_mkp.dir/mkp/test_instance.cpp.o"
  "CMakeFiles/test_mkp.dir/mkp/test_instance.cpp.o.d"
  "CMakeFiles/test_mkp.dir/mkp/test_parser.cpp.o"
  "CMakeFiles/test_mkp.dir/mkp/test_parser.cpp.o.d"
  "CMakeFiles/test_mkp.dir/mkp/test_solution.cpp.o"
  "CMakeFiles/test_mkp.dir/mkp/test_solution.cpp.o.d"
  "CMakeFiles/test_mkp.dir/mkp/test_solution_io.cpp.o"
  "CMakeFiles/test_mkp.dir/mkp/test_solution_io.cpp.o.d"
  "CMakeFiles/test_mkp.dir/mkp/test_suites.cpp.o"
  "CMakeFiles/test_mkp.dir/mkp/test_suites.cpp.o.d"
  "test_mkp"
  "test_mkp.pdb"
  "test_mkp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mkp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
