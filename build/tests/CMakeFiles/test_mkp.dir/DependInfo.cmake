
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mkp/test_analysis.cpp" "tests/CMakeFiles/test_mkp.dir/mkp/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/test_mkp.dir/mkp/test_analysis.cpp.o.d"
  "/root/repo/tests/mkp/test_catalog.cpp" "tests/CMakeFiles/test_mkp.dir/mkp/test_catalog.cpp.o" "gcc" "tests/CMakeFiles/test_mkp.dir/mkp/test_catalog.cpp.o.d"
  "/root/repo/tests/mkp/test_generator.cpp" "tests/CMakeFiles/test_mkp.dir/mkp/test_generator.cpp.o" "gcc" "tests/CMakeFiles/test_mkp.dir/mkp/test_generator.cpp.o.d"
  "/root/repo/tests/mkp/test_instance.cpp" "tests/CMakeFiles/test_mkp.dir/mkp/test_instance.cpp.o" "gcc" "tests/CMakeFiles/test_mkp.dir/mkp/test_instance.cpp.o.d"
  "/root/repo/tests/mkp/test_parser.cpp" "tests/CMakeFiles/test_mkp.dir/mkp/test_parser.cpp.o" "gcc" "tests/CMakeFiles/test_mkp.dir/mkp/test_parser.cpp.o.d"
  "/root/repo/tests/mkp/test_solution.cpp" "tests/CMakeFiles/test_mkp.dir/mkp/test_solution.cpp.o" "gcc" "tests/CMakeFiles/test_mkp.dir/mkp/test_solution.cpp.o.d"
  "/root/repo/tests/mkp/test_solution_io.cpp" "tests/CMakeFiles/test_mkp.dir/mkp/test_solution_io.cpp.o" "gcc" "tests/CMakeFiles/test_mkp.dir/mkp/test_solution_io.cpp.o.d"
  "/root/repo/tests/mkp/test_suites.cpp" "tests/CMakeFiles/test_mkp.dir/mkp/test_suites.cpp.o" "gcc" "tests/CMakeFiles/test_mkp.dir/mkp/test_suites.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parallel/CMakeFiles/pts_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/pts_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/tabu/CMakeFiles/pts_tabu.dir/DependInfo.cmake"
  "/root/repo/build/src/exact/CMakeFiles/pts_exact.dir/DependInfo.cmake"
  "/root/repo/build/src/bounds/CMakeFiles/pts_bounds.dir/DependInfo.cmake"
  "/root/repo/build/src/mkp/CMakeFiles/pts_mkp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
