
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bounds/test_dantzig.cpp" "tests/CMakeFiles/test_bounds.dir/bounds/test_dantzig.cpp.o" "gcc" "tests/CMakeFiles/test_bounds.dir/bounds/test_dantzig.cpp.o.d"
  "/root/repo/tests/bounds/test_greedy.cpp" "tests/CMakeFiles/test_bounds.dir/bounds/test_greedy.cpp.o" "gcc" "tests/CMakeFiles/test_bounds.dir/bounds/test_greedy.cpp.o.d"
  "/root/repo/tests/bounds/test_lagrangian.cpp" "tests/CMakeFiles/test_bounds.dir/bounds/test_lagrangian.cpp.o" "gcc" "tests/CMakeFiles/test_bounds.dir/bounds/test_lagrangian.cpp.o.d"
  "/root/repo/tests/bounds/test_linalg.cpp" "tests/CMakeFiles/test_bounds.dir/bounds/test_linalg.cpp.o" "gcc" "tests/CMakeFiles/test_bounds.dir/bounds/test_linalg.cpp.o.d"
  "/root/repo/tests/bounds/test_reduction.cpp" "tests/CMakeFiles/test_bounds.dir/bounds/test_reduction.cpp.o" "gcc" "tests/CMakeFiles/test_bounds.dir/bounds/test_reduction.cpp.o.d"
  "/root/repo/tests/bounds/test_simplex.cpp" "tests/CMakeFiles/test_bounds.dir/bounds/test_simplex.cpp.o" "gcc" "tests/CMakeFiles/test_bounds.dir/bounds/test_simplex.cpp.o.d"
  "/root/repo/tests/bounds/test_simplex_degenerate.cpp" "tests/CMakeFiles/test_bounds.dir/bounds/test_simplex_degenerate.cpp.o" "gcc" "tests/CMakeFiles/test_bounds.dir/bounds/test_simplex_degenerate.cpp.o.d"
  "/root/repo/tests/bounds/test_surrogate.cpp" "tests/CMakeFiles/test_bounds.dir/bounds/test_surrogate.cpp.o" "gcc" "tests/CMakeFiles/test_bounds.dir/bounds/test_surrogate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parallel/CMakeFiles/pts_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/pts_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/tabu/CMakeFiles/pts_tabu.dir/DependInfo.cmake"
  "/root/repo/build/src/exact/CMakeFiles/pts_exact.dir/DependInfo.cmake"
  "/root/repo/build/src/bounds/CMakeFiles/pts_bounds.dir/DependInfo.cmake"
  "/root/repo/build/src/mkp/CMakeFiles/pts_mkp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
