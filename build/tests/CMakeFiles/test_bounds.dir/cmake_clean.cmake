file(REMOVE_RECURSE
  "CMakeFiles/test_bounds.dir/bounds/test_dantzig.cpp.o"
  "CMakeFiles/test_bounds.dir/bounds/test_dantzig.cpp.o.d"
  "CMakeFiles/test_bounds.dir/bounds/test_greedy.cpp.o"
  "CMakeFiles/test_bounds.dir/bounds/test_greedy.cpp.o.d"
  "CMakeFiles/test_bounds.dir/bounds/test_lagrangian.cpp.o"
  "CMakeFiles/test_bounds.dir/bounds/test_lagrangian.cpp.o.d"
  "CMakeFiles/test_bounds.dir/bounds/test_linalg.cpp.o"
  "CMakeFiles/test_bounds.dir/bounds/test_linalg.cpp.o.d"
  "CMakeFiles/test_bounds.dir/bounds/test_reduction.cpp.o"
  "CMakeFiles/test_bounds.dir/bounds/test_reduction.cpp.o.d"
  "CMakeFiles/test_bounds.dir/bounds/test_simplex.cpp.o"
  "CMakeFiles/test_bounds.dir/bounds/test_simplex.cpp.o.d"
  "CMakeFiles/test_bounds.dir/bounds/test_simplex_degenerate.cpp.o"
  "CMakeFiles/test_bounds.dir/bounds/test_simplex_degenerate.cpp.o.d"
  "CMakeFiles/test_bounds.dir/bounds/test_surrogate.cpp.o"
  "CMakeFiles/test_bounds.dir/bounds/test_surrogate.cpp.o.d"
  "test_bounds"
  "test_bounds.pdb"
  "test_bounds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
