file(REMOVE_RECURSE
  "CMakeFiles/test_parallel.dir/parallel/test_async.cpp.o"
  "CMakeFiles/test_parallel.dir/parallel/test_async.cpp.o.d"
  "CMakeFiles/test_parallel.dir/parallel/test_async_semantics.cpp.o"
  "CMakeFiles/test_parallel.dir/parallel/test_async_semantics.cpp.o.d"
  "CMakeFiles/test_parallel.dir/parallel/test_async_topology.cpp.o"
  "CMakeFiles/test_parallel.dir/parallel/test_async_topology.cpp.o.d"
  "CMakeFiles/test_parallel.dir/parallel/test_autotune.cpp.o"
  "CMakeFiles/test_parallel.dir/parallel/test_autotune.cpp.o.d"
  "CMakeFiles/test_parallel.dir/parallel/test_init_gen.cpp.o"
  "CMakeFiles/test_parallel.dir/parallel/test_init_gen.cpp.o.d"
  "CMakeFiles/test_parallel.dir/parallel/test_master.cpp.o"
  "CMakeFiles/test_parallel.dir/parallel/test_master.cpp.o.d"
  "CMakeFiles/test_parallel.dir/parallel/test_master_behaviors.cpp.o"
  "CMakeFiles/test_parallel.dir/parallel/test_master_behaviors.cpp.o.d"
  "CMakeFiles/test_parallel.dir/parallel/test_presets.cpp.o"
  "CMakeFiles/test_parallel.dir/parallel/test_presets.cpp.o.d"
  "CMakeFiles/test_parallel.dir/parallel/test_runner.cpp.o"
  "CMakeFiles/test_parallel.dir/parallel/test_runner.cpp.o.d"
  "CMakeFiles/test_parallel.dir/parallel/test_slave.cpp.o"
  "CMakeFiles/test_parallel.dir/parallel/test_slave.cpp.o.d"
  "CMakeFiles/test_parallel.dir/parallel/test_solve_report.cpp.o"
  "CMakeFiles/test_parallel.dir/parallel/test_solve_report.cpp.o.d"
  "CMakeFiles/test_parallel.dir/parallel/test_strategy_gen.cpp.o"
  "CMakeFiles/test_parallel.dir/parallel/test_strategy_gen.cpp.o.d"
  "CMakeFiles/test_parallel.dir/parallel/test_stress.cpp.o"
  "CMakeFiles/test_parallel.dir/parallel/test_stress.cpp.o.d"
  "test_parallel"
  "test_parallel.pdb"
  "test_parallel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
