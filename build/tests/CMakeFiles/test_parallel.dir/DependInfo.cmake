
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/parallel/test_async.cpp" "tests/CMakeFiles/test_parallel.dir/parallel/test_async.cpp.o" "gcc" "tests/CMakeFiles/test_parallel.dir/parallel/test_async.cpp.o.d"
  "/root/repo/tests/parallel/test_async_semantics.cpp" "tests/CMakeFiles/test_parallel.dir/parallel/test_async_semantics.cpp.o" "gcc" "tests/CMakeFiles/test_parallel.dir/parallel/test_async_semantics.cpp.o.d"
  "/root/repo/tests/parallel/test_async_topology.cpp" "tests/CMakeFiles/test_parallel.dir/parallel/test_async_topology.cpp.o" "gcc" "tests/CMakeFiles/test_parallel.dir/parallel/test_async_topology.cpp.o.d"
  "/root/repo/tests/parallel/test_autotune.cpp" "tests/CMakeFiles/test_parallel.dir/parallel/test_autotune.cpp.o" "gcc" "tests/CMakeFiles/test_parallel.dir/parallel/test_autotune.cpp.o.d"
  "/root/repo/tests/parallel/test_init_gen.cpp" "tests/CMakeFiles/test_parallel.dir/parallel/test_init_gen.cpp.o" "gcc" "tests/CMakeFiles/test_parallel.dir/parallel/test_init_gen.cpp.o.d"
  "/root/repo/tests/parallel/test_master.cpp" "tests/CMakeFiles/test_parallel.dir/parallel/test_master.cpp.o" "gcc" "tests/CMakeFiles/test_parallel.dir/parallel/test_master.cpp.o.d"
  "/root/repo/tests/parallel/test_master_behaviors.cpp" "tests/CMakeFiles/test_parallel.dir/parallel/test_master_behaviors.cpp.o" "gcc" "tests/CMakeFiles/test_parallel.dir/parallel/test_master_behaviors.cpp.o.d"
  "/root/repo/tests/parallel/test_presets.cpp" "tests/CMakeFiles/test_parallel.dir/parallel/test_presets.cpp.o" "gcc" "tests/CMakeFiles/test_parallel.dir/parallel/test_presets.cpp.o.d"
  "/root/repo/tests/parallel/test_runner.cpp" "tests/CMakeFiles/test_parallel.dir/parallel/test_runner.cpp.o" "gcc" "tests/CMakeFiles/test_parallel.dir/parallel/test_runner.cpp.o.d"
  "/root/repo/tests/parallel/test_slave.cpp" "tests/CMakeFiles/test_parallel.dir/parallel/test_slave.cpp.o" "gcc" "tests/CMakeFiles/test_parallel.dir/parallel/test_slave.cpp.o.d"
  "/root/repo/tests/parallel/test_solve_report.cpp" "tests/CMakeFiles/test_parallel.dir/parallel/test_solve_report.cpp.o" "gcc" "tests/CMakeFiles/test_parallel.dir/parallel/test_solve_report.cpp.o.d"
  "/root/repo/tests/parallel/test_strategy_gen.cpp" "tests/CMakeFiles/test_parallel.dir/parallel/test_strategy_gen.cpp.o" "gcc" "tests/CMakeFiles/test_parallel.dir/parallel/test_strategy_gen.cpp.o.d"
  "/root/repo/tests/parallel/test_stress.cpp" "tests/CMakeFiles/test_parallel.dir/parallel/test_stress.cpp.o" "gcc" "tests/CMakeFiles/test_parallel.dir/parallel/test_stress.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parallel/CMakeFiles/pts_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/pts_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/tabu/CMakeFiles/pts_tabu.dir/DependInfo.cmake"
  "/root/repo/build/src/exact/CMakeFiles/pts_exact.dir/DependInfo.cmake"
  "/root/repo/build/src/bounds/CMakeFiles/pts_bounds.dir/DependInfo.cmake"
  "/root/repo/build/src/mkp/CMakeFiles/pts_mkp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
