# Empty dependencies file for test_tabu.
# This may be replaced when dependencies are built.
