
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tabu/test_candidates.cpp" "tests/CMakeFiles/test_tabu.dir/tabu/test_candidates.cpp.o" "gcc" "tests/CMakeFiles/test_tabu.dir/tabu/test_candidates.cpp.o.d"
  "/root/repo/tests/tabu/test_cets.cpp" "tests/CMakeFiles/test_tabu.dir/tabu/test_cets.cpp.o" "gcc" "tests/CMakeFiles/test_tabu.dir/tabu/test_cets.cpp.o.d"
  "/root/repo/tests/tabu/test_diversify.cpp" "tests/CMakeFiles/test_tabu.dir/tabu/test_diversify.cpp.o" "gcc" "tests/CMakeFiles/test_tabu.dir/tabu/test_diversify.cpp.o.d"
  "/root/repo/tests/tabu/test_elite_pool.cpp" "tests/CMakeFiles/test_tabu.dir/tabu/test_elite_pool.cpp.o" "gcc" "tests/CMakeFiles/test_tabu.dir/tabu/test_elite_pool.cpp.o.d"
  "/root/repo/tests/tabu/test_engine.cpp" "tests/CMakeFiles/test_tabu.dir/tabu/test_engine.cpp.o" "gcc" "tests/CMakeFiles/test_tabu.dir/tabu/test_engine.cpp.o.d"
  "/root/repo/tests/tabu/test_engine_behaviors.cpp" "tests/CMakeFiles/test_tabu.dir/tabu/test_engine_behaviors.cpp.o" "gcc" "tests/CMakeFiles/test_tabu.dir/tabu/test_engine_behaviors.cpp.o.d"
  "/root/repo/tests/tabu/test_engine_trace.cpp" "tests/CMakeFiles/test_tabu.dir/tabu/test_engine_trace.cpp.o" "gcc" "tests/CMakeFiles/test_tabu.dir/tabu/test_engine_trace.cpp.o.d"
  "/root/repo/tests/tabu/test_history.cpp" "tests/CMakeFiles/test_tabu.dir/tabu/test_history.cpp.o" "gcc" "tests/CMakeFiles/test_tabu.dir/tabu/test_history.cpp.o.d"
  "/root/repo/tests/tabu/test_intensify.cpp" "tests/CMakeFiles/test_tabu.dir/tabu/test_intensify.cpp.o" "gcc" "tests/CMakeFiles/test_tabu.dir/tabu/test_intensify.cpp.o.d"
  "/root/repo/tests/tabu/test_moves.cpp" "tests/CMakeFiles/test_tabu.dir/tabu/test_moves.cpp.o" "gcc" "tests/CMakeFiles/test_tabu.dir/tabu/test_moves.cpp.o.d"
  "/root/repo/tests/tabu/test_path_relink.cpp" "tests/CMakeFiles/test_tabu.dir/tabu/test_path_relink.cpp.o" "gcc" "tests/CMakeFiles/test_tabu.dir/tabu/test_path_relink.cpp.o.d"
  "/root/repo/tests/tabu/test_reactive.cpp" "tests/CMakeFiles/test_tabu.dir/tabu/test_reactive.cpp.o" "gcc" "tests/CMakeFiles/test_tabu.dir/tabu/test_reactive.cpp.o.d"
  "/root/repo/tests/tabu/test_rem.cpp" "tests/CMakeFiles/test_tabu.dir/tabu/test_rem.cpp.o" "gcc" "tests/CMakeFiles/test_tabu.dir/tabu/test_rem.cpp.o.d"
  "/root/repo/tests/tabu/test_tabu_list.cpp" "tests/CMakeFiles/test_tabu.dir/tabu/test_tabu_list.cpp.o" "gcc" "tests/CMakeFiles/test_tabu.dir/tabu/test_tabu_list.cpp.o.d"
  "/root/repo/tests/tabu/test_trajectory.cpp" "tests/CMakeFiles/test_tabu.dir/tabu/test_trajectory.cpp.o" "gcc" "tests/CMakeFiles/test_tabu.dir/tabu/test_trajectory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parallel/CMakeFiles/pts_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/pts_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/tabu/CMakeFiles/pts_tabu.dir/DependInfo.cmake"
  "/root/repo/build/src/exact/CMakeFiles/pts_exact.dir/DependInfo.cmake"
  "/root/repo/build/src/bounds/CMakeFiles/pts_bounds.dir/DependInfo.cmake"
  "/root/repo/build/src/mkp/CMakeFiles/pts_mkp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
