file(REMOVE_RECURSE
  "CMakeFiles/test_property.dir/property/test_invariants.cpp.o"
  "CMakeFiles/test_property.dir/property/test_invariants.cpp.o.d"
  "CMakeFiles/test_property.dir/property/test_oracle_agreement.cpp.o"
  "CMakeFiles/test_property.dir/property/test_oracle_agreement.cpp.o.d"
  "CMakeFiles/test_property.dir/property/test_parser_fuzz.cpp.o"
  "CMakeFiles/test_property.dir/property/test_parser_fuzz.cpp.o.d"
  "CMakeFiles/test_property.dir/property/test_pathological.cpp.o"
  "CMakeFiles/test_property.dir/property/test_pathological.cpp.o.d"
  "test_property"
  "test_property.pdb"
  "test_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
